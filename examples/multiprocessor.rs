//! Concurrency exploiters on the multiprocessor scheduler (§4.7).
//!
//! The paper's systems ran on a uniprocessor during the measurements, so
//! the `parallel_map` paradigm could only add structure, not speed. The
//! `MpSim` extension runs the *same* paradigm code on N virtual
//! processors — and prints the speedup curve, plus the Amdahl cap a
//! shared monitor imposes.
//!
//! Run with: `cargo run --release --example multiprocessor`

use threadstudy::paradigms::exploit::parallel_map;
use threadstudy::pcr::{millis, MpSim, Priority, RunLimit, SimConfig};

fn render_pages(cpus: usize) -> (u64, f64) {
    let mut sim = MpSim::new(SimConfig::default(), cpus);
    let h = sim.fork_root("driver", Priority::of(5), |ctx| {
        let t0 = ctx.now();
        // Rasterize 12 page bands, 30ms each, in parallel.
        let bands = parallel_map(
            ctx,
            "raster",
            (0..12).collect(),
            millis(30),
            |_ctx, b: u32| b * 2,
        );
        assert_eq!(bands.len(), 12);
        ctx.now().since(t0).as_micros()
    });
    sim.run(RunLimit::ToCompletion);
    let makespan = h.into_result().unwrap().unwrap();
    (makespan, 360_000.0 / makespan as f64)
}

fn main() {
    println!("parallel page rasterization: 12 bands x 30ms (360ms of work)\n");
    println!("{:>5} {:>12} {:>9}", "cpus", "makespan", "speedup");
    for cpus in [1, 2, 4, 8] {
        let (makespan, speedup) = render_pages(cpus);
        println!(
            "{cpus:>5} {:>10.1}ms {speedup:>8.2}x",
            makespan as f64 / 1000.0
        );
    }
    println!(
        "\nThe same parallel_map call, unchanged, on the uniprocessor Sim would\n\
         take the full 360ms — §4.7's 'concurrency exploiters' finally exploit."
    );
}
