//! The authors' instrument of choice: "Even after a year of looking at
//! the same 100 millisecond event histories we are seeing new things in
//! them" (§7).
//!
//! Runs the synthetic Cedar world under keyboard input, captures the
//! full event stream, and renders a 100 ms event history plus a JSONL
//! excerpt for external tooling.
//!
//! Run with: `cargo run --release --example event_history`

use threadstudy::pcr::{millis, secs, RunLimit, SimTime};
use threadstudy::trace::Timeline;
use threadstudy::workloads::{runner, Benchmark, System};

fn main() {
    let mut sim = runner::build(System::Cedar, Benchmark::Keyboard, 0xE7E27);
    sim.set_sink(Box::new(Timeline::new()));
    sim.run(RunLimit::For(secs(5)));
    let infos = sim.threads();
    let mut timeline =
        *threadstudy::trace::take_collector::<Timeline>(&mut sim).expect("timeline installed");
    timeline.name_threads(&infos);

    // The classic window: 100 milliseconds, mid-run.
    let start = SimTime::from_micros(3_000_000);
    println!("{}", timeline.render(start, millis(100), 80));

    // And the machine-readable form of the same window.
    let window: Vec<_> = timeline.window(start, millis(10)).cloned().collect();
    let mut buf = Vec::new();
    let n = threadstudy::trace::write_jsonl(&window, &mut buf).unwrap();
    println!("first 10ms of the window as JSON Lines ({n} events):");
    for line in String::from_utf8(buf).unwrap().lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
}
