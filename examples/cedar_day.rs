//! A day in the life of Cedar: runs the synthetic Cedar world through
//! an interactive session — idle, then typing, then a compile — and
//! prints the measurements the paper's Tables 1–3 are built from.
//!
//! Run with: `cargo run --release --example cedar_day`

use threadstudy::pcr::secs;
use threadstudy::workloads::{run_benchmark, Benchmark, System};

fn main() {
    println!("A day in the life of the synthetic Cedar world (10s windows)\n");
    println!(
        "{:<22} {:>9} {:>12} {:>9} {:>9} {:>13} {:>6} {:>6}",
        "phase", "forks/s", "switches/s", "waits/s", "%timeout", "ML-enters/s", "#CVs", "#MLs"
    );
    for bench in [
        Benchmark::Idle,
        Benchmark::Keyboard,
        Benchmark::Scroll,
        Benchmark::Compile,
    ] {
        let r = run_benchmark(System::Cedar, bench, secs(10), 0xDA1_CEDA);
        println!(
            "{:<22} {:>9.1} {:>12.0} {:>9.0} {:>8.0}% {:>13.0} {:>6} {:>6}",
            r.rates.name,
            r.rates.forks_per_sec,
            r.rates.switches_per_sec,
            r.rates.waits_per_sec,
            r.rates.timeout_pct,
            r.rates.ml_enters_per_sec,
            r.rates.distinct_cvs,
            r.rates.distinct_mls
        );
        assert!(r.max_generation <= 2, "the paper saw no generation > 2");
        assert!(r.max_live_threads <= 41, "the paper saw at most 41 threads");
    }
    println!(
        "\nEvery phase obeys the paper's structural invariants: fork generations never\n\
         exceed 2 and at most 41 threads ever exist concurrently."
    );
}
