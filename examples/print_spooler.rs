//! A print spooler on **real threads**, built from the `mesa` crate's
//! paradigm library — the adoptable face of the paper's catalogue.
//!
//! * defer work: `WorkerPool` renders documents in the background while
//!   the "UI" returns instantly;
//! * serializer: an `MbQueue` feeds the (single) printer in submission
//!   order;
//! * slack process: a `SlackProcess` coalesces duplicate status updates
//!   before they hit the (expensive) status display;
//! * task rejuvenation: a poisoned render job panics and the pool keeps
//!   serving;
//! * one-shot: a `DelayedFork` times out an abandoned print dialog.
//!
//! Run with: `cargo run --example print_spooler`

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use threadstudy::mesa::mbqueue::MbQueue;
use threadstudy::mesa::pool::WorkerPool;
use threadstudy::mesa::pump::BoundedQueue;
use threadstudy::mesa::slack::{merge_by_key, SlackProcess};
use threadstudy::mesa::sleeper::DelayedFork;

fn main() {
    // The printer: one device, one serializer thread (§4.6).
    let printer = Arc::new(MbQueue::new("printer"));

    // Status updates flow through a slack process that merges repeated
    // updates for the same job before the costly display redraw (§4.2).
    let status_q: BoundedQueue<(u32, &'static str)> = BoundedQueue::new("status", 128);
    let status_display = SlackProcess::spawn(
        "status-display",
        status_q.clone(),
        Duration::from_millis(5),
        merge_by_key(|s: &(u32, &'static str)| s.0),
        |batch| {
            for (job, state) in batch {
                println!("  [status] job {job}: {state}");
            }
        },
    );

    // The render farm: defer work to a bounded pool (§4.1, with the §5
    // lesson about per-fork stack costs).
    let pool = WorkerPool::new("render", 3);
    let printed = Arc::new(AtomicU32::new(0));

    for job in 0..8u32 {
        let printer = Arc::clone(&printer);
        let status_q = status_q.clone();
        let printed = Arc::clone(&printed);
        pool.defer(move || {
            status_q.put((job, "rendering"));
            if job == 3 {
                // A poisoned document: the pool worker must survive it
                // (task rejuvenation applied to the pool, §4.5).
                panic!("corrupt PostScript in job 3");
            }
            std::thread::sleep(Duration::from_millis(10));
            status_q.put((job, "queued for printer"));
            let status_q2 = status_q.clone();
            printer.enqueue(move || {
                std::thread::sleep(Duration::from_millis(5));
                status_q2.put((job, "printed"));
                printed.fetch_add(1, Ordering::Relaxed);
            });
        });
    }

    // An abandoned print dialog times out via a one-shot (§4.3).
    let dialog = DelayedFork::schedule("dialog-timeout", Duration::from_millis(60), || {
        println!("  [dialog] print dialog timed out and closed itself");
    });

    // Let everything drain.
    while pool.executed() < 8 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let pool_panics = pool.panicked();
    pool.shutdown();
    // MbQueue::shutdown needs sole ownership.
    std::thread::sleep(Duration::from_millis(100));
    Arc::try_unwrap(printer)
        .ok()
        .expect("printer idle")
        .shutdown();
    status_q.close();
    let counters = status_display.join();
    assert!(dialog.join());

    println!("\njobs printed      : {}", printed.load(Ordering::Relaxed));
    println!("render panics     : {pool_panics} (absorbed; the pool kept serving)");
    println!(
        "status updates    : {} merged into {} display redraws",
        counters.items_in(),
        counters.batches_out()
    );
    assert_eq!(printed.load(Ordering::Relaxed), 7); // All but the poisoned job.
    assert_eq!(pool_panics, 1);
}
