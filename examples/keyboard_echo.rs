//! The keyboard-echo pipeline of §5.2, assembled from the paradigm
//! library: device pump → notifier → slack-process buffer → X server.
//!
//! Demonstrates why the buffer thread's choice of yield matters: run
//! once with a plain YIELD (no merging, a batch per keystroke) and once
//! with `YieldButNotToMe` (the paper's fix), and compare the batching.
//!
//! Run with: `cargo run --example keyboard_echo`

use threadstudy::paradigms::pump::BoundedQueue;
use threadstudy::paradigms::slack::{spawn_slack, SlackPolicy};
use threadstudy::pcr::{micros, millis, secs, Priority, RunLimit, Sim, SimConfig};

/// An echo request: (screen cell, glyph).
type Echo = (u32, u32);

fn run(policy: SlackPolicy) -> (u64, u64, u64) {
    let mut sim = Sim::new(SimConfig::default());
    let echo_q: BoundedQueue<Echo> = BoundedQueue::new_in_sim(&mut sim, "echo", 256, None);
    let keys = 120u32;

    // The typist: ~40 keystrokes/second of furious typing, each echoed
    // through the pipeline by an imaging thread at priority 3.
    let eq = echo_q.clone();
    let _ = sim.fork_root("imaging", Priority::of(3), move |ctx| {
        for i in 0..keys {
            ctx.work(millis(2)); // Rendering the glyph.
            eq.put(ctx, (i % 8, i));
        }
        eq.close(ctx);
    });

    // The buffer thread (slack process) and the X server.
    let h = sim.fork_root("driver", Priority::of(7), move |ctx| {
        let server_q: BoundedQueue<Vec<Echo>> = BoundedQueue::new(ctx, "batches", 64, None);
        let closer = server_q.clone();
        let sq = server_q.clone();
        let slack = spawn_slack(
            ctx,
            "buffer",
            Priority::of(6), // Higher than imaging: the §5.2 trap.
            echo_q,
            policy,
            micros(300),
            |batch: &mut Vec<Echo>, e: Echo| {
                if let Some(slot) = batch.iter_mut().find(|b| b.0 == e.0) {
                    slot.1 = e.1; // Later glyph replaces earlier.
                    true
                } else {
                    batch.push(e);
                    false
                }
            },
            move |ctx, batch| {
                sq.put(ctx, batch);
            },
        );
        let server = ctx
            .fork_prio("x-server", Priority::of(5), move |ctx| {
                let mut batches = 0u64;
                let mut requests = 0u64;
                while let Some(batch) = server_q.take(ctx) {
                    ctx.work(millis(2) + micros(150) * batch.len() as u64);
                    batches += 1;
                    requests += batch.len() as u64;
                }
                (batches, requests)
            })
            .unwrap();
        slack.wait_done(ctx);
        let stats = slack.stats(ctx);
        closer.close(ctx); // No more batches: let the server drain and exit.
        let (batches, requests) = ctx.join(server).unwrap();
        assert_eq!(batches, stats.batches_out);
        let _ = requests;
        (stats.items_in, stats.batches_out, stats.merged_away)
    });
    let report = sim.run(RunLimit::For(secs(30)));
    assert!(!report.deadlocked());
    h.into_result().unwrap().unwrap()
}

fn main() {
    println!("keyboard echo through a slack-process buffer (§5.2)\n");
    for policy in [SlackPolicy::PlainYield, SlackPolicy::YieldButNotToMe] {
        let (keys, batches, merged) = run(policy);
        println!(
            "{policy:?}: {keys} keystrokes -> {batches} X batches ({merged} echoes merged away)"
        );
    }
    println!(
        "\nWith the plain YIELD the high-priority buffer gets the processor right back\n\
         and sends one batch per keystroke; YieldButNotToMe lets the imaging thread\n\
         run, so echoes accumulate and merge — the paper's ~3x improvement."
    );
}
