//! Quickstart: the Mesa thread model in five minutes.
//!
//! Builds a tiny world on the deterministic PCR simulator — a producer,
//! a consumer sharing a monitor-protected queue, a deferred-work fork —
//! runs it, and prints the runtime statistics the paper's tables are
//! made of.
//!
//! Run with: `cargo run --example quickstart`

use threadstudy::pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig, StopReason};

fn main() {
    // The default configuration is the paper's PCR: 50ms timeslice,
    // 50ms timer granularity, 7 strict priorities, deferred-reschedule
    // NOTIFY.
    let mut sim = Sim::new(SimConfig::default());

    // A monitor couples a mutex with the data it protects; condition
    // variables belong to the monitor and carry their timeout interval.
    let queue = sim.monitor("jobs", Vec::<u32>::new());
    let nonempty = sim.condition(&queue, "nonempty", Some(millis(50)));

    // The consumer: WAIT in a loop (the §5.3 convention) until work
    // appears. Mesa's WAIT promises nothing about the condition on
    // return — wait_until re-checks for you.
    let (qc, cvc) = (queue.clone(), nonempty.clone());
    let consumer = sim.fork_root("consumer", Priority::of(5), move |ctx| {
        let mut done = 0;
        while done < 10 {
            let mut g = ctx.enter(&qc);
            g.wait_until(&cvc, |q| !q.is_empty());
            let job = g.with_mut(|q| q.remove(0));
            drop(g); // Exit the monitor before doing the work.
            ctx.work(millis(3));
            println!("[{}] consumer finished job {}", ctx.now(), job);
            done += 1;
        }
        done
    });

    // The producer: defer-work in action — each job is announced
    // immediately, and a background fork does something extra without
    // delaying the producer (§4.1).
    let _ = sim.fork_root("producer", Priority::of(4), move |ctx| {
        for i in 0..10 {
            ctx.sleep(millis(20)); // Quantized to the 50ms tick, like PCR.
            let mut g = ctx.enter(&queue);
            g.with_mut(|q| q.push(i));
            g.notify(&nonempty);
            drop(g);
            let _ = ctx.fork_detached_prio("audit-log", Priority::of(2), move |ctx| {
                ctx.work(millis(1));
            });
        }
    });

    let report = sim.run(RunLimit::For(secs(10)));
    assert_eq!(report.reason, StopReason::AllExited);
    println!("\nconsumed: {:?}", consumer.into_result().unwrap().unwrap());

    let stats = sim.stats();
    println!("virtual time elapsed : {}", report.now);
    println!("thread switches      : {}", stats.switches);
    println!("forks                : {}", stats.forks);
    println!(
        "CV waits             : {} ({:.0}% timed out)",
        stats.cv_waits,
        stats.timeout_fraction() * 100.0
    );
    println!("monitor entries      : {}", stats.ml_enters);
}
