//! # threadstudy — facade crate
//!
//! Reproduction of *Using Threads in Interactive Systems: A Case Study*
//! (Hauser, Jacobi, Theimer, Welch, Weiser; SOSP 1993). This crate
//! re-exports the workspace's components under one roof:
//!
//! * [`pcr`] — the deterministic virtual-time rebuild of the Portable
//!   Common Runtime's Mesa thread model (the substrate both studied
//!   systems ran on);
//! * [`trace`] — instrumentation: event collectors, rate counters,
//!   execution-interval histograms, genealogy (the paper's measurement
//!   apparatus);
//! * [`core`] — the paradigm taxonomy and the static fork-site inventory
//!   (the paper's primary intellectual contribution);
//! * [`paradigms`] — the ten thread-usage paradigms as reusable
//!   components on the simulator;
//! * [`mesa`] — the same Mesa model and paradigms on real `std::thread`s,
//!   for downstream programs;
//! * [`workloads`] — synthetic Cedar and GVX worlds and the paper's
//!   twelve benchmarks;
//! * [`xpipe`] — the X-server pipeline case studies (§5.2, §5.6, §6.1,
//!   §6.3).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.

#![warn(missing_docs)]

pub use mesa;
pub use paradigms;
pub use pcr;
pub use threadstudy_core as core;
pub use trace;
pub use workloads;
pub use xpipe;
