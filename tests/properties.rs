//! Property-based tests on the core invariants: mutual exclusion, FIFO
//! delivery, timer quantization arithmetic, histogram conservation, and
//! the NOTIFY/spurious-wakeup contracts from §5.3.
//!
//! The build environment has no registry access, so instead of a
//! property-testing framework each test draws its own random cases from
//! a seeded [`SplitMix64`] stream: same coverage shape (ranged inputs,
//! many cases), fully deterministic, trivially reproducible from the
//! printed case seed on failure.

use threadstudy::paradigms::pump::BoundedQueue;
use threadstudy::pcr::{
    micros, millis, secs, ChaosConfig, EventKind, Priority, RunLimit, Sim, SimConfig, SimDuration,
    SimTime, SplitMix64, VecSink, WaitOutcome,
};

/// Runs `f` once per case with a per-case RNG derived from a fixed
/// base seed, printing the case seed on entry so a failing case can be
/// replayed in isolation.
fn for_cases(cases: u64, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let seed = 0x5EED_CA5E_0000_0000 ^ case;
        let mut rng = SplitMix64::new(seed);
        f(&mut rng);
    }
}

/// Uniform draw from the half-open range `lo..hi`.
fn pick(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi);
    lo + rng.next_below(hi - lo)
}

/// Monitors provide mutual exclusion under arbitrary thread mixes: a
/// non-atomic read-work-write critical section never loses an update,
/// and no two threads are ever inside simultaneously.
#[test]
fn monitor_mutual_exclusion() {
    for_cases(12, |rng| {
        let threads = pick(rng, 2, 6) as usize;
        let iters = pick(rng, 1, 12) as u32;
        let hold_us = pick(rng, 1, 2000);
        let seed = rng.next_u64();
        let mut sim = Sim::new(SimConfig::default().with_seed(seed));
        let cell = sim.monitor("cell", (0u64, false));
        for t in 0..threads {
            let cell = cell.clone();
            let prio = Priority::of(2 + (t % 4) as u8);
            let _ = sim.fork_root(&format!("t{t}"), prio, move |ctx| {
                for _ in 0..iters {
                    let mut g = ctx.enter(&cell);
                    g.with_mut(|(_, inside)| {
                        assert!(!*inside, "two threads inside the monitor");
                        *inside = true;
                    });
                    let before = g.with(|(v, _)| *v);
                    ctx.work(micros(hold_us)); // Preemption points inside.
                    g.with_mut(|(v, inside)| {
                        *v = before + 1;
                        *inside = false;
                    });
                    drop(g);
                    ctx.yield_now();
                }
            });
        }
        let r = sim.run(RunLimit::For(secs(60)));
        assert!(!r.deadlocked());
        let final_value = {
            let mut sim2 = sim; // Read back through a probe thread.
            let h = sim2.fork_root("probe", Priority::of(6), move |ctx| {
                let g = ctx.enter(&cell);
                g.with(|(v, _)| *v)
            });
            sim2.run(RunLimit::For(secs(1)));
            h.into_result().unwrap().unwrap()
        };
        assert_eq!(final_value, threads as u64 * u64::from(iters));
    });
}

/// Bounded queues deliver exactly the items put, preserving each
/// producer's order, for any capacity and producer mix.
#[test]
fn bounded_queue_no_loss_no_dup() {
    for_cases(12, |rng| {
        let producers = pick(rng, 1, 4) as usize;
        let per_producer = pick(rng, 0, 16) as usize;
        let capacity = pick(rng, 1, 8) as usize;
        let seed = rng.next_u64();
        let mut sim = Sim::new(SimConfig::default().with_seed(seed));
        let q: BoundedQueue<(usize, usize)> =
            BoundedQueue::new_in_sim(&mut sim, "q", capacity, None);
        for p in 0..producers {
            let q = q.clone();
            let _ = sim.fork_root(&format!("p{p}"), Priority::of(4), move |ctx| {
                let mut rng = ctx.rng();
                for i in 0..per_producer {
                    ctx.work(micros(rng.next_below(500)));
                    q.put(ctx, (p, i));
                }
            });
        }
        let total = producers * per_producer;
        let qc = q.clone();
        let h = sim.fork_root("consumer", Priority::of(3), move |ctx| {
            let mut got = Vec::new();
            for _ in 0..total {
                got.push(qc.take(ctx).expect("queue not closed"));
            }
            got
        });
        let r = sim.run(RunLimit::For(secs(30)));
        assert!(!r.deadlocked());
        let got = h.into_result().unwrap().unwrap();
        assert_eq!(got.len(), total);
        for p in 0..producers {
            let seq: Vec<usize> = got
                .iter()
                .filter(|(pp, _)| *pp == p)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(seq, (0..per_producer).collect::<Vec<_>>());
        }
    });
}

/// Sleep quantization: a plain sleep wakes at a timer tick, at or after
/// the requested interval, and strictly less than one granularity late.
#[test]
fn sleep_quantization_bounds() {
    for_cases(24, |rng| {
        let offset_us = pick(rng, 0, 200_000);
        let sleep_us = pick(rng, 1, 200_000);
        let mut sim = Sim::new(SimConfig::default());
        let g = sim.config().granularity();
        let h = sim.fork_root("s", Priority::DEFAULT, move |ctx| {
            ctx.sleep_precise(micros(offset_us.max(1)));
            let before = ctx.now();
            ctx.sleep(micros(sleep_us));
            (before, ctx.now())
        });
        sim.run(RunLimit::ToCompletion);
        let (before, after) = h.into_result().unwrap().unwrap();
        let slept = after.since(before);
        assert!(slept >= micros(sleep_us), "slept {slept} < {sleep_us}us");
        assert!(
            slept.as_micros() < sleep_us + g.as_micros(),
            "slept {slept}, requested {sleep_us}us, granularity {g}"
        );
        assert_eq!(after.as_micros() % g.as_micros(), 0, "woke off-tick");
    });
}

/// round_up_to: result is a multiple of g, >= input, < input + g.
#[test]
fn round_up_properties() {
    for_cases(200, |rng| {
        let t = pick(rng, 0, 10_000_000);
        let g = pick(rng, 1, 100_000);
        let rounded = SimTime::from_micros(t).round_up_to(micros(g));
        assert_eq!(rounded.as_micros() % g, 0);
        assert!(rounded.as_micros() >= t);
        assert!(rounded.as_micros() < t + g);
    });
}

/// Interval histograms conserve counts and total time.
#[test]
fn histogram_conservation() {
    for_cases(24, |rng| {
        let n = pick(rng, 0, 200) as usize;
        let intervals: Vec<u64> = (0..n).map(|_| rng.next_below(200_000)).collect();
        let mut h = threadstudy::trace::IntervalHistogram::paper_default();
        let mut total = 0u64;
        for &us in &intervals {
            h.record(micros(us));
            total += us;
        }
        assert_eq!(h.count(), intervals.len() as u64);
        assert_eq!(h.total_time(), micros(total));
        let f = h.fraction_between(SimDuration::ZERO, millis(5));
        assert!((0.0..=1.0).contains(&f));
        let rows = h.rows();
        let sum: u64 = rows.iter().map(|(_, n, _, _)| n).sum();
        assert_eq!(sum, intervals.len() as u64);
    });
}

/// The deterministic RNG respects bounds and reproduces streams.
#[test]
fn rng_bounds_and_determinism() {
    for_cases(50, |rng| {
        let seed = rng.next_u64();
        let bound = pick(rng, 1, 1_000_000);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            assert!(x < bound);
            assert_eq!(x, b.next_below(bound));
        }
    });
}

/// The multiprocessor scheduler delivers exactly the same results and
/// (for a fixed seed) identical statistics on every rerun, for any CPU
/// count.
#[test]
fn mp_determinism() {
    for_cases(8, |rng| {
        let cpus = pick(rng, 1, 5) as usize;
        let seed = rng.next_u64();
        let run = || {
            let mut sim = threadstudy::pcr::MpSim::new(SimConfig::default().with_seed(seed), cpus);
            let m = sim.monitor("m", 0u64);
            for t in 0..4 {
                let m = m.clone();
                let _ = sim.fork_root(
                    &format!("t{t}"),
                    Priority::of(2 + (t % 3) as u8),
                    move |ctx| {
                        let mut rng = ctx.rng();
                        for _ in 0..10 {
                            ctx.work(micros(rng.next_below(1500)));
                            let mut g = ctx.enter(&m);
                            g.with_mut(|v| *v += 1);
                        }
                    },
                );
            }
            let r = sim.run(RunLimit::For(secs(30)));
            assert!(!r.deadlocked());
            (
                sim.now().as_micros(),
                sim.stats().switches,
                sim.stats().ml_contended,
            )
        };
        assert_eq!(run(), run());
    });
}

/// The real-thread bounded queue loses and duplicates nothing under
/// genuinely concurrent producers.
#[test]
fn mesa_queue_no_loss_no_dup() {
    for_cases(8, |rng| {
        let producers = pick(rng, 1, 4) as usize;
        let per_producer = pick(rng, 0, 32) as usize;
        let capacity = pick(rng, 1, 8) as usize;
        use threadstudy::mesa::pump::BoundedQueue;
        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new("q", capacity);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        q.put((p, i));
                    }
                })
            })
            .collect();
        let total = producers * per_producer;
        let mut got = Vec::with_capacity(total);
        for _ in 0..total {
            got.push(q.take().expect("open queue"));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), total);
        for p in 0..producers {
            let seq: Vec<usize> = got
                .iter()
                .filter(|(pp, _)| *pp == p)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(seq, (0..per_producer).collect::<Vec<_>>());
        }
    });
}

/// The guarded button's state machine: any press sequence with gaps
/// ends in a consistent state, and a fire happens only from Armed.
#[test]
fn guarded_button_state_machine() {
    for_cases(12, |rng| {
        let n = pick(rng, 1, 10) as usize;
        let gaps_ms: Vec<u64> = (0..n).map(|_| rng.next_below(400)).collect();
        use threadstudy::paradigms::oneshot::{GuardState, GuardedButton};
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("ui", Priority::of(5), move |ctx| {
            let b = GuardedButton::new(millis(100), millis(200));
            let mut fires = 0u32;
            for gap in gaps_ms {
                let before = b.state();
                let fired = b.press(ctx);
                if fired {
                    fires += 1;
                    // Fires only from the armed state, and re-guards.
                    assert_eq!(before, GuardState::Armed);
                    assert_eq!(b.state(), GuardState::Guarded);
                }
                ctx.sleep_precise(millis(gap.max(1)));
            }
            fires
        });
        let r = sim.run(RunLimit::For(secs(30)));
        assert!(!r.deadlocked());
        let _fires = h.into_result().unwrap().unwrap();
    });
}

/// Slack merging: after merging any item stream, batch keys are unique
/// and each key carries the latest version fed for it.
#[test]
fn slack_merge_by_key_invariants() {
    for_cases(32, |rng| {
        let n = pick(rng, 0, 100) as usize;
        let items: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.next_below(8) as u32, rng.next_below(1000) as u32))
            .collect();
        use threadstudy::paradigms::slack::merge_by_key;
        let mut merge = merge_by_key(|r: &(u32, u32)| r.0);
        let mut batch = Vec::new();
        for &item in &items {
            let _ = merge(&mut batch, item);
        }
        // Unique keys.
        let mut keys: Vec<u32> = batch.iter().map(|r| r.0).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate keys in batch");
        // Latest version per key; every fed key present.
        for &(k, _) in &items {
            let latest = items.iter().rev().find(|(kk, _)| *kk == k).unwrap().1;
            let in_batch = batch.iter().find(|(kk, _)| *kk == k).unwrap().1;
            assert_eq!(in_batch, latest, "key {k} stale");
        }
        assert!(batch.len() <= items.len());
    });
}

/// A timeline renders any event window without panicking and names
/// every thread that appears.
#[test]
fn timeline_renders_any_window() {
    for_cases(12, |rng| {
        let start_ms = pick(rng, 0, 5_000);
        let span_ms = pick(rng, 1, 500);
        let cols = pick(rng, 1, 200) as usize;
        use threadstudy::trace::Timeline;
        let mut sim = Sim::new(SimConfig::default().with_seed(9));
        sim.set_sink(Box::new(Timeline::new()));
        let m = sim.monitor("m", 0u32);
        let cv = sim.condition(&m, "cv", Some(millis(50)));
        let _ = sim.fork_root("noisy", Priority::of(4), move |ctx| loop {
            let mut g = ctx.enter(&m);
            g.with_mut(|v| *v += 1);
            g.notify(&cv);
            let _ = g.wait(&cv);
        });
        sim.run(RunLimit::For(secs(2)));
        let infos = sim.threads();
        let mut tl = *threadstudy::trace::take_collector::<Timeline>(&mut sim).unwrap();
        tl.name_threads(&infos);
        let text = tl.render(SimTime::from_micros(start_ms * 1000), millis(span_ms), cols);
        assert!(text.contains("legend"));
    });
}

/// §5.3: NOTIFY wakes exactly one waiter. With every waiter already
/// blocked on the CV (waiters run at higher priority than the
/// notifier), each of the N notifies names exactly one distinct wakee
/// in the event stream, every wait ends `Notified`, and every waiter
/// consumes exactly one token.
#[test]
fn notify_wakes_exactly_one_waiter() {
    for_cases(10, |rng| {
        let waiters = pick(rng, 2, 7) as usize;
        let seed = rng.next_u64();
        let mut sim = Sim::new(SimConfig::default().with_seed(seed));
        sim.set_sink(Box::new(VecSink::default()));
        let m = sim.monitor("m", 0u32);
        let cv = sim.condition(&m, "cv", None);
        for w in 0..waiters {
            let (m, cv) = (m.clone(), cv.clone());
            let _ = sim.fork_root(&format!("w{w}"), Priority::of(5), move |ctx| {
                let mut g = ctx.enter(&m);
                while g.with(|tokens| *tokens == 0) {
                    g.wait(&cv);
                }
                g.with_mut(|tokens| *tokens -= 1);
            });
        }
        // Lower priority: runs only once every waiter is blocked.
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
            for _ in 0..waiters {
                let mut g = ctx.enter(&m2);
                g.with_mut(|tokens| *tokens += 1);
                g.notify(&cv2);
                drop(g);
                ctx.work(micros(200));
            }
        });
        let r = sim.run(RunLimit::For(secs(30)));
        assert!(!r.deadlocked());
        let sink = sim.take_sink().unwrap();
        let events = sink.into_any().downcast::<VecSink>().unwrap().events;
        let mut woken = Vec::new();
        let mut wake_outcomes = Vec::new();
        for ev in &events {
            match ev.kind {
                EventKind::Notify { woken: w, .. } => woken.push(w),
                EventKind::CvWake { outcome, .. } => wake_outcomes.push(outcome),
                _ => {}
            }
        }
        assert_eq!(woken.len(), waiters, "one NOTIFY per token");
        let mut wakees: Vec<u32> = woken
            .iter()
            .map(|w| {
                w.expect("NOTIFY with a populated queue wakes someone")
                    .as_u32()
            })
            .collect();
        wakees.sort_unstable();
        wakees.dedup();
        assert_eq!(wakees.len(), waiters, "each NOTIFY woke a distinct waiter");
        assert_eq!(wake_outcomes.len(), waiters, "exactly one wake per NOTIFY");
        assert!(wake_outcomes.iter().all(|o| *o == WaitOutcome::Notified));
        // Every waiter consumed exactly one token.
        let h = sim.fork_root("probe", Priority::of(6), move |ctx| {
            let g = ctx.enter(&m);
            g.with(|tokens| *tokens)
        });
        sim.run(RunLimit::For(secs(1)));
        assert_eq!(h.into_result().unwrap().unwrap(), 0);
    });
}

/// §5.3: waiters written Mesa-style (re-check the predicate in a loop)
/// survive injected spurious wakeups with predicates intact — no token
/// is consumed that was never produced, everything still completes, and
/// the injection actually fired.
#[test]
fn waiters_survive_spurious_wakeups() {
    let mut total_spurious = 0u64;
    for_cases(10, |rng| {
        let waiters = pick(rng, 2, 6) as usize;
        let seed = rng.next_u64();
        let chaos = ChaosConfig::none()
            .spurious_wakeups(0.9)
            .spurious_delay(millis(2));
        let mut sim = Sim::new(SimConfig::default().with_seed(seed).with_chaos(chaos));
        let m = sim.monitor("m", 0i64);
        let cv = sim.condition(&m, "cv", None);
        let mut handles = Vec::new();
        for w in 0..waiters {
            let (m, cv) = (m.clone(), cv.clone());
            handles.push(
                sim.fork_root(&format!("w{w}"), Priority::of(5), move |ctx| {
                    let mut g = ctx.enter(&m);
                    // Mesa discipline: the predicate guards the consume, so a
                    // spurious resume just loops back into WAIT.
                    g.wait_until(&cv, |tokens| *tokens > 0);
                    g.with_mut(|tokens| {
                        assert!(*tokens > 0, "consumed a token that was never produced");
                        *tokens -= 1;
                    });
                }),
            );
        }
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
            for _ in 0..waiters {
                ctx.work(millis(10)); // Leave room for injected wakeups to land.
                let mut g = ctx.enter(&m2);
                g.with_mut(|tokens| *tokens += 1);
                g.notify(&cv2);
            }
        });
        let r = sim.run(RunLimit::For(secs(60)));
        assert!(!r.deadlocked(), "spurious wakeups must not wedge waiters");
        for h in handles {
            assert!(h.into_result().unwrap().is_ok(), "waiter survived");
        }
        total_spurious += sim.stats().chaos_spurious_wakeups;
        let h = sim.fork_root("probe", Priority::of(6), move |ctx| {
            let g = ctx.enter(&m);
            g.with(|tokens| *tokens)
        });
        sim.run(RunLimit::For(secs(1)));
        assert_eq!(h.into_result().unwrap().unwrap(), 0, "tokens conserved");
    });
    assert!(total_spurious > 0, "injection never fired at p=0.9");
}
