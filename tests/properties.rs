//! Property-based tests on the core invariants: mutual exclusion, FIFO
//! delivery, timer quantization arithmetic, and histogram conservation.

use proptest::prelude::*;
use threadstudy::paradigms::pump::BoundedQueue;
use threadstudy::pcr::{micros, millis, Priority, RunLimit, Sim, SimConfig, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monitors provide mutual exclusion under arbitrary thread mixes:
    /// a non-atomic read-work-write critical section never loses an
    /// update, and no two threads are ever inside simultaneously.
    #[test]
    fn monitor_mutual_exclusion(
        threads in 2usize..6,
        iters in 1u32..12,
        hold_us in 1u64..2000,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(SimConfig::default().with_seed(seed));
        let cell = sim.monitor("cell", (0u64, false));
        for t in 0..threads {
            let cell = cell.clone();
            let prio = Priority::of(2 + (t % 4) as u8);
            let _ = sim.fork_root(&format!("t{t}"), prio, move |ctx| {
                for _ in 0..iters {
                    let mut g = ctx.enter(&cell);
                    g.with_mut(|(_, inside)| {
                        assert!(!*inside, "two threads inside the monitor");
                        *inside = true;
                    });
                    let before = g.with(|(v, _)| *v);
                    ctx.work(micros(hold_us)); // Preemption points inside.
                    g.with_mut(|(v, inside)| {
                        *v = before + 1;
                        *inside = false;
                    });
                    drop(g);
                    ctx.yield_now();
                }
            });
        }
        let r = sim.run(RunLimit::For(pcr_secs(60)));
        prop_assert!(!r.deadlocked());
        let mut check = Sim::new(SimConfig::default());
        drop(check.monitor("unused", ())); // Keep check sim trivial.
        let final_value = {
            let mut sim2 = sim; // Read back through a probe thread.
            let h = sim2.fork_root("probe", Priority::of(6), move |ctx| {
                let g = ctx.enter(&cell);
                g.with(|(v, _)| *v)
            });
            sim2.run(RunLimit::For(pcr_secs(1)));
            h.into_result().unwrap().unwrap()
        };
        prop_assert_eq!(final_value, threads as u64 * iters as u64);
    }

    /// Bounded queues deliver exactly the items put, preserving each
    /// producer's order, for any capacity and producer mix.
    #[test]
    fn bounded_queue_no_loss_no_dup(
        producers in 1usize..4,
        per_producer in 0usize..16,
        capacity in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(SimConfig::default().with_seed(seed));
        let q: BoundedQueue<(usize, usize)> =
            BoundedQueue::new_in_sim(&mut sim, "q", capacity, None);
        for p in 0..producers {
            let q = q.clone();
            let _ = sim.fork_root(&format!("p{p}"), Priority::of(4), move |ctx| {
                let mut rng = ctx.rng();
                for i in 0..per_producer {
                    ctx.work(micros(rng.next_below(500)));
                    q.put(ctx, (p, i));
                }
            });
        }
        let total = producers * per_producer;
        let qc = q.clone();
        let h = sim.fork_root("consumer", Priority::of(3), move |ctx| {
            let mut got = Vec::new();
            for _ in 0..total {
                got.push(qc.take(ctx).expect("queue not closed"));
            }
            got
        });
        let r = sim.run(RunLimit::For(pcr_secs(30)));
        prop_assert!(!r.deadlocked());
        let got = h.into_result().unwrap().unwrap();
        prop_assert_eq!(got.len(), total);
        for p in 0..producers {
            let seq: Vec<usize> = got.iter().filter(|(pp, _)| *pp == p).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..per_producer).collect::<Vec<_>>());
        }
    }

    /// Sleep quantization: a plain sleep wakes at a timer tick, at or
    /// after the requested interval, and strictly less than one
    /// granularity late.
    #[test]
    fn sleep_quantization_bounds(
        offset_us in 0u64..200_000,
        sleep_us in 1u64..200_000,
    ) {
        let mut sim = Sim::new(SimConfig::default());
        let g = sim.config().granularity();
        let h = sim.fork_root("s", Priority::DEFAULT, move |ctx| {
            ctx.sleep_precise(micros(offset_us.max(1)));
            let before = ctx.now();
            ctx.sleep(micros(sleep_us));
            (before, ctx.now())
        });
        sim.run(RunLimit::ToCompletion);
        let (before, after) = h.into_result().unwrap().unwrap();
        let slept = after.since(before);
        prop_assert!(slept >= micros(sleep_us), "slept {slept} < {sleep_us}us");
        prop_assert!(
            slept.as_micros() < sleep_us + g.as_micros(),
            "slept {slept}, requested {sleep_us}us, granularity {g}"
        );
        prop_assert_eq!(after.as_micros() % g.as_micros(), 0, "woke off-tick");
    }

    /// round_up_to: result is a multiple of g, >= input, < input + g.
    #[test]
    fn round_up_properties(t in 0u64..10_000_000, g in 1u64..100_000) {
        let rounded = SimTime::from_micros(t).round_up_to(micros(g));
        prop_assert_eq!(rounded.as_micros() % g, 0);
        prop_assert!(rounded.as_micros() >= t);
        prop_assert!(rounded.as_micros() < t + g);
    }

    /// Interval histograms conserve counts and total time.
    #[test]
    fn histogram_conservation(intervals in proptest::collection::vec(0u64..200_000, 0..200)) {
        let mut h = trace_hist();
        let mut total = 0u64;
        for &us in &intervals {
            h.record(micros(us));
            total += us;
        }
        prop_assert_eq!(h.count(), intervals.len() as u64);
        prop_assert_eq!(h.total_time(), micros(total));
        let f = h.fraction_between(SimDuration::ZERO, millis(5));
        prop_assert!((0.0..=1.0).contains(&f));
        let rows = h.rows();
        let sum: u64 = rows.iter().map(|(_, n, _, _)| n).sum();
        prop_assert_eq!(sum, intervals.len() as u64);
    }

    /// The deterministic RNG respects bounds and reproduces streams.
    #[test]
    fn rng_bounds_and_determinism(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = threadstudy::pcr::SplitMix64::new(seed);
        let mut b = threadstudy::pcr::SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }
}

fn pcr_secs(s: u64) -> SimDuration {
    threadstudy::pcr::secs(s)
}

fn trace_hist() -> threadstudy::trace::IntervalHistogram {
    threadstudy::trace::IntervalHistogram::paper_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The multiprocessor scheduler delivers exactly the same results
    /// and (for a fixed seed) identical statistics on every rerun, for
    /// any CPU count.
    #[test]
    fn mp_determinism(cpus in 1usize..5, seed in any::<u64>()) {
        let run = || {
            let mut sim = threadstudy::pcr::MpSim::new(
                SimConfig::default().with_seed(seed),
                cpus,
            );
            let m = sim.monitor("m", 0u64);
            for t in 0..4 {
                let m = m.clone();
                let _ = sim.fork_root(
                    &format!("t{t}"),
                    Priority::of(2 + (t % 3) as u8),
                    move |ctx| {
                        let mut rng = ctx.rng();
                        for _ in 0..10 {
                            ctx.work(micros(rng.next_below(1500)));
                            let mut g = ctx.enter(&m);
                            g.with_mut(|v| *v += 1);
                        }
                    },
                );
            }
            let r = sim.run(RunLimit::For(pcr_secs(30)));
            prop_assert!(!r.deadlocked());
            Ok((
                sim.now().as_micros(),
                sim.stats().switches,
                sim.stats().ml_contended,
            ))
        };
        prop_assert_eq!(run()?, run()?);
    }

    /// The real-thread bounded queue loses and duplicates nothing under
    /// genuinely concurrent producers.
    #[test]
    fn mesa_queue_no_loss_no_dup(
        producers in 1usize..4,
        per_producer in 0usize..32,
        capacity in 1usize..8,
    ) {
        use threadstudy::mesa::pump::BoundedQueue;
        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new("q", capacity);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        q.put((p, i));
                    }
                })
            })
            .collect();
        let total = producers * per_producer;
        let mut got = Vec::with_capacity(total);
        for _ in 0..total {
            got.push(q.take().expect("open queue"));
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(got.len(), total);
        for p in 0..producers {
            let seq: Vec<usize> =
                got.iter().filter(|(pp, _)| *pp == p).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..per_producer).collect::<Vec<_>>());
        }
    }

    /// The guarded button's state machine: any press sequence with gaps
    /// ends in a consistent state, and a fire happens only from Armed.
    #[test]
    fn guarded_button_state_machine(
        gaps_ms in proptest::collection::vec(0u64..400, 1..10),
    ) {
        use threadstudy::paradigms::oneshot::{GuardedButton, GuardState};
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("ui", Priority::of(5), move |ctx| {
            let b = GuardedButton::new(millis(100), millis(200));
            let mut fires = 0u32;
            for gap in gaps_ms {
                let before = b.state();
                let fired = b.press(ctx);
                if fired {
                    fires += 1;
                    // Fires only from the armed state, and re-guards.
                    assert_eq!(before, GuardState::Armed);
                    assert_eq!(b.state(), GuardState::Guarded);
                }
                ctx.sleep_precise(millis(gap.max(1)));
            }
            fires
        });
        let r = sim.run(RunLimit::For(pcr_secs(30)));
        prop_assert!(!r.deadlocked());
        let _fires = h.into_result().unwrap().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Slack merging: after merging any item stream, batch keys are
    /// unique and each key carries the latest version fed for it.
    #[test]
    fn slack_merge_by_key_invariants(
        items in proptest::collection::vec((0u32..8, 0u32..1000), 0..100),
    ) {
        use threadstudy::paradigms::slack::merge_by_key;
        let mut merge = merge_by_key(|r: &(u32, u32)| r.0);
        let mut batch = Vec::new();
        for &item in &items {
            let _ = merge(&mut batch, item);
        }
        // Unique keys.
        let mut keys: Vec<u32> = batch.iter().map(|r| r.0).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate keys in batch");
        // Latest version per key; every fed key present.
        for &(k, _) in &items {
            let latest = items.iter().rev().find(|(kk, _)| *kk == k).unwrap().1;
            let in_batch = batch.iter().find(|(kk, _)| *kk == k).unwrap().1;
            prop_assert_eq!(in_batch, latest, "key {} stale", k);
        }
        prop_assert!(batch.len() <= items.len());
    }

    /// A timeline renders any event window without panicking and names
    /// every thread that appears.
    #[test]
    fn timeline_renders_any_window(
        start_ms in 0u64..5_000,
        span_ms in 1u64..500,
        cols in 1usize..200,
    ) {
        use threadstudy::trace::Timeline;
        let mut sim = Sim::new(SimConfig::default().with_seed(9));
        sim.set_sink(Box::new(Timeline::new()));
        let m = sim.monitor("m", 0u32);
        let cv = sim.condition(&m, "cv", Some(millis(50)));
        let _ = sim.fork_root("noisy", Priority::of(4), move |ctx| loop {
            let mut g = ctx.enter(&m);
            g.with_mut(|v| *v += 1);
            g.notify(&cv);
            let _ = g.wait(&cv);
        });
        sim.run(RunLimit::For(pcr_secs(2)));
        let infos = sim.threads();
        let mut tl = *threadstudy::trace::take_collector::<Timeline>(&mut sim).unwrap();
        tl.name_threads(&infos);
        let text = tl.render(
            SimTime::from_micros(start_ms * 1000),
            millis(span_ms),
            cols,
        );
        prop_assert!(text.contains("legend"));
    }
}
