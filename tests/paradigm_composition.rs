//! Cross-crate composition: several paradigms cooperating in one
//! simulated system, and the same catalogue working on real threads.

use threadstudy::paradigms::oneshot::delayed_fork;
use threadstudy::paradigms::pump::{spawn_pump, BoundedQueue};
use threadstudy::paradigms::rejuvenate::supervise;
use threadstudy::paradigms::serializer::MbQueue;
use threadstudy::paradigms::sleeper::Periodical;
use threadstudy::pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

#[test]
fn a_small_interactive_system_from_paradigm_parts() {
    // Sleeper (ticker) -> pump (enricher) -> serializer (applier), with
    // a one-shot watchdog and a supervised flaky service on the side.
    let mut sim = Sim::new(SimConfig::default());
    let raw: BoundedQueue<u32> = BoundedQueue::new_in_sim(&mut sim, "raw", 32, None);
    let cooked: BoundedQueue<String> = BoundedQueue::new_in_sim(&mut sim, "cooked", 32, None);
    let applied = sim.monitor("applied", Vec::<String>::new());

    let raw_producer = raw.clone();
    let (cooked_in, cooked_out) = (cooked.clone(), cooked);
    let applied2 = applied.clone();
    let h = sim.fork_root("main", Priority::of(5), move |ctx| {
        // Sleeper: emits a tick every 100ms (quantized like PCR).
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c2 = std::sync::Arc::clone(&counter);
        let rp = raw_producer.clone();
        let ticker = Periodical::spawn(ctx, "ticker", Priority::of(4), millis(90), move |ctx| {
            let n = c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            rp.put(ctx, n);
        });
        // Pump: enriches ticks into strings.
        spawn_pump(
            ctx,
            "enricher",
            Priority::of(4),
            raw_producer,
            cooked_in,
            millis(1),
            |n| Some(format!("tick-{n}")),
        );
        // Serializer: applies updates in order.
        let mb = MbQueue::new(ctx, "applier", Priority::of(4), 32);
        let ap = applied2.clone();
        let feeder = ctx
            .fork("feeder", move |ctx| {
                for _ in 0..8 {
                    let Some(s) = cooked_out.take(ctx) else { break };
                    let ap = ap.clone();
                    mb.enqueue(ctx, millis(1), move |ctx| {
                        let mut g = ctx.enter(&ap);
                        g.with_mut(|v| v.push(s));
                    });
                }
                mb.stop(ctx);
            })
            .unwrap();
        // One-shot: a watchdog that must NOT fire (we finish in time).
        let watchdog = delayed_fork(ctx, "watchdog", Priority::of(6), secs(30), |_ctx| {
            panic!("system hung");
        });
        // Task rejuvenation: a flaky service succeeds on attempt 2.
        let report = supervise(ctx, "flaky", Priority::of(3), 3, millis(10), |attempt| {
            move |ctx: &threadstudy::pcr::ThreadCtx| {
                ctx.work(millis(2));
                if attempt == 0 {
                    panic!("first attempt always fails");
                }
            }
        });
        assert_eq!(report.starts, 2);
        ctx.join(feeder).unwrap();
        // The serializer drains asynchronously after stop(); wait for it.
        for _ in 0..200 {
            let done = {
                let g = ctx.enter(&applied2);
                g.with(|v| v.len() >= 8)
            };
            if done {
                break;
            }
            ctx.sleep_precise(millis(10));
        }
        assert!(watchdog.cancel());
        ticker.cancel();
        let g = ctx.enter(&applied2);
        g.with(|v| v.clone())
    });
    let r = sim.run(RunLimit::For(secs(20)));
    assert!(!r.deadlocked());
    // The pump and the cancelled watchdog linger (blocked take, 30s
    // sleep), so the run ends at the time limit; the main thread's
    // result must nonetheless be complete.
    let applied = h.into_result().expect("main thread finished").unwrap();
    assert_eq!(applied.len(), 8);
    for (i, s) in applied.iter().enumerate() {
        assert_eq!(s, &format!("tick-{i}"), "order violated at {i}");
    }
    // One panic from the flaky service's first attempt; nothing else.
    assert_eq!(sim.stats().panics, 1);
}

#[test]
fn the_same_catalogue_works_on_real_threads() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use threadstudy::mesa::{mbqueue, pool, pump, rejuvenate, sleeper};

    // Pool (defer work) feeding a serializer through a bounded queue,
    // with a periodical and a supervised service.
    let q: pump::BoundedQueue<u32> = pump::BoundedQueue::new("q", 16);
    let mb = Arc::new(mbqueue::MbQueue::new("applier"));
    let total = Arc::new(AtomicU32::new(0));

    let workers = pool::WorkerPool::new("pool", 2);
    for i in 0..10 {
        let q = q.clone();
        workers.defer(move || {
            q.put(i);
        });
    }
    let (mb2, total2, q2) = (Arc::clone(&mb), Arc::clone(&total), q.clone());
    let feeder = std::thread::spawn(move || {
        for _ in 0..10 {
            let v = q2.take().unwrap();
            let t = Arc::clone(&total2);
            mb2.enqueue(move || {
                t.fetch_add(v, Ordering::Relaxed);
            });
        }
    });
    let ticks = Arc::new(AtomicU32::new(0));
    let t2 = Arc::clone(&ticks);
    let p = sleeper::Periodical::spawn("tick", Duration::from_millis(3), move || {
        t2.fetch_add(1, Ordering::Relaxed);
    });
    let report = rejuvenate::supervise("svc", 2, Duration::from_millis(1), |attempt| {
        move || {
            if attempt == 0 {
                panic!("flaky");
            }
        }
    });
    feeder.join().unwrap();
    workers.shutdown();
    std::thread::sleep(Duration::from_millis(30));
    p.cancel();
    Arc::try_unwrap(mb).ok().expect("sole owner").shutdown();
    assert_eq!(total.load(Ordering::Relaxed), 45);
    assert_eq!(report.starts, 2);
    assert!(ticks.load(Ordering::Relaxed) >= 2);
}

#[test]
fn full_cedar_world_survives_immediate_notify_mode() {
    // Cross-cutting: run the whole Cedar keyboard world under the
    // *unfixed* §6.1 notify mode and observe spurious conflicts appear
    // in a realistic system, not just a microbenchmark.
    use threadstudy::pcr::{NotifyMode, SystemDaemonConfig};
    let cfg = SimConfig::default()
        .with_seed(11)
        .with_notify_mode(NotifyMode::Immediate)
        .with_system_daemon(SystemDaemonConfig::default());
    let mut sim = Sim::new(cfg);
    threadstudy::workloads::cedar::install(&mut sim, threadstudy::workloads::Benchmark::Keyboard);
    let r = sim.run(RunLimit::For(secs(10)));
    assert!(!r.deadlocked());
    assert!(
        sim.stats().spurious_conflicts > 0,
        "immediate notify should waste dispatches somewhere in a full world"
    );
    // And the fixed mode wastes none.
    let cfg = SimConfig::default()
        .with_seed(11)
        .with_system_daemon(SystemDaemonConfig::default());
    let mut sim = Sim::new(cfg);
    threadstudy::workloads::cedar::install(&mut sim, threadstudy::workloads::Benchmark::Keyboard);
    let r = sim.run(RunLimit::For(secs(10)));
    assert!(!r.deadlocked());
    assert_eq!(sim.stats().spurious_conflicts, 0);
}

#[test]
fn concurrency_exploiters_gain_on_the_mp_scheduler() {
    // §4.7: the very paradigm the uniprocessor could not reward. The
    // unchanged paradigms::exploit helpers, run on MpSim, now show real
    // virtual-time speedup.
    use threadstudy::paradigms::exploit::parallel_map;
    use threadstudy::pcr::MpSim;
    let run = |cpus: usize| {
        let mut sim = MpSim::new(SimConfig::default(), cpus);
        let h = sim.fork_root("driver", Priority::of(5), |ctx| {
            let t0 = ctx.now();
            let out = parallel_map(ctx, "sq", (0..8).collect(), millis(20), |_ctx, x: u32| {
                x * x
            });
            (out, ctx.now().since(t0))
        });
        sim.run(RunLimit::For(secs(60)));
        h.into_result().unwrap().unwrap()
    };
    let (out1, t1) = run(1);
    let (out4, t4) = run(4);
    assert_eq!(out1, out4);
    assert_eq!(out4, (0..8).map(|x| x * x).collect::<Vec<_>>());
    assert!(
        t4.as_micros() * 3 < t1.as_micros(),
        "4 CPUs ({t4}) should be well under a third of 1 CPU ({t1})"
    );
}
