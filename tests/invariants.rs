//! Structural invariants the paper reports, checked across the full
//! synthetic worlds, plus determinism and census consistency.

use threadstudy::core::System as CoreSystem;
use threadstudy::pcr::{millis, secs};
use threadstudy::workloads::{inventory, run_benchmark, runner, Benchmark, System};

#[test]
fn fork_generations_never_exceed_two() {
    // §3: "none of our benchmarks exhibited forking generations greater
    // than 2. That is, every transient thread was either the child or
    // grandchild of some worker or long-lived thread."
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            let r = run_benchmark(sys, b, secs(10), 7);
            assert!(
                r.max_generation <= 2,
                "{sys:?}/{b:?}: generation {} observed",
                r.max_generation
            );
        }
    }
}

#[test]
fn concurrent_threads_never_exceed_41() {
    // §3: "the maximum number of threads concurrently existing in the
    // system never exceeded 41."
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            let r = run_benchmark(sys, b, secs(10), 7);
            assert!(
                r.max_live_threads <= 41,
                "{sys:?}/{b:?}: {} live threads",
                r.max_live_threads
            );
        }
    }
}

#[test]
fn transient_lifetimes_are_well_under_a_second() {
    // §3: "an average lifetime for non-eternal threads that is well
    // under 1 second."
    let r = run_benchmark(System::Cedar, Benchmark::Format, secs(10), 7);
    let mean = r.mean_transient_lifetime.expect("transients existed");
    assert!(mean < secs(1), "mean transient lifetime {mean}");
}

#[test]
fn execution_intervals_are_bimodal_under_compute_load() {
    // §3: most intervals are 0-5ms, with a second peak at 45-50ms that
    // carries a large share of total CPU.
    let r = run_benchmark(System::Cedar, Benchmark::Compile, secs(10), 7);
    let h = &r.intervals;
    assert!(
        h.fraction_between(millis(0), millis(5)) > 0.5,
        "short intervals {:.2}",
        h.fraction_between(millis(0), millis(5))
    );
    let cpu_share = h.time_fraction_between(millis(44), millis(51));
    assert!(
        cpu_share > 0.2,
        "45-50ms intervals carry only {:.2} of CPU",
        cpu_share
    );
    let mode = h.mode_at_or_above(millis(10)).expect("second mode");
    assert!(
        (millis(40)..=millis(51)).contains(&mode),
        "second mode at {mode}"
    );
}

#[test]
fn benchmark_runs_are_deterministic() {
    let a = run_benchmark(System::Cedar, Benchmark::Keyboard, secs(5), 99);
    let b = run_benchmark(System::Cedar, Benchmark::Keyboard, secs(5), 99);
    assert_eq!(a.rates.switches_per_sec, b.rates.switches_per_sec);
    assert_eq!(a.rates.forks_per_sec, b.rates.forks_per_sec);
    assert_eq!(a.rates.ml_enters_per_sec, b.rates.ml_enters_per_sec);
    assert_eq!(a.rates.distinct_mls, b.rates.distinct_mls);
    assert_eq!(a.max_live_threads, b.max_live_threads);
}

#[test]
fn different_seeds_give_different_details() {
    let a = run_benchmark(System::Cedar, Benchmark::Keyboard, secs(5), 1);
    let b = run_benchmark(System::Cedar, Benchmark::Keyboard, secs(5), 2);
    // Arrival jitter differs; exact event counts should too.
    assert_ne!(
        (a.rates.switches_per_sec, a.rates.ml_enters_per_sec),
        (b.rates.switches_per_sec, b.rates.ml_enters_per_sec)
    );
}

#[test]
fn every_world_thread_names_a_modeled_census_site() {
    // The Table 4 census and the dynamic models must agree: each thread
    // the worlds create carries the name of a census entry flagged
    // `modeled` (the runtime's own SystemDaemon is runtime machinery,
    // not an application fork site).
    let inv = inventory::census();
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            let mut sim = runner::build(sys, b, 3);
            sim.run(threadstudy::pcr::RunLimit::For(secs(3)));
            for t in sim.threads_iter() {
                if t.name == "SystemDaemon" || t.name == "XServer" {
                    continue; // Runtime/substrate machinery.
                }
                let site = inv.find(t.name).unwrap_or_else(|| {
                    panic!("{sys:?}/{b:?}: thread '{}' has no census entry", t.name)
                });
                assert!(
                    site.modeled,
                    "census entry '{}' not flagged modeled",
                    t.name
                );
            }
        }
    }
}

#[test]
fn census_matches_table4_exactly() {
    let inv = inventory::census();
    assert_eq!(inv.total(CoreSystem::Cedar), 348);
    assert_eq!(inv.total(CoreSystem::Gvx), 234);
    let cedar = inv.counts(CoreSystem::Cedar);
    assert_eq!(cedar[&threadstudy::core::Paradigm::DeferWork], 108);
    assert_eq!(cedar[&threadstudy::core::Paradigm::Sleeper], 67);
    let gvx = inv.counts(CoreSystem::Gvx);
    assert_eq!(gvx[&threadstudy::core::Paradigm::DeferWork], 77);
    assert_eq!(gvx[&threadstudy::core::Paradigm::Unknown], 78);
}

#[test]
fn cedar_and_gvx_priority_profiles_differ_as_reported() {
    // §3: Cedar spreads long-lived threads over 1-4 and uses 7 (not 5);
    // GVX concentrates on 3 and uses 5 (not 7).
    let cedar = run_benchmark(System::Cedar, Benchmark::Keyboard, secs(10), 7);
    let gvx = run_benchmark(System::Gvx, Benchmark::Keyboard, secs(10), 7);
    let cpu = |r: &threadstudy::workloads::BenchResult, p: usize| r.cpu_by_priority[p - 1];
    // Cedar: levels 1..4 all see CPU; level 5 sees none; level 7 some.
    for p in 1..=4 {
        assert!(
            !cpu(&cedar, p).is_zero(),
            "Cedar priority {p} idle despite even spread"
        );
    }
    assert!(cpu(&cedar, 5).is_zero(), "Cedar must not use priority 5");
    assert!(!cpu(&cedar, 7).is_zero(), "Cedar uses 7 for interrupts");
    // GVX: 3 dominates; 7 unused; 5 used.
    assert!(cpu(&gvx, 7).is_zero(), "GVX must not use priority 7");
    assert!(!cpu(&gvx, 5).is_zero(), "GVX uses priority 5");
    let total: u64 = (1..=7).map(|p| cpu(&gvx, p).as_micros()).sum();
    assert!(
        cpu(&gvx, 3).as_micros() * 2 > total,
        "GVX priority 3 should dominate its CPU"
    );
}
