//! Shape assertions for Tables 1–3: the reproduction must preserve the
//! paper's orderings, ratios, and crossovers (absolute numbers are
//! calibrated, but these relations are what the paper's analysis rests
//! on). Windows are kept short (10 virtual seconds) so the suite stays
//! fast; the EXPERIMENTS.md data uses 30-second windows.

use threadstudy::pcr::secs;
use threadstudy::workloads::{run_benchmark, BenchResult, Benchmark, System};

fn probe(sys: System, b: Benchmark) -> BenchResult {
    run_benchmark(sys, b, secs(10), 0x5EED_0001)
}

#[test]
fn table1_keyboard_has_the_highest_cedar_fork_rate() {
    let kb = probe(System::Cedar, Benchmark::Keyboard);
    for other in [
        Benchmark::Idle,
        Benchmark::Mouse,
        Benchmark::Scroll,
        Benchmark::Preview,
        Benchmark::Make,
    ] {
        let r = probe(System::Cedar, other);
        assert!(
            kb.rates.forks_per_sec > r.rates.forks_per_sec,
            "keyboard ({}) must out-fork {other:?} ({})",
            kb.rates.forks_per_sec,
            r.rates.forks_per_sec
        );
    }
}

#[test]
fn table1_compute_benchmarks_fork_less_than_idle() {
    // §3: "the other two compute-intensive applications we examined
    // caused thread-forking activity to decrease by more than a factor
    // of 3."
    let idle = probe(System::Cedar, Benchmark::Idle);
    for b in [Benchmark::Make, Benchmark::Compile] {
        let r = probe(System::Cedar, b);
        assert!(
            r.rates.forks_per_sec * 2.0 < idle.rates.forks_per_sec,
            "{b:?} forks {} vs idle {}",
            r.rates.forks_per_sec,
            idle.rates.forks_per_sec
        );
    }
}

#[test]
fn table1_gvx_never_forks_and_switches_slowly() {
    let cedar_idle = probe(System::Cedar, Benchmark::Idle);
    for b in Benchmark::GVX {
        let r = probe(System::Gvx, b);
        assert_eq!(r.rates.forks_per_sec, 0.0, "GVX {b:?} forked");
        assert!(
            r.rates.switches_per_sec * 2.0 < cedar_idle.rates.switches_per_sec,
            "GVX {b:?} switches {} vs Cedar idle {}",
            r.rates.switches_per_sec,
            cedar_idle.rates.switches_per_sec
        );
    }
}

#[test]
fn table1_keyboard_raises_switching_in_both_systems() {
    for sys in [System::Cedar, System::Gvx] {
        let idle = probe(sys, Benchmark::Idle);
        let kb = probe(sys, Benchmark::Keyboard);
        assert!(
            kb.rates.switches_per_sec > idle.rates.switches_per_sec * 1.3,
            "{sys:?}: keyboard {} vs idle {}",
            kb.rates.switches_per_sec,
            idle.rates.switches_per_sec
        );
    }
}

#[test]
fn table2_idle_waits_are_mostly_timeouts_keyboard_mostly_not() {
    for sys in [System::Cedar, System::Gvx] {
        let idle = probe(sys, Benchmark::Idle);
        let kb = probe(sys, Benchmark::Keyboard);
        assert!(
            idle.rates.timeout_pct > 80.0,
            "{sys:?} idle timeouts {}%",
            idle.rates.timeout_pct
        );
        assert!(
            kb.rates.timeout_pct + 20.0 < idle.rates.timeout_pct,
            "{sys:?}: keyboard {}% vs idle {}%",
            kb.rates.timeout_pct,
            idle.rates.timeout_pct
        );
    }
}

#[test]
fn table2_monitor_rates_dwarf_wait_rates() {
    // "Monitors are entered much more frequently, reflecting their use
    // to protect data structures."
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            let r = probe(sys, b);
            assert!(
                r.rates.ml_enters_per_sec > 2.0 * r.rates.waits_per_sec,
                "{sys:?}/{b:?}: enters {} vs waits {}",
                r.rates.ml_enters_per_sec,
                r.rates.waits_per_sec
            );
        }
    }
}

#[test]
fn table2_contention_is_rare() {
    // Cedar: 0.01-0.1%; GVX: up to 0.4%. Either way, far below 1%.
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            let r = probe(sys, b);
            assert!(
                r.rates.contention_pct < 1.0,
                "{sys:?}/{b:?}: contention {}%",
                r.rates.contention_pct
            );
        }
    }
}

#[test]
fn table3_compile_touches_the_most_monitors() {
    let compile = probe(System::Cedar, Benchmark::Compile);
    for other in [
        Benchmark::Idle,
        Benchmark::Keyboard,
        Benchmark::Mouse,
        Benchmark::Scroll,
        Benchmark::Format,
        Benchmark::Preview,
        Benchmark::Make,
    ] {
        let r = probe(System::Cedar, other);
        assert!(
            compile.rates.distinct_mls > r.rates.distinct_mls,
            "compile ({}) must touch more MLs than {other:?} ({})",
            compile.rates.distinct_mls,
            r.rates.distinct_mls
        );
    }
    // And it is in the paper's thousands, not hundreds.
    assert!(compile.rates.distinct_mls > 1000);
}

#[test]
fn table3_gvx_uses_far_fewer_monitors_and_cvs() {
    let cedar = probe(System::Cedar, Benchmark::Idle);
    let gvx = probe(System::Gvx, Benchmark::Idle);
    assert!(gvx.rates.distinct_mls * 5 < cedar.rates.distinct_mls);
    assert!(gvx.rates.distinct_cvs < cedar.rates.distinct_cvs);
    // Paper ranges: Cedar 22-46 CVs, ~500-3000 MLs; GVX ~5-7 CVs, 48-209 MLs.
    assert!((15..=60).contains(&cedar.rates.distinct_cvs));
    assert!(gvx.rates.distinct_mls < 300);
}

#[test]
fn cedar_rates_land_within_2x_of_paper() {
    // Coarse absolute check: every Cedar rate within a factor of two of
    // the published number (the calibration is much closer; 2x is the
    // structural tolerance).
    for &b in Benchmark::suite(System::Cedar) {
        let r = probe(System::Cedar, b);
        let p = threadstudy::workloads::paper_row(System::Cedar, b);
        for (name, got, want) in [
            ("switches", r.rates.switches_per_sec, p.switches_per_sec),
            ("waits", r.rates.waits_per_sec, p.waits_per_sec),
            ("ml_enters", r.rates.ml_enters_per_sec, p.ml_enters_per_sec),
        ] {
            assert!(
                got > want / 2.0 && got < want * 2.0,
                "Cedar/{b:?} {name}: measured {got:.0} vs paper {want:.0}"
            );
        }
    }
}

#[test]
fn gvx_rates_land_within_2x_of_paper() {
    for &b in Benchmark::suite(System::Gvx) {
        let r = probe(System::Gvx, b);
        let p = threadstudy::workloads::paper_row(System::Gvx, b);
        for (name, got, want) in [
            ("switches", r.rates.switches_per_sec, p.switches_per_sec),
            ("waits", r.rates.waits_per_sec, p.waits_per_sec),
            ("ml_enters", r.rates.ml_enters_per_sec, p.ml_enters_per_sec),
        ] {
            assert!(
                got > want / 2.0 && got < want * 2.0,
                "GVX/{b:?} {name}: measured {got:.0} vs paper {want:.0}"
            );
        }
    }
}
