//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the two pieces the repo uses: `channel::unbounded` (a multi-producer,
//! *multi-consumer* queue — std's mpsc `Receiver` is not clonable, so
//! this is a Mutex + Condvar queue) and `thread::scope` with crossbeam's
//! `|scope|`-taking spawn signature, layered over `std::thread::scope`.

#![warn(missing_docs)]

/// Multi-producer, multi-consumer channels (`crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        shared: Mutex<Shared<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back, like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug does not require `T: Debug` (the payload may
    // be an unprintable closure) and elides the message.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; clonable for multiple producers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable for multiple consumers.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut sh = self
                .chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if sh.receivers == 0 {
                return Err(SendError(value));
            }
            sh.queue.push_back(value);
            drop(sh);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut sh = self
                .chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sh.senders -= 1;
            let last = sh.senders == 0;
            drop(sh);
            if last {
                // Wake blocked receivers so they observe disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty;
        /// fails once it is empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut sh = self
                .chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = sh.queue.pop_front() {
                    return Ok(v);
                }
                if sh.senders == 0 {
                    return Err(RecvError);
                }
                sh = self
                    .chan
                    .ready
                    .wait(sh)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API shape: the spawn closure
    //! receives `&Scope` (so workers can spawn siblings), and `scope`
    //! returns a `Result` instead of propagating panics by unwinding.

    /// A handle for spawning borrowed-data threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. The closure gets a
        /// copy of the scope, crossbeam-style.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. Unlike crossbeam the error arm is unreachable (panics in
    /// unjoined threads propagate by unwinding, as std does), but the
    /// `Result` keeps caller code source-compatible.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use super::thread as cb_thread;

    #[test]
    fn channel_multi_consumer_drains_everything() {
        let (tx, rx) = unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_disconnects_after_last_sender() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3];
        let sum = cb_thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let n = cb_thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 5).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 5);
    }
}
