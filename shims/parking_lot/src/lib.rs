//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! this shim exposing the subset of the `parking_lot` 0.12 API the repo
//! uses — `Mutex`/`MutexGuard` with panic-free (non-poisoning) locking,
//! `Condvar::{wait, wait_for}`, and `Mutex::try_lock_for` — implemented
//! on `std::sync`. Poisoned std locks are recovered transparently, so
//! like real parking_lot a panicking holder does not wedge the lock.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's no-poison `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts the lock, giving up after `timeout`. std has no timed
    /// mutex acquire, so this polls `try_lock` at sub-millisecond
    /// intervals — fine for the millisecond-scale timeouts used here.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(g) = self.try_lock() {
                return Some(g);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard is `Option` only so [`Condvar`] can temporarily
/// take it during a wait; it is `Some` whenever user code can touch it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable taking parking_lot-style `&mut MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits for a notify.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`], bounded by `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let mc = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = mc.lock();
            *g = 7;
            panic!("die holding the lock");
        });
        assert!(t.join().is_err());
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_for_times_out_and_succeeds() {
        let m = Arc::new(Mutex::new(()));
        let mc = Arc::clone(&m);
        let hold = thread::spawn(move || {
            let _g = mc.lock();
            thread::sleep(Duration::from_millis(50));
        });
        thread::sleep(Duration::from_millis(10));
        assert!(m.try_lock_for(Duration::from_millis(5)).is_none());
        hold.join().unwrap();
        assert!(m.try_lock_for(Duration::from_millis(100)).is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pc = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pc;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
