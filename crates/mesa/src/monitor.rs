//! Mesa-style monitors on real threads.
//!
//! A monitor couples a mutual-exclusion lock with the data it protects
//! (paper §2). [`Monitor::enter`] returns a guard; condition-variable
//! operations require the guard, so "CV operations are only invoked with
//! the monitor lock held" is enforced by the borrow checker, as the Mesa
//! compiler enforced it syntactically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, MutexGuard};

/// How a condition-variable WAIT completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A NOTIFY or BROADCAST woke the waiter.
    Notified,
    /// The CV's timeout interval expired first.
    TimedOut,
}

struct MonitorInner<T: ?Sized> {
    name: String,
    mutex: Mutex<T>,
}

/// A monitor protecting a value of type `T`. Clones share the lock and
/// data, as every procedure of a Mesa module shares the module's mutex.
pub struct Monitor<T> {
    inner: Arc<MonitorInner<T>>,
}

impl<T> Clone for Monitor<T> {
    fn clone(&self) -> Self {
        Monitor {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Monitor<T> {
    /// Creates a monitor around `data`.
    pub fn new(name: &str, data: T) -> Self {
        Monitor {
            inner: Arc::new(MonitorInner {
                name: name.to_string(),
                mutex: Mutex::new(data),
            }),
        }
    }

    /// The monitor's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Enters the monitor, blocking while another thread is inside.
    pub fn enter(&self) -> MonitorGuard<'_, T> {
        MonitorGuard {
            guard: Some(self.inner.mutex.lock()),
            monitor: self,
        }
    }

    /// Enters with a bound on the wait; `None` on timeout.
    pub fn try_enter_for(&self, timeout: Duration) -> Option<MonitorGuard<'_, T>> {
        self.inner
            .mutex
            .try_lock_for(timeout)
            .map(|g| MonitorGuard {
                guard: Some(g),
                monitor: self,
            })
    }

    /// Creates a condition variable on this monitor with the given
    /// timeout interval (`None` waits forever), per the Mesa model where
    /// the timeout is a property of the CV.
    pub fn condition(&self, name: &str, timeout: Option<Duration>) -> Condition {
        Condition {
            cv: Arc::new(Condvar::new()),
            owner: Arc::as_ptr(&self.inner) as *const () as usize,
            name: name.to_string(),
            timeout,
            stats: Arc::new(CvCounters::default()),
        }
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }
}

impl<T> std::fmt::Debug for Monitor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("name", &self.inner.name)
            .finish()
    }
}

/// Proof of being inside a monitor. Dropping exits (also on unwind, so a
/// panicking thread releases its locks).
pub struct MonitorGuard<'a, T> {
    // Always `Some` except transiently inside `Condition::wait`.
    guard: Option<MutexGuard<'a, T>>,
    monitor: &'a Monitor<T>,
}

impl<'a, T> MonitorGuard<'a, T> {
    /// Reads or mutates the protected data.
    pub fn data(&mut self) -> &mut T {
        &mut *self.guard.as_mut().expect("guard held")
    }

    /// Reads the protected data.
    pub fn data_ref(&self) -> &T {
        self.guard.as_deref().expect("guard held")
    }

    /// WAITs on `cv`, atomically releasing the monitor and re-entering
    /// before returning. Mesa semantics: the awaited condition is *not*
    /// guaranteed on return — re-check in a loop, or use
    /// [`MonitorGuard::wait_until`].
    ///
    /// # Panics
    ///
    /// Panics if `cv` belongs to a different monitor.
    pub fn wait(&mut self, cv: &Condition) -> WaitOutcome {
        assert_eq!(
            cv.owner,
            self.monitor.identity(),
            "WAIT: condition '{}' does not belong to monitor '{}'",
            cv.name,
            self.monitor.inner.name
        );
        let guard = self.guard.as_mut().expect("guard held");
        cv.stats.waits.fetch_add(1, Ordering::Relaxed);
        match cv.timeout {
            None => {
                cv.cv.wait(guard);
                WaitOutcome::Notified
            }
            Some(t) => {
                if cv.cv.wait_for(guard, t).timed_out() {
                    cv.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    WaitOutcome::TimedOut
                } else {
                    WaitOutcome::Notified
                }
            }
        }
    }

    /// WAITs until `pred` holds, re-checking after every wakeup — the
    /// "WAIT only in a loop" convention (§5.3). Timeouts just re-check.
    pub fn wait_until(&mut self, cv: &Condition, mut pred: impl FnMut(&T) -> bool) {
        while !pred(self.data_ref()) {
            self.wait(cv);
        }
    }

    /// WAITs until `pred` holds or `deadline` elapses; returns whether
    /// the predicate held.
    pub fn wait_until_for(
        &mut self,
        cv: &Condition,
        deadline: Duration,
        mut pred: impl FnMut(&T) -> bool,
    ) -> bool {
        let end = std::time::Instant::now() + deadline;
        loop {
            if pred(self.data_ref()) {
                return true;
            }
            if std::time::Instant::now() >= end {
                return false;
            }
            let guard = self.guard.as_mut().expect("guard held");
            let remaining = end.saturating_duration_since(std::time::Instant::now());
            let bounded = match cv.timeout {
                Some(t) => t.min(remaining),
                None => remaining,
            };
            cv.stats.waits.fetch_add(1, Ordering::Relaxed);
            if cv.cv.wait_for(guard, bounded).timed_out() {
                cv.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// NOTIFYs `cv`: exactly one waiter wakens, if any is queued. Only a
    /// performance hint under the WAIT-in-a-loop convention; BROADCAST
    /// can always be substituted.
    ///
    /// # Panics
    ///
    /// Panics if `cv` belongs to a different monitor.
    pub fn notify(&self, cv: &Condition) {
        assert_eq!(
            cv.owner,
            self.monitor.identity(),
            "NOTIFY: condition '{}' does not belong to monitor '{}'",
            cv.name,
            self.monitor.inner.name
        );
        cv.stats.notifies.fetch_add(1, Ordering::Relaxed);
        cv.cv.notify_one();
    }

    /// BROADCASTs `cv`: every waiter wakens.
    ///
    /// # Panics
    ///
    /// Panics if `cv` belongs to a different monitor.
    pub fn broadcast(&self, cv: &Condition) {
        assert_eq!(
            cv.owner,
            self.monitor.identity(),
            "BROADCAST: condition '{}' does not belong to monitor '{}'",
            cv.name,
            self.monitor.inner.name
        );
        cv.stats.notifies.fetch_add(1, Ordering::Relaxed);
        cv.cv.notify_all();
    }
}

#[derive(Default)]
struct CvCounters {
    waits: AtomicU64,
    timeouts: AtomicU64,
    notifies: AtomicU64,
}

/// Usage statistics for one condition variable — the instrumentation the
/// paper's authors wished they had when hunting §5.3's timeout-masked
/// missing NOTIFYs ("debugging the poor performance is often harder than
/// figuring out why a system has stopped").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConditionStats {
    /// WAITs begun.
    pub waits: u64,
    /// WAITs that ended by timeout.
    pub timeouts: u64,
    /// NOTIFY/BROADCAST calls.
    pub notifies: u64,
}

impl ConditionStats {
    /// Fraction of waits that timed out.
    pub fn timeout_fraction(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.timeouts as f64 / self.waits as f64
        }
    }

    /// The §5.3 smell: the CV makes progress almost exclusively through
    /// timeouts despite real traffic — a NOTIFY is probably missing.
    pub fn looks_timeout_driven(&self) -> bool {
        self.waits >= 10 && self.timeout_fraction() > 0.9 && self.notifies * 10 < self.waits
    }
}

/// A condition variable bound to one monitor, with the Mesa model's
/// per-CV timeout interval.
#[derive(Clone)]
pub struct Condition {
    cv: Arc<Condvar>,
    owner: usize,
    name: String,
    timeout: Option<Duration>,
    stats: Arc<CvCounters>,
}

impl Condition {
    /// The CV's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CV's timeout interval.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Snapshot of this CV's usage counters.
    pub fn stats(&self) -> ConditionStats {
        ConditionStats {
            waits: self.stats.waits.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            notifies: self.stats.notifies.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condition")
            .field("name", &self.name)
            .field("timeout", &self.timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn mutual_exclusion_counter() {
        let m = Monitor::new("counter", 0u64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    let mut g = m.enter();
                    *g.data() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.enter().data(), 8000);
    }

    #[test]
    fn producer_consumer_with_notify() {
        let m = Monitor::new("queue", Vec::<u32>::new());
        let cv = m.condition("nonempty", None);
        let (mc, cvc) = (m.clone(), cv.clone());
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            let mut g = mc.enter();
            while got.len() < 5 {
                g.wait_until(&cvc, |q| !q.is_empty());
                got.append(g.data());
            }
            got
        });
        for i in 0..5u32 {
            thread::sleep(Duration::from_millis(2));
            let mut g = m.enter();
            g.data().push(i);
            g.notify(&cv);
        }
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wait_times_out_per_cv_interval() {
        let m = Monitor::new("m", ());
        let cv = m.condition("never", Some(Duration::from_millis(20)));
        let start = Instant::now();
        let mut g = m.enter();
        assert_eq!(g.wait(&cv), WaitOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn broadcast_wakes_all() {
        let m = Monitor::new("flag", false);
        let cv = m.condition("set", None);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (m, cv) = (m.clone(), cv.clone());
            handles.push(thread::spawn(move || {
                let mut g = m.enter();
                g.wait_until(&cv, |&f| f);
                true
            }));
        }
        thread::sleep(Duration::from_millis(20));
        {
            let mut g = m.enter();
            *g.data() = true;
            g.broadcast(&cv);
        }
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "does not belong to monitor")]
    fn cross_monitor_wait_rejected() {
        let a = Monitor::new("a", ());
        let b = Monitor::new("b", ());
        let cv = b.condition("of-b", None);
        let mut g = a.enter();
        let _ = g.wait(&cv);
    }

    #[test]
    fn wait_until_for_gives_up() {
        let m = Monitor::new("m", 0u32);
        let cv = m.condition("cv", Some(Duration::from_millis(5)));
        let mut g = m.enter();
        let ok = g.wait_until_for(&cv, Duration::from_millis(30), |&v| v > 0);
        assert!(!ok);
    }

    #[test]
    fn try_enter_for_times_out_under_contention() {
        let m = Monitor::new("held", ());
        let mc = m.clone();
        let holder = thread::spawn(move || {
            let _g = mc.enter();
            thread::sleep(Duration::from_millis(50));
        });
        thread::sleep(Duration::from_millis(10));
        assert!(m.try_enter_for(Duration::from_millis(5)).is_none());
        holder.join().unwrap();
        assert!(m.try_enter_for(Duration::from_millis(50)).is_some());
    }

    #[test]
    fn condition_stats_track_usage() {
        let m = Monitor::new("m", 0u32);
        let cv = m.condition("cv", Some(Duration::from_millis(5)));
        let mut g = m.enter();
        for _ in 0..3 {
            let _ = g.wait(&cv); // All time out: nobody notifies.
        }
        g.notify(&cv);
        drop(g);
        let st = cv.stats();
        assert_eq!(st.waits, 3);
        assert_eq!(st.timeouts, 3);
        assert_eq!(st.notifies, 1);
        assert!((st.timeout_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_driven_smell_detector() {
        let healthy = ConditionStats {
            waits: 100,
            timeouts: 20,
            notifies: 80,
        };
        assert!(!healthy.looks_timeout_driven());
        let buggy = ConditionStats {
            waits: 100,
            timeouts: 98,
            notifies: 2,
        };
        assert!(buggy.looks_timeout_driven());
        // Idle sleepers time out a lot but also see few waits relative
        // to traffic; the detector needs volume before it accuses.
        let quiet = ConditionStats {
            waits: 5,
            timeouts: 5,
            notifies: 0,
        };
        assert!(!quiet.looks_timeout_driven());
    }

    #[test]
    fn guard_released_on_panic() {
        let m = Monitor::new("m", 0u32);
        let mc = m.clone();
        let t = thread::spawn(move || {
            let mut g = mc.enter();
            *g.data() = 1;
            panic!("die holding the monitor");
        });
        assert!(t.join().is_err());
        // The monitor must be free again.
        let mut g = m.enter();
        assert_eq!(*g.data(), 1);
    }
}
