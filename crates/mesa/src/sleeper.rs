//! Sleepers and one-shots on real threads (§4.3).
//!
//! [`Periodical`] is the `PeriodicalFork` encapsulation (timeout-driven
//! sleeper with its state in a closure); [`DelayedFork`] the one-shot.
//! Both use a condvar-based cancellable sleep so `cancel` takes effect
//! immediately instead of at the next wakeup.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

struct CancelState {
    cancelled: Mutex<bool>,
    cv: Condvar,
}

impl CancelState {
    fn new() -> Arc<Self> {
        Arc::new(CancelState {
            cancelled: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    /// Sleeps up to `d`; returns `true` if cancelled during the sleep.
    fn sleep(&self, d: Duration) -> bool {
        let mut c = self.cancelled.lock();
        if *c {
            return true;
        }
        let _ = self.cv.wait_for(&mut c, d);
        *c
    }

    fn cancel(&self) {
        *self.cancelled.lock() = true;
        self.cv.notify_all();
    }

    fn is_cancelled(&self) -> bool {
        *self.cancelled.lock()
    }
}

/// Handle to a periodic sleeper.
pub struct Periodical {
    state: Arc<CancelState>,
    worker: Option<JoinHandle<()>>,
}

impl Periodical {
    /// Spawns a thread that runs `tick` every `period` until cancelled.
    pub fn spawn<F>(name: &str, period: Duration, mut tick: F) -> Self
    where
        F: FnMut() + Send + 'static,
    {
        let state = CancelState::new();
        let st = Arc::clone(&state);
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                while !st.sleep(period) {
                    tick();
                }
            })
            .expect("spawn periodical");
        Periodical {
            state,
            worker: Some(worker),
        }
    }

    /// Stops the sleeper promptly and joins it.
    pub fn cancel(mut self) {
        self.state.cancel();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }
}

impl Drop for Periodical {
    fn drop(&mut self) {
        self.state.cancel();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A one-shot: runs `f` once after `delay`, unless cancelled first —
/// the `DelayedFork` encapsulation.
pub struct DelayedFork {
    state: Arc<CancelState>,
    fired: Arc<Mutex<bool>>,
    worker: Option<JoinHandle<()>>,
}

impl DelayedFork {
    /// Schedules `f` to run after `delay`.
    pub fn schedule<F>(name: &str, delay: Duration, f: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        let state = CancelState::new();
        let fired = Arc::new(Mutex::new(false));
        let (st, fl) = (Arc::clone(&state), Arc::clone(&fired));
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                if st.sleep(delay) {
                    return; // Cancelled during the delay.
                }
                *fl.lock() = true;
                f();
            })
            .expect("spawn one-shot");
        DelayedFork {
            state,
            fired,
            worker: Some(worker),
        }
    }

    /// Cancels if the action has not started; returns `true` on success.
    pub fn cancel(&self) -> bool {
        if *self.fired.lock() {
            return false;
        }
        self.state.cancel();
        !*self.fired.lock()
    }

    /// True once the action has started.
    pub fn fired(&self) -> bool {
        *self.fired.lock()
    }

    /// Waits for the one-shot thread to finish (fired or cancelled).
    pub fn join(mut self) -> bool {
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        *self.fired.lock()
    }
}

impl Drop for DelayedFork {
    fn drop(&mut self) {
        // Don't block destruction on the delay: cancel if still pending.
        self.state.cancel();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    #[test]
    fn periodical_ticks_repeatedly() {
        let n = Arc::new(AtomicU32::new(0));
        let nc = Arc::clone(&n);
        let p = Periodical::spawn("t", Duration::from_millis(5), move || {
            nc.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        p.cancel();
        let ticks = n.load(Ordering::Relaxed);
        assert!((5..=14).contains(&ticks), "ticks = {ticks}");
    }

    #[test]
    fn periodical_cancel_is_prompt() {
        let p = Periodical::spawn("slow", Duration::from_secs(3600), || {});
        let start = Instant::now();
        p.cancel(); // Must not wait an hour.
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn delayed_fork_fires_once_after_delay() {
        let n = Arc::new(AtomicU32::new(0));
        let nc = Arc::clone(&n);
        let start = Instant::now();
        let shot = DelayedFork::schedule("shot", Duration::from_millis(20), move || {
            nc.fetch_add(1, Ordering::Relaxed);
        });
        assert!(shot.join());
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancelled_delayed_fork_never_fires() {
        let n = Arc::new(AtomicU32::new(0));
        let nc = Arc::clone(&n);
        let shot = DelayedFork::schedule("shot", Duration::from_millis(100), move || {
            nc.fetch_add(1, Ordering::Relaxed);
        });
        assert!(shot.cancel());
        assert!(!shot.join());
        assert_eq!(n.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancel_after_fire_fails() {
        let shot = DelayedFork::schedule("shot", Duration::from_millis(1), || {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(!shot.cancel());
        assert!(shot.fired());
    }
}
