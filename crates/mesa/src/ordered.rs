//! Deadlock avoidance on real threads (§4.4): ranked locks and
//! fork-to-avoid.
//!
//! The systematic alternative to the paper's fork-to-avoid paradigm is a
//! global lock order. [`RankedMonitor`] assigns every lock a rank and
//! panics (in any build) when a thread acquires against the order — an
//! executable version of the lock-order conventions the paper's
//! programmers kept in their heads.

use std::cell::RefCell;
use std::thread;

use crate::monitor::{Monitor, MonitorGuard};

thread_local! {
    static HELD_RANKS: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// A monitor with a rank; acquisitions must be in strictly increasing
/// rank order within a thread.
pub struct RankedMonitor<T> {
    monitor: Monitor<T>,
    rank: u32,
}

impl<T> Clone for RankedMonitor<T> {
    fn clone(&self) -> Self {
        RankedMonitor {
            monitor: self.monitor.clone(),
            rank: self.rank,
        }
    }
}

impl<T> RankedMonitor<T> {
    /// Creates a ranked monitor.
    pub fn new(name: &str, rank: u32, data: T) -> Self {
        RankedMonitor {
            monitor: Monitor::new(name, data),
            rank,
        }
    }

    /// The monitor's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Enters the monitor, enforcing the rank order.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread already holds a lock of rank ≥ this
    /// one — the acquisition that could deadlock.
    pub fn enter(&self) -> RankedGuard<'_, T> {
        HELD_RANKS.with(|held| {
            let held = held.borrow();
            if let Some(&top) = held.last() {
                assert!(
                    self.rank > top,
                    "lock-order violation: acquiring rank {} ({}) while holding rank {}",
                    self.rank,
                    self.monitor.name(),
                    top
                );
            }
        });
        let guard = self.monitor.enter();
        HELD_RANKS.with(|held| held.borrow_mut().push(self.rank));
        RankedGuard {
            guard: Some(guard),
            rank: self.rank,
        }
    }
}

/// Guard for a [`RankedMonitor`]; releases the rank on drop.
pub struct RankedGuard<'a, T> {
    guard: Option<MonitorGuard<'a, T>>,
    rank: u32,
}

impl<'a, T> RankedGuard<'a, T> {
    /// Access the protected data.
    pub fn data(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard held").data()
    }

    /// The underlying monitor guard (for CV operations).
    pub fn monitor_guard(&mut self) -> &mut MonitorGuard<'a, T> {
        self.guard.as_mut().expect("guard held")
    }
}

impl<'a, T> Drop for RankedGuard<'a, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        HELD_RANKS.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

/// Forks `f` so it can take locks in a legal order that the caller —
/// already holding some — cannot (the paper's window-adjuster shape).
/// Returns the join handle; detach by dropping it.
pub fn fork_to_avoid_deadlock<F>(name: &str, f: F) -> thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn deadlock-avoider")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_allowed() {
        let a = RankedMonitor::new("a", 1, 0u32);
        let b = RankedMonitor::new("b", 2, 0u32);
        let mut ga = a.enter();
        *ga.data() += 1;
        let mut gb = b.enter();
        *gb.data() += 1;
        drop(gb);
        drop(ga);
        // Re-acquisition after release is fine.
        let _ga = a.enter();
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn out_of_order_acquisition_panics() {
        let a = RankedMonitor::new("a", 1, ());
        let b = RankedMonitor::new("b", 2, ());
        let _gb = b.enter();
        let _ga = a.enter(); // rank 1 after rank 2: the ABBA precursor.
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_reacquisition_panics() {
        let a = RankedMonitor::new("a", 1, ());
        let b = RankedMonitor::new("b", 1, ());
        let _ga = a.enter();
        let _gb = b.enter();
    }

    #[test]
    fn ranks_are_per_thread() {
        let a = RankedMonitor::new("a", 5, ());
        let _ga = a.enter();
        // Another thread can take a lower rank: no shared held-state.
        let b = RankedMonitor::new("b", 1, ());
        let t = std::thread::spawn(move || {
            let _gb = b.enter();
        });
        t.join().unwrap();
    }

    #[test]
    fn fork_to_avoid_escapes_held_rank() {
        let low = RankedMonitor::new("low", 1, 0u32);
        let high = RankedMonitor::new("high", 2, 0u32);
        let _gh = high.enter(); // Holding rank 2, we may not take rank 1...
        let lc = low.clone();
        // ...but a forked thread may.
        let t = fork_to_avoid_deadlock("repaint", move || {
            let mut g = lc.enter();
            *g.data() = 42;
        });
        t.join().unwrap();
        drop(_gh);
        let mut g = low.enter();
        assert_eq!(*g.data(), 42);
    }
}
