//! Slack processes on real threads (§4.2, §5.2).
//!
//! The real-thread incarnation cannot rely on `YieldButNotToMe` (no such
//! OS primitive); instead it implements the slack directly: after taking
//! the first item of a batch it waits a short *slack latency* for more
//! input (the explicit added latency of the paradigm), merges what
//! arrived, and emits one batch downstream. This is the design the paper
//! wished for ("a timeout instead of a yield ... would work fine" given
//! a fine-grained timer, §6.3) — and std timers are fine-grained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pump::BoundedQueue;

/// Counters describing what a slack process accomplished.
#[derive(Clone, Debug, Default)]
pub struct SlackCounters {
    items_in: Arc<AtomicU64>,
    batches_out: Arc<AtomicU64>,
    merged_away: Arc<AtomicU64>,
}

impl SlackCounters {
    /// Items taken from the input.
    pub fn items_in(&self) -> u64 {
        self.items_in.load(Ordering::Relaxed)
    }

    /// Batches emitted downstream.
    pub fn batches_out(&self) -> u64 {
        self.batches_out.load(Ordering::Relaxed)
    }

    /// Items absorbed by merging.
    pub fn merged_away(&self) -> u64 {
        self.merged_away.load(Ordering::Relaxed)
    }

    /// Mean items per batch.
    pub fn merge_ratio(&self) -> f64 {
        let b = self.batches_out();
        if b == 0 {
            0.0
        } else {
            self.items_in() as f64 / b as f64
        }
    }
}

/// A running slack process.
pub struct SlackProcess {
    worker: Option<JoinHandle<()>>,
    counters: SlackCounters,
}

impl SlackProcess {
    /// Spawns a slack process over `input`.
    ///
    /// After the first item of each batch it sleeps `slack_latency`
    /// (the explicitly added latency), merges everything that queued up
    /// meanwhile with `merge` (returns `true` when the item was absorbed
    /// into an existing entry), and calls `emit` with the batch. Exits
    /// when the input closes and drains.
    pub fn spawn<T, M, E>(
        name: &str,
        input: BoundedQueue<T>,
        slack_latency: Duration,
        mut merge: M,
        mut emit: E,
    ) -> Self
    where
        T: Send + 'static,
        M: FnMut(&mut Vec<T>, T) -> bool + Send + 'static,
        E: FnMut(Vec<T>) + Send + 'static,
    {
        let counters = SlackCounters::default();
        let c = counters.clone();
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || loop {
                let Some(first) = input.take() else { break };
                let mut taken = 1u64;
                let mut absorbed = 0u64;
                let mut batch = Vec::new();
                if merge(&mut batch, first) {
                    absorbed += 1;
                }
                if !slack_latency.is_zero() {
                    std::thread::sleep(slack_latency);
                }
                while let Some(item) = input.try_take() {
                    taken += 1;
                    if merge(&mut batch, item) {
                        absorbed += 1;
                    }
                }
                emit(batch);
                c.items_in.fetch_add(taken, Ordering::Relaxed);
                c.batches_out.fetch_add(1, Ordering::Relaxed);
                c.merged_away.fetch_add(absorbed, Ordering::Relaxed);
            })
            .expect("spawn slack process");
        SlackProcess {
            worker: Some(worker),
            counters,
        }
    }

    /// The process's counters (shared; readable while running).
    pub fn counters(&self) -> SlackCounters {
        self.counters.clone()
    }

    /// Waits for the process to finish (input closed and drained).
    pub fn join(mut self) -> SlackCounters {
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.counters.clone()
    }
}

impl Drop for SlackProcess {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// Coalesces items equal under `key`: later data replaces earlier data
/// with the same key.
pub fn merge_by_key<T, K: PartialEq, F: Fn(&T) -> K>(key: F) -> impl FnMut(&mut Vec<T>, T) -> bool {
    move |batch: &mut Vec<T>, item: T| {
        let k = key(&item);
        if let Some(slot) = batch.iter_mut().find(|b| key(b) == k) {
            *slot = item;
            true
        } else {
            batch.push(item);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(slack: Duration) -> SlackCounters {
        let input = BoundedQueue::new("paint", 256);
        let ip = input.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..200u32 {
                // ~20µs of production per request.
                std::thread::sleep(Duration::from_micros(20));
                ip.put((i % 10, i));
            }
            ip.close();
        });
        let slack_proc = SlackProcess::spawn(
            "buffer",
            input,
            slack,
            merge_by_key(|r: &(u32, u32)| r.0),
            |_batch| {},
        );
        producer.join().unwrap();
        slack_proc.join()
    }

    #[test]
    fn slack_latency_enables_merging() {
        let with_slack = run(Duration::from_millis(5));
        assert_eq!(with_slack.items_in(), 200);
        assert!(
            with_slack.merge_ratio() >= 3.0,
            "ratio = {}",
            with_slack.merge_ratio()
        );
    }

    #[test]
    fn no_slack_no_merging_guarantee_but_all_items_flow() {
        let none = run(Duration::ZERO);
        assert_eq!(none.items_in(), 200);
        assert!(none.batches_out() >= 1);
    }

    #[test]
    fn counters_visible_while_running() {
        let input = BoundedQueue::new("q", 16);
        let sp = SlackProcess::spawn(
            "s",
            input.clone(),
            Duration::from_millis(1),
            merge_by_key(|x: &u32| *x),
            |_b| {},
        );
        let counters = sp.counters();
        input.put(1);
        input.close();
        let final_counters = sp.join();
        assert_eq!(final_counters.items_in(), 1);
        assert_eq!(counters.items_in(), 1); // Shared handle sees it too.
    }
}
