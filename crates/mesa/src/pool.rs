//! Defer work on real threads (§4.1): a panic-safe worker pool.
//!
//! The paper's Cedar forked a fresh thread per deferred job; with
//! hundreds of jobs that costs "100 kilobytes for each of hundreds of
//! ... stacks". A fixed pool keeps the defer-work paradigm (callers
//! return immediately) while bounding the resource bill — and, unlike a
//! raw `thread::spawn`, survives panicking jobs, applying the task-
//! rejuvenation lesson to the pool's own workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    executed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size defer-work pool.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(name: &str, workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(PoolShared {
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not take the worker
                            // down with it (§4.5's lesson applied here).
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                shared.panicked.fetch_add(1, Ordering::Relaxed);
                            }
                            shared.executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Defers `job` to the pool; returns immediately.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Jobs executed so far (including panicked ones).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked.
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Drains remaining jobs and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take()); // Close the channel: workers exit at drain.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new("p", 4);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.defer(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn defer_returns_before_job_finishes() {
        let pool = WorkerPool::new("p", 1);
        let start = std::time::Instant::now();
        pool.defer(|| std::thread::sleep(Duration::from_millis(50)));
        assert!(start.elapsed() < Duration::from_millis(20));
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        // Suppress the default panic print for the intentional panic.
        let pool = WorkerPool::new("p", 1);
        pool.defer(|| panic!("bad job"));
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        pool.defer(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        // Wait for both jobs, then verify the second still ran.
        while pool.executed() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(pool.panicked(), 1);
        pool.shutdown();
    }

    #[test]
    fn counters_track_execution() {
        let pool = WorkerPool::new("p", 2);
        pool.defer(|| panic!("x"));
        pool.defer(|| {});
        pool.defer(|| {});
        while pool.executed() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.executed(), 3);
        assert_eq!(pool.panicked(), 1);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkerPool::new("p", 0);
    }
}
