//! General pumps on real threads (§4.2): bounded buffers and pipelines.

use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::monitor::{Condition, Monitor};

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A monitor-protected bounded buffer with `nonempty`/`nonfull` CVs.
/// Clones share the queue.
pub struct BoundedQueue<T> {
    monitor: Monitor<QueueState<T>>,
    nonempty: Condition,
    nonfull: Condition,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            monitor: self.monitor.clone(),
            nonempty: self.nonempty.clone(),
            nonfull: self.nonfull.clone(),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let monitor = Monitor::new(
            name,
            QueueState {
                items: VecDeque::new(),
                capacity,
                closed: false,
            },
        );
        let nonempty = monitor.condition(&format!("{name}.nonempty"), None);
        let nonfull = monitor.condition(&format!("{name}.nonfull"), None);
        BoundedQueue {
            monitor,
            nonempty,
            nonfull,
        }
    }

    /// Inserts `item`, blocking while full. Returns `false` (dropping the
    /// item) if the queue is closed.
    pub fn put(&self, item: T) -> bool {
        let mut g = self.monitor.enter();
        g.wait_until(&self.nonfull, |q| q.closed || q.items.len() < q.capacity);
        if g.data_ref().closed {
            return false;
        }
        g.data().items.push_back(item);
        g.notify(&self.nonempty);
        true
    }

    /// Inserts without blocking; hands the item back if full or closed.
    pub fn try_put(&self, item: T) -> Result<(), T> {
        let mut g = self.monitor.enter();
        let q = g.data();
        if q.closed || q.items.len() >= q.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        g.notify(&self.nonempty);
        Ok(())
    }

    /// Removes the next item, blocking while empty. `None` once closed
    /// and drained.
    pub fn take(&self) -> Option<T> {
        let mut g = self.monitor.enter();
        g.wait_until(&self.nonempty, |q| q.closed || !q.items.is_empty());
        let item = g.data().items.pop_front();
        if item.is_some() {
            g.notify(&self.nonfull);
        }
        item
    }

    /// Removes the next item, waiting at most `timeout`.
    pub fn take_timeout(&self, timeout: Duration) -> Option<T> {
        let mut g = self.monitor.enter();
        if !g.wait_until_for(&self.nonempty, timeout, |q| q.closed || !q.items.is_empty()) {
            return None;
        }
        let item = g.data().items.pop_front();
        if item.is_some() {
            g.notify(&self.nonfull);
        }
        item
    }

    /// Removes the next item without blocking.
    pub fn try_take(&self) -> Option<T> {
        let mut g = self.monitor.enter();
        let item = g.data().items.pop_front();
        if item.is_some() {
            g.notify(&self.nonfull);
        }
        item
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut g = self.monitor.enter();
        let items: Vec<T> = g.data().items.drain(..).collect();
        if !items.is_empty() {
            g.broadcast(&self.nonfull);
        }
        items
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.monitor.enter().data().items.len()
    }

    /// True if currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue; all waiters wake.
    pub fn close(&self) {
        let mut g = self.monitor.enter();
        g.data().closed = true;
        g.broadcast(&self.nonempty);
        g.broadcast(&self.nonfull);
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.monitor.enter().data().closed
    }
}

/// Spawns a pump thread connecting `input` to `output` through
/// `transform`; exits (closing `output`) when `input` closes and drains.
pub fn spawn_pump<T, U, F>(
    name: &str,
    input: BoundedQueue<T>,
    output: BoundedQueue<U>,
    mut transform: F,
) -> JoinHandle<()>
where
    T: Send + 'static,
    U: Send + 'static,
    F: FnMut(T) -> Option<U> + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            while let Some(item) = input.take() {
                if let Some(out) = transform(item) {
                    output.put(out);
                }
            }
            output.close();
        })
        .expect("spawn pump thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new("q", 4);
        let qp = q.clone();
        let producer = thread::spawn(move || {
            for i in 0..50 {
                qp.put(i);
            }
            qp.close();
        });
        let mut got = Vec::new();
        while let Some(x) = q.take() {
            got.push(x);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_blocks_producer() {
        let q = BoundedQueue::new("q", 1);
        q.put(0);
        assert_eq!(q.try_put(1), Err(1));
        let qc = q.clone();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            qc.take()
        });
        // This put blocks until the taker drains a slot.
        let start = std::time::Instant::now();
        assert!(q.put(2));
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(t.join().unwrap(), Some(0));
    }

    #[test]
    fn take_timeout_expires() {
        let q: BoundedQueue<u8> = BoundedQueue::new("q", 2);
        assert_eq!(q.take_timeout(Duration::from_millis(10)), None);
        q.put(7);
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Some(7));
    }

    #[test]
    fn three_stage_pipeline() {
        let a = BoundedQueue::new("a", 8);
        let b = BoundedQueue::new("b", 8);
        let c = BoundedQueue::new("c", 8);
        let p1 = spawn_pump("double", a.clone(), b.clone(), |x: u32| Some(x * 2));
        let p2 = spawn_pump("fmt", b, c.clone(), |x: u32| Some(format!("{x}!")));
        for i in 0..4 {
            a.put(i);
        }
        a.close();
        let mut got = Vec::new();
        while let Some(s) = c.take() {
            got.push(s);
        }
        p1.join().unwrap();
        p2.join().unwrap();
        assert_eq!(got, vec!["0!", "2!", "4!", "6!"]);
    }

    #[test]
    fn close_wakes_everyone() {
        let q: BoundedQueue<u8> = BoundedQueue::new("q", 1);
        let takers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || q.take())
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for t in takers {
            assert_eq!(t.join().unwrap(), None);
        }
        assert!(!q.put(1));
    }

    #[test]
    fn drain_empties_queue() {
        let q = BoundedQueue::new("q", 8);
        for i in 0..5 {
            q.put(i);
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }
}
