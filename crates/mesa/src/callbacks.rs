//! Fork-boolean callbacks on real threads (§4.8).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;

/// How a registered callback is invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallbackMode {
    /// In a freshly spawned thread (the safe default: "the default is
    /// almost always TRUE").
    Forked,
    /// Inline in the invoking thread — fast, for experts; a panicking
    /// client would take the service down, so inline callbacks are run
    /// under `catch_unwind` and failures are reported to the caller.
    Unforked,
}

type Callback<E> = Arc<dyn Fn(&E) + Send + Sync + 'static>;
type Entries<E> = Arc<Mutex<Vec<(Callback<E>, CallbackMode)>>>;

/// A registry of client callbacks with per-registration fork control.
pub struct CallbackRegistry<E: Clone + Send + Sync + 'static> {
    entries: Entries<E>,
}

impl<E: Clone + Send + Sync + 'static> Clone for CallbackRegistry<E> {
    fn clone(&self) -> Self {
        CallbackRegistry {
            entries: Arc::clone(&self.entries),
        }
    }
}

impl<E: Clone + Send + Sync + 'static> Default for CallbackRegistry<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Clone + Send + Sync + 'static> CallbackRegistry<E> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CallbackRegistry {
            entries: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers with the forked default.
    pub fn register<F: Fn(&E) + Send + Sync + 'static>(&self, f: F) {
        self.register_with(CallbackMode::Forked, f);
    }

    /// Registers with an explicit mode.
    pub fn register_with<F: Fn(&E) + Send + Sync + 'static>(&self, mode: CallbackMode, f: F) {
        self.entries.lock().push((Arc::new(f), mode));
    }

    /// Number of registered callbacks.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers `event` to every callback. Returns the number of inline
    /// callbacks that panicked (forked ones report nothing — the paper's
    /// insulation property; their threads are detached).
    pub fn invoke(&self, event: E) -> usize {
        let snapshot: Vec<(Callback<E>, CallbackMode)> = self.entries.lock().clone();
        let mut inline_failures = 0;
        for (i, (cb, mode)) in snapshot.into_iter().enumerate() {
            match mode {
                CallbackMode::Forked => {
                    let ev = event.clone();
                    let _ = std::thread::Builder::new()
                        .name(format!("callback-{i}"))
                        .spawn(move || {
                            // Insulate: a panic dies with this thread.
                            let _ = catch_unwind(AssertUnwindSafe(|| cb(&ev)));
                        });
                }
                CallbackMode::Unforked => {
                    if catch_unwind(AssertUnwindSafe(|| cb(&event))).is_err() {
                        inline_failures += 1;
                    }
                }
            }
        }
        inline_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[test]
    fn forked_callbacks_all_run() {
        let reg: CallbackRegistry<u32> = CallbackRegistry::new();
        let n = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let n = Arc::clone(&n);
            reg.register(move |ev| {
                n.fetch_add(*ev, Ordering::Relaxed);
            });
        }
        assert_eq!(reg.invoke(10), 0);
        // Forked: wait for delivery.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while n.load(Ordering::Relaxed) < 40 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(n.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn inline_panic_is_reported_not_fatal() {
        let reg: CallbackRegistry<()> = CallbackRegistry::new();
        reg.register_with(CallbackMode::Unforked, |_| panic!("bad client"));
        let n = Arc::new(AtomicU32::new(0));
        let nc = Arc::clone(&n);
        reg.register_with(CallbackMode::Unforked, move |_| {
            nc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(reg.invoke(()), 1);
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn registry_is_shared_between_clones() {
        let reg: CallbackRegistry<()> = CallbackRegistry::new();
        let clone = reg.clone();
        clone.register(|_| {});
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }
}
