//! # mesa — Mesa-style threading and the ten paradigms on real threads
//!
//! The `paradigms` crate implements the paper's thread-usage paradigms on
//! the deterministic simulator, for reproducing the paper's experiments.
//! This crate is the *adoptable* incarnation: the same Mesa thread model
//! (monitors bound to the data they protect, condition variables with
//! per-CV timeouts, exactly-one-waiter NOTIFY as a hint, the WAIT-in-a-
//! loop convention) and the same paradigm catalogue, on `std::thread`:
//!
//! * [`monitor`] — [`monitor::Monitor`], [`monitor::Condition`],
//!   guard-enforced CV usage;
//! * [`pool`] — defer work ([`pool::WorkerPool`], panic-safe);
//! * [`pump`] — bounded buffers; [`pipeline`] — the stage builder;
//! * [`slack`] — slack processes with explicit slack latency;
//! * [`sleeper`] — [`sleeper::Periodical`], [`sleeper::DelayedFork`];
//! * [`button`] — the guarded button (§4.3's one-shot showcase);
//! * [`mbqueue`] — the `MBQueue` serializer;
//! * [`rejuvenate`] — supervision with restart budgets;
//! * [`callbacks`] — fork-boolean callback registries;
//! * [`ordered`] — ranked locks + fork-to-avoid-deadlock;
//! * [`exploit`] — fork/join parallelism helpers (with real speedup,
//!   unlike the paper's uniprocessor).
//!
//! # Example: a monitor with the WAIT-in-a-loop convention
//!
//! ```
//! use mesa::Monitor;
//! use std::time::Duration;
//!
//! let jobs = Monitor::new("jobs", Vec::new());
//! let nonempty = jobs.condition("nonempty", Some(Duration::from_millis(50)));
//!
//! let (j, cv) = (jobs.clone(), nonempty.clone());
//! let consumer = std::thread::spawn(move || {
//!     let mut g = j.enter();
//!     g.wait_until(&cv, |q: &Vec<u32>| !q.is_empty());
//!     g.data().pop().unwrap()
//! });
//!
//! {
//!     let mut g = jobs.enter();
//!     g.data().push(42);
//!     g.notify(&nonempty);
//! }
//! assert_eq!(consumer.join().unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod button;
pub mod callbacks;
pub mod exploit;
pub mod mbqueue;
pub mod monitor;
pub mod ordered;
pub mod pipeline;
pub mod pool;
pub mod pump;
pub mod rejuvenate;
pub mod slack;
pub mod sleeper;

pub use monitor::{Condition, ConditionStats, Monitor, MonitorGuard, WaitOutcome};
