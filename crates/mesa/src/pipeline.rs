//! A multi-stage pipeline builder on real threads (§4.2) — the mirror of
//! `paradigms::pipeline` for the adoptable library.

use std::thread::JoinHandle;

use crate::pump::{spawn_pump, BoundedQueue};

/// A pipeline under construction: `In` is the source type, `T` the
/// current tail type.
pub struct PipelineBuilder<In: Send + 'static, T: Send + 'static> {
    name: String,
    stage: usize,
    capacity: usize,
    source: BoundedQueue<In>,
    tail: BoundedQueue<T>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts a pipeline whose source accepts `T`.
pub fn pipeline<T: Send + 'static>(name: &str, capacity: usize) -> PipelineBuilder<T, T> {
    let source = BoundedQueue::new(&format!("{name}.q0"), capacity);
    PipelineBuilder {
        name: name.to_string(),
        stage: 0,
        capacity,
        tail: source.clone(),
        source,
        workers: Vec::new(),
    }
}

impl<In: Send + 'static, T: Send + 'static> PipelineBuilder<In, T> {
    /// Appends a pump stage transforming `T -> U`; `None` filters.
    pub fn stage<U, F>(mut self, f: F) -> PipelineBuilder<In, U>
    where
        U: Send + 'static,
        F: FnMut(T) -> Option<U> + Send + 'static,
    {
        let stage = self.stage + 1;
        let out: BoundedQueue<U> =
            BoundedQueue::new(&format!("{}.q{stage}", self.name), self.capacity);
        let worker = spawn_pump(
            &format!("{}.stage{stage}", self.name),
            self.tail,
            out.clone(),
            f,
        );
        self.workers.push(worker);
        PipelineBuilder {
            name: self.name,
            stage,
            capacity: self.capacity,
            source: self.source,
            tail: out,
            workers: self.workers,
        }
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline<In, T> {
        Pipeline {
            source: self.source,
            sink: self.tail,
            workers: self.workers,
        }
    }
}

/// A built pipeline: feed `source`, drain `sink`; closing the source
/// propagates shutdown stage by stage; [`Pipeline::join`] reaps the
/// stage threads afterwards.
pub struct Pipeline<In: Send + 'static, Out: Send + 'static> {
    /// Feed items here.
    pub source: BoundedQueue<In>,
    /// Results appear here; `None` after the source closes and drains.
    pub sink: BoundedQueue<Out>,
    workers: Vec<JoinHandle<()>>,
}

impl<In: Send + 'static, Out: Send + 'static> Pipeline<In, Out> {
    /// Joins the stage threads (call after closing the source and
    /// draining the sink).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_stages_transform_and_filter() {
        let p = pipeline::<u32>("p", 8)
            .stage(|x| (x % 2 == 0).then_some(x))
            .stage(|x| Some(x * 10))
            .stage(|x| Some(format!("v{x}")))
            .build();
        for i in 0..10 {
            p.source.put(i);
        }
        p.source.close();
        let mut got = Vec::new();
        while let Some(s) = p.sink.take() {
            got.push(s);
        }
        assert_eq!(got, vec!["v0", "v20", "v40", "v60", "v80"]);
        p.join();
    }

    #[test]
    fn shutdown_propagates_through_empty_pipeline() {
        let p = pipeline::<u8>("empty", 2).stage(Some).build();
        p.source.close();
        assert_eq!(p.sink.take(), None);
        p.join();
    }
}
