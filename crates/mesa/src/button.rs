//! The guarded button on real threads (§4.3).
//!
//! "A guarded button must be pressed twice, in close, but not too close
//! succession. They usually look like ~Button~ on the screen. After a
//! one-shot is forked it sleeps for an arming period that must pass
//! before a second click is acceptable. ... if the timeout expires
//! without a second click, the one-shot just repaints the guarded
//! button."

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::sleeper::DelayedFork;

/// The button's visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardState {
    /// Showing the guard ("~Button~").
    Guarded,
    /// First press seen; further presses are too close and rejected.
    Arming,
    /// Armed ("Button"); a press fires.
    Armed,
}

struct Inner {
    state: GuardState,
    // Pending one-shots; kept so cancel-on-fire works and drops join.
    pending: Vec<DelayedFork>,
}

/// A guarded button driven by chained one-shots.
#[derive(Clone)]
pub struct GuardedButton {
    inner: Arc<Mutex<Inner>>,
    arm_after: Duration,
    disarm_after: Duration,
}

impl GuardedButton {
    /// Creates a button with the given arming period and armed window.
    pub fn new(arm_after: Duration, disarm_after: Duration) -> Self {
        GuardedButton {
            inner: Arc::new(Mutex::new(Inner {
                state: GuardState::Guarded,
                pending: Vec::new(),
            })),
            arm_after,
            disarm_after,
        }
    }

    /// Current state.
    pub fn state(&self) -> GuardState {
        self.inner.lock().state
    }

    /// Registers a press; returns `true` when the press fires the action
    /// (i.e. it landed in the armed window).
    pub fn press(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            GuardState::Guarded => {
                inner.state = GuardState::Arming;
                let me = self.clone();
                let disarm_after = self.disarm_after;
                let shot = DelayedFork::schedule("guard-arm", self.arm_after, move || {
                    let mut inner = me.inner.lock();
                    if inner.state == GuardState::Arming {
                        inner.state = GuardState::Armed;
                        let me2 = me.clone();
                        let disarm =
                            DelayedFork::schedule("guard-disarm", disarm_after, move || {
                                let mut inner = me2.inner.lock();
                                if inner.state == GuardState::Armed {
                                    inner.state = GuardState::Guarded; // Repaint the guard.
                                }
                            });
                        inner.pending.push(disarm);
                    }
                });
                inner.pending.push(shot);
                false
            }
            GuardState::Arming => false, // Too close: rejected.
            GuardState::Armed => {
                inner.state = GuardState::Guarded;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_on_well_spaced_double_press() {
        let b = GuardedButton::new(ms(20), ms(200));
        assert!(!b.press()); // Starts arming.
        assert_eq!(b.state(), GuardState::Arming);
        sleep(ms(60)); // Past the arming period.
        assert_eq!(b.state(), GuardState::Armed);
        assert!(b.press()); // Fires.
        assert_eq!(b.state(), GuardState::Guarded);
    }

    #[test]
    fn rejects_too_close_second_press() {
        let b = GuardedButton::new(ms(50), ms(200));
        assert!(!b.press());
        assert!(!b.press()); // Still arming: rejected.
        assert_eq!(b.state(), GuardState::Arming);
    }

    #[test]
    fn disarms_after_the_window_expires() {
        let b = GuardedButton::new(ms(10), ms(30));
        assert!(!b.press());
        sleep(ms(20));
        assert_eq!(b.state(), GuardState::Armed);
        sleep(ms(60)); // Window expires: guard repainted.
        assert_eq!(b.state(), GuardState::Guarded);
        assert!(!b.press()); // Starts a fresh cycle instead of firing.
    }
}
