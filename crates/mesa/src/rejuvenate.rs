//! Task rejuvenation on real threads (§4.5).

use std::thread;
use std::time::Duration;

/// Why a supervised service stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceEnd {
    /// The service returned normally.
    Completed,
    /// The restart budget ran out; the last panic message is kept.
    GaveUp(String),
}

/// Outcome of a supervised run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejuvenationReport {
    /// Times the service was started (including the first).
    pub starts: u32,
    /// How it ended.
    pub end: ServiceEnd,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `factory`-produced service bodies under a rejuvenating
/// supervisor: each panic forks a fresh copy (after `backoff`), up to
/// `max_restarts` restarts. Blocks until completion or giving up.
pub fn supervise<F, B>(
    name: &str,
    max_restarts: u32,
    backoff: Duration,
    factory: F,
) -> RejuvenationReport
where
    F: Fn(u32) -> B,
    B: FnOnce() + Send + 'static,
{
    let mut starts = 0;
    loop {
        let body = factory(starts);
        starts += 1;
        let handle = thread::Builder::new()
            .name(format!("{name}#{}", starts - 1))
            .spawn(body)
            .expect("spawn supervised service");
        match handle.join() {
            Ok(()) => {
                return RejuvenationReport {
                    starts,
                    end: ServiceEnd::Completed,
                }
            }
            Err(payload) => {
                let msg = panic_message(payload);
                if starts > max_restarts {
                    return RejuvenationReport {
                        starts,
                        end: ServiceEnd::GaveUp(msg),
                    };
                }
                if !backoff.is_zero() {
                    thread::sleep(backoff);
                }
            }
        }
    }
}

/// The §4.5 dispatcher shape on real threads: a long-lived loop making
/// *unforked* callbacks (short, on the critical path), protected by task
/// rejuvenation — a panicking callback kills only the current
/// incarnation and a fresh copy resumes from the next event.
///
/// `next_event` yields events (`None` ends dispatching); `dispatch` may
/// panic. Returns `(events_delivered, rejuvenations)`; the delivered
/// count is a lower bound, since a dying incarnation's tally dies with
/// it (only the poison event itself is re-counted).
pub fn rejuvenating_dispatcher<E, N, D>(
    name: &str,
    max_restarts: u32,
    next_event: N,
    dispatch: D,
) -> (u64, u32)
where
    E: Send + 'static,
    N: Fn() -> Option<E> + Send + Sync + Clone + 'static,
    D: Fn(E) + Send + Sync + Clone + 'static,
{
    let mut restarts = 0;
    let mut total: u64 = 0;
    loop {
        let ne = next_event.clone();
        let dp = dispatch.clone();
        let handle = thread::Builder::new()
            .name(format!("{name}#{restarts}"))
            .spawn(move || {
                let mut n: u64 = 0;
                while let Some(ev) = ne() {
                    dp(ev); // Unforked callback: fast but vulnerable.
                    n += 1;
                }
                n
            })
            .expect("spawn dispatcher");
        match handle.join() {
            Ok(n) => return (total + n, restarts),
            Err(_) => {
                restarts += 1;
                total += 1; // The poison event was consumed.
                if restarts > max_restarts {
                    return (total, restarts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn completes_without_restart() {
        let r = supervise("ok", 3, Duration::ZERO, |_| || ());
        assert_eq!(r.starts, 1);
        assert_eq!(r.end, ServiceEnd::Completed);
    }

    #[test]
    fn rejuvenates_until_success() {
        let attempts = Arc::new(AtomicU32::new(0));
        let r = supervise("flaky", 5, Duration::from_millis(1), |_| {
            let attempts = Arc::clone(&attempts);
            move || {
                if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("flaky failure");
                }
            }
        });
        assert_eq!(r.starts, 3);
        assert_eq!(r.end, ServiceEnd::Completed);
    }

    #[test]
    fn dispatcher_survives_poison_events() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let delivered = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let d = Arc::clone(&delivered);
        let (n, restarts) = rejuvenating_dispatcher(
            "dispatcher",
            3,
            move || {
                let i = c.fetch_add(1, Ordering::Relaxed);
                (i < 20).then_some(i)
            },
            move |ev: u32| {
                if ev == 7 {
                    panic!("client callback error");
                }
                d.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(restarts, 1);
        assert!(n >= 13, "n = {n}");
        assert_eq!(delivered.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn gives_up_with_last_message() {
        let r = supervise("doomed", 2, Duration::ZERO, |attempt| {
            move || panic!("broken #{attempt}")
        });
        assert_eq!(r.starts, 3);
        assert_eq!(r.end, ServiceEnd::GaveUp("broken #2".to_string()));
    }
}
