//! The `MBQueue` serializer on real threads (§4.6).
//!
//! "MBQueue creates a queue as a serialization context and a thread to
//! process it. Mouse clicks and key strokes cause procedures to be
//! enqueued for the context: the thread then calls the procedures in the
//! order received." The worker is protected by task rejuvenation: a
//! panicking action kills only itself, and the context keeps processing
//! (the §4.5 input-dispatcher lesson).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Action = Box<dyn FnOnce() + Send + 'static>;

struct MbShared {
    processed: AtomicU64,
    panicked: AtomicU64,
}

/// A serialization context: enqueue closures from any thread; one worker
/// runs them in arrival order.
pub struct MbQueue {
    tx: Option<Sender<Action>>,
    worker: Option<JoinHandle<()>>,
    shared: Arc<MbShared>,
}

impl MbQueue {
    /// Creates the context and its processing thread.
    pub fn new(name: &str) -> Self {
        let (tx, rx) = unbounded::<Action>();
        let shared = Arc::new(MbShared {
            processed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let sh = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                while let Ok(action) = rx.recv() {
                    if catch_unwind(AssertUnwindSafe(action)).is_err() {
                        sh.panicked.fetch_add(1, Ordering::Relaxed);
                    }
                    sh.processed.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn MBQueue worker");
        MbQueue {
            tx: Some(tx),
            worker: Some(worker),
            shared,
        }
    }

    /// Enqueues an action; it runs after everything enqueued before it.
    pub fn enqueue<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.tx
            .as_ref()
            .expect("queue alive")
            .send(Box::new(f))
            .expect("worker alive");
    }

    /// Actions processed so far.
    pub fn processed(&self) -> u64 {
        self.shared.processed.load(Ordering::Relaxed)
    }

    /// Actions that panicked (and were absorbed).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Drains the queue and joins the worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for MbQueue {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::thread;

    #[test]
    fn preserves_order_from_one_source() {
        let mb = MbQueue::new("mb");
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = Arc::clone(&log);
            mb.enqueue(move || log.lock().push(i));
        }
        mb.shutdown();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn serializes_concurrent_sources() {
        let mb = Arc::new(MbQueue::new("mb"));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for src in 0..4u32 {
            let mb = Arc::clone(&mb);
            let log = Arc::clone(&log);
            handles.push(thread::spawn(move || {
                for i in 0..25u32 {
                    let log = Arc::clone(&log);
                    mb.enqueue(move || log.lock().push((src, i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(mb).ok().expect("sole owner").shutdown();
        let log = log.lock();
        assert_eq!(log.len(), 100);
        // Per-source order preserved.
        for src in 0..4u32 {
            let seq: Vec<u32> = log
                .iter()
                .filter(|(s, _)| *s == src)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(seq, (0..25).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panicking_action_absorbed() {
        let mb = MbQueue::new("mb");
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        mb.enqueue(move || l.lock().push(1));
        mb.enqueue(|| panic!("poison action"));
        let l = Arc::clone(&log);
        mb.enqueue(move || l.lock().push(2));
        mb.shutdown();
        assert_eq!(*log.lock(), vec![1, 2]);
    }
}
