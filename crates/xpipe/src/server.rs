//! The simulated X server and its paint-request vocabulary.
//!
//! The paper's X server is an external Unix process with high
//! per-transaction costs — the reason batching pays (§5.2). Here it is a
//! thread consuming batches from a queue, charging a fixed per-batch
//! cost plus a per-request cost, and recording when each screen region
//! was last painted (for user-visible latency measurements).

use pcr::{micros, millis, Monitor, Priority, SimDuration, SimTime, ThreadCtx};

use paradigms::pump::BoundedQueue;

/// One paint request: which region, which content version, and when the
/// imaging thread produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaintReq {
    /// Screen region.
    pub region: u32,
    /// Content version (later replaces earlier).
    pub version: u32,
    /// When the request was produced.
    pub produced_at: SimTime,
}

/// Statistics the server accumulates.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Batches received.
    pub batches: u64,
    /// Individual requests painted.
    pub requests: u64,
    /// Sum of produce-to-paint latency (µs) across requests.
    pub total_latency_us: u64,
    /// Worst produce-to-paint latency seen (µs).
    pub max_latency_us: u64,
}

impl ServerStats {
    /// Mean produce-to-paint latency.
    pub fn mean_latency(&self) -> SimDuration {
        SimDuration::from_micros(
            self.total_latency_us
                .checked_div(self.requests)
                .unwrap_or(0),
        )
    }

    /// Worst produce-to-paint latency.
    pub fn max_latency(&self) -> SimDuration {
        SimDuration::from_micros(self.max_latency_us)
    }
}

/// A running simulated X server.
pub struct XServer {
    stats: Monitor<ServerStats>,
}

/// Cost model: the per-batch overhead dominates small batches, which is
/// what makes merging worthwhile.
#[derive(Clone, Copy, Debug)]
pub struct ServerCosts {
    /// Charged once per batch (connection + round-trip overhead).
    pub per_batch: SimDuration,
    /// Charged per request in a batch.
    pub per_request: SimDuration,
}

impl Default for ServerCosts {
    fn default() -> Self {
        ServerCosts {
            per_batch: millis(2),
            per_request: micros(150),
        }
    }
}

impl ServerCosts {
    /// Total cost of writing one batch of `n` requests.
    pub fn batch_cost(&self, n: usize) -> SimDuration {
        self.per_batch + self.per_request * n as u64
    }

    /// The cost model of the serve world's persistent batched X
    /// connection: far cheaper than the default interactive pipeline
    /// (no per-batch connection setup), which is what makes a
    /// million-session open-loop world feasible at all.
    pub fn serve_connection() -> Self {
        ServerCosts {
            per_batch: micros(600),
            per_request: micros(60),
        }
    }
}

impl XServer {
    /// Spawns the server thread consuming `batches`.
    pub fn spawn(
        ctx: &ThreadCtx,
        priority: Priority,
        costs: ServerCosts,
        batches: BoundedQueue<Vec<PaintReq>>,
    ) -> XServer {
        let stats = ctx.new_monitor("xserver.stats", ServerStats::default());
        let st = stats.clone();
        let _ = ctx
            .fork_detached_prio("XServer", priority, move |ctx| {
                while let Some(batch) = batches.take(ctx) {
                    ctx.work(costs.batch_cost(batch.len()));
                    let now = ctx.now();
                    let mut g = ctx.enter(&st);
                    g.with_mut(|s| {
                        s.batches += 1;
                        for r in &batch {
                            s.requests += 1;
                            let lat = now.saturating_since(r.produced_at).as_micros();
                            s.total_latency_us += lat;
                            s.max_latency_us = s.max_latency_us.max(lat);
                        }
                    });
                }
            })
            .expect("fork X server");
        XServer { stats }
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self, ctx: &ThreadCtx) -> ServerStats {
        let g = ctx.enter(&self.stats);
        g.with(|s| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{secs, RunLimit, Sim, SimConfig};

    #[test]
    fn server_charges_batch_and_request_costs() {
        let mut sim = Sim::new(SimConfig::default());
        let q: BoundedQueue<Vec<PaintReq>> = BoundedQueue::new_in_sim(&mut sim, "b", 8, None);
        let q2 = q.clone();
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let server = XServer::spawn(ctx, Priority::of(4), ServerCosts::default(), q2);
            let t0 = ctx.now();
            for i in 0..3 {
                q.put(
                    ctx,
                    vec![PaintReq {
                        region: i,
                        version: 1,
                        produced_at: t0,
                    }],
                );
            }
            q.close(ctx);
            ctx.sleep_precise(millis(100));
            server.stats(ctx)
        });
        sim.run(RunLimit::For(secs(2)));
        let stats = h.into_result().unwrap().unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.requests, 3);
        // Each single-request batch costs ~2.15ms; the LAST one finishes
        // ~6.5ms after production.
        assert!(stats.max_latency() >= millis(6));
        assert!(stats.mean_latency() >= millis(2));
    }
}
