//! The §5.2 slack-process experiment and the §6.3 quantum sweep.
//!
//! An imaging thread produces paint requests; a high-priority buffer
//! thread (the slack process) merges overlapping requests and sends
//! batches to the X server, which has high per-batch costs. The §5.2
//! story: with a plain YIELD the scheduler hands the processor straight
//! back to the high-priority buffer, no merging happens, and the X
//! server does far more work; `YieldButNotToMe` fixes it (the paper
//! reports ~3× better perceived performance). §6.3 adds the twist that
//! the 50 ms quantum is what actually clocks the batching: at 1 s the
//! screen goes bursty, at 1 ms the merging collapses, and a
//! timeout-based buffer works only when the timer granularity (coupled
//! to the quantum) is small.

use pcr::{micros, millis, Priority, RunLimit, Sim, SimConfig, SimDuration};

use crate::server::{PaintReq, ServerCosts, XServer};
use paradigms::pump::BoundedQueue;
use paradigms::slack::{spawn_slack, SlackPolicy};

/// Merges paint requests per region, keeping the latest content but the
/// *earliest* production time, so the measured latency is the region's
/// staleness — how long the user waited to see anything after the region
/// first became dirty. This is what makes a 1-second quantum's painting
/// "very bursty" in the measurements.
fn merge_paint(batch: &mut Vec<PaintReq>, item: PaintReq) -> bool {
    if let Some(slot) = batch.iter_mut().find(|b| b.region == item.region) {
        slot.version = item.version;
        slot.produced_at = slot.produced_at.min(item.produced_at);
        true
    } else {
        batch.push(item);
        false
    }
}

/// Configuration of one slack-pipeline run.
#[derive(Clone, Copy, Debug)]
pub struct SlackConfig {
    /// The buffer thread's processor-ceding policy.
    pub policy: SlackPolicy,
    /// Scheduler quantum (timer granularity follows it, as in PCR,
    /// unless decoupled below).
    pub quantum: SimDuration,
    /// Decouple the timer granularity from the quantum (the ablation the
    /// paper implies in §6.3: it is the *granularity* that limits the
    /// timeout-based buffer, and PCR just happened to tie the two).
    pub granularity: Option<SimDuration>,
    /// Paint requests the imaging thread produces.
    pub requests: u32,
    /// Distinct screen regions (merge targets).
    pub regions: u32,
    /// Imaging cost per request.
    pub produce_cost: SimDuration,
}

impl Default for SlackConfig {
    fn default() -> Self {
        SlackConfig {
            policy: SlackPolicy::YieldButNotToMe,
            quantum: millis(50),
            granularity: None,
            requests: 1500,
            regions: 20,
            produce_cost: micros(300),
        }
    }
}

/// What one run measured.
#[derive(Clone, Copy, Debug)]
pub struct SlackOutcome {
    /// The policy that ran.
    pub policy: SlackPolicy,
    /// The quantum it ran under.
    pub quantum: SimDuration,
    /// Requests produced (== config.requests when drained).
    pub produced: u64,
    /// Batches the X server received.
    pub server_batches: u64,
    /// Requests the X server painted (after merging).
    pub server_requests: u64,
    /// Mean requests merged per batch (items in / batches out).
    pub merge_ratio: f64,
    /// Thread switches during the run.
    pub switches: u64,
    /// Virtual time from first production to last paint — the
    /// user-visible completion time.
    pub completion: SimDuration,
    /// Mean produce-to-paint latency.
    pub mean_latency: SimDuration,
    /// Worst produce-to-paint latency (burstiness: ~1 s at a 1 s
    /// quantum).
    pub max_latency: SimDuration,
}

/// Runs the §5.2 pipeline under the given configuration.
pub fn run_slack(cfg: SlackConfig) -> SlackOutcome {
    let mut sim_cfg = SimConfig::default().with_quantum(cfg.quantum).with_seed(42);
    if let Some(g) = cfg.granularity {
        sim_cfg = sim_cfg.with_timer_granularity(g);
    }
    let mut sim = Sim::new(sim_cfg);
    let paint_q: BoundedQueue<PaintReq> = BoundedQueue::new_in_sim(&mut sim, "paint", 4096, None);
    let batch_q: BoundedQueue<Vec<PaintReq>> =
        BoundedQueue::new_in_sim(&mut sim, "batch", 256, None);

    // Imaging thread: low priority (§5.2: "the buffer thread is a higher
    // priority thread than the image threads that feed it").
    let pq = paint_q.clone();
    let (n, regions, cost) = (cfg.requests, cfg.regions, cfg.produce_cost);
    let _ = sim.fork_root("imaging", Priority::of(3), move |ctx| {
        for i in 0..n {
            ctx.work(cost);
            pq.put(
                ctx,
                PaintReq {
                    region: i % regions,
                    version: i,
                    produced_at: ctx.now(),
                },
            );
        }
        pq.close(ctx);
    });

    // Driver: spawns the buffer (slack, priority 6) and the server, then
    // waits for everything to drain.
    let policy = cfg.policy;
    let bq = batch_q.clone();
    let h = sim.fork_root("driver", Priority::of(7), move |ctx| {
        let server = XServer::spawn(
            ctx,
            Priority::of(5),
            ServerCosts::default(),
            batch_q.clone(),
        );
        let out_q = batch_q.clone();
        let slack = spawn_slack(
            ctx,
            "buffer",
            Priority::of(6),
            paint_q,
            policy,
            micros(200),
            merge_paint,
            move |ctx, batch| {
                if !batch.is_empty() {
                    out_q.put(ctx, batch);
                }
            },
        );
        slack.wait_done(ctx);
        bq.close(ctx);
        // Let the server drain: every batch the slack process emitted
        // must have been painted.
        let emitted = slack.stats(ctx).batches_out;
        while server.stats(ctx).batches < emitted {
            ctx.sleep_precise(millis(5));
        }
        let stats = server.stats(ctx);
        let slack_stats = slack.stats(ctx);
        (stats, slack_stats, ctx.now())
    });
    let report = sim.run(RunLimit::For(pcr::secs(120)));
    assert!(!report.deadlocked(), "slack pipeline deadlocked");
    let (server_stats, slack_stats, done_at) = h
        .into_result()
        .expect("driver finished")
        .expect("driver ok");
    SlackOutcome {
        policy: cfg.policy,
        quantum: cfg.quantum,
        produced: slack_stats.items_in,
        server_batches: server_stats.batches,
        server_requests: server_stats.requests,
        merge_ratio: slack_stats.merge_ratio(),
        switches: sim.stats().switches,
        completion: done_at.saturating_since(pcr::SimTime::ZERO),
        mean_latency: server_stats.mean_latency(),
        max_latency: server_stats.max_latency(),
    }
}

/// The §5.2 comparison: plain YIELD vs `YieldButNotToMe` at the standard
/// 50 ms quantum.
pub fn yield_comparison() -> (SlackOutcome, SlackOutcome) {
    let base = SlackConfig::default();
    let plain = run_slack(SlackConfig {
        policy: SlackPolicy::PlainYield,
        ..base
    });
    let fixed = run_slack(SlackConfig {
        policy: SlackPolicy::YieldButNotToMe,
        ..base
    });
    (plain, fixed)
}

/// Ablation: keep the 50 ms quantum but decouple the timer granularity.
/// The timeout-based buffer's latency tracks the *granularity*, showing
/// that §6.3's "20 ms quantum would work fine" is really about the tick
/// PCR tied to it.
pub fn granularity_ablation() -> Vec<(SimDuration, SlackOutcome)> {
    [millis(50), millis(10), millis(5)]
        .into_iter()
        .map(|g| {
            let out = run_slack(SlackConfig {
                policy: SlackPolicy::SleepTimeout(millis(5)),
                quantum: millis(50),
                granularity: Some(g),
                ..SlackConfig::default()
            });
            (g, out)
        })
        .collect()
}

/// The §6.3 quantum sweep: the same pipeline at 1 ms, 20 ms, 50 ms and
/// 1 s quanta, for both `YieldButNotToMe` and a timeout-based buffer.
pub fn quantum_sweep() -> Vec<SlackOutcome> {
    let mut out = Vec::new();
    for quantum in [millis(1), millis(20), millis(50), millis(1000)] {
        for policy in [
            SlackPolicy::YieldButNotToMe,
            SlackPolicy::SleepTimeout(millis(5)),
        ] {
            out.push(run_slack(SlackConfig {
                policy,
                quantum,
                ..SlackConfig::default()
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_but_not_to_me_beats_plain_yield_by_3x() {
        let (plain, fixed) = yield_comparison();
        assert_eq!(plain.produced, fixed.produced);
        // The fix merges far better...
        assert!(
            fixed.merge_ratio >= 3.0 * plain.merge_ratio.max(1.0),
            "merge ratios: plain {} fixed {}",
            plain.merge_ratio,
            fixed.merge_ratio
        );
        // ...sends far fewer batches to the server...
        assert!(
            fixed.server_batches * 3 <= plain.server_batches,
            "batches: plain {} fixed {}",
            plain.server_batches,
            fixed.server_batches
        );
        // ...switches threads less...
        assert!(
            fixed.switches < plain.switches,
            "switches: plain {} fixed {}",
            plain.switches,
            fixed.switches
        );
        // ...and completes the whole paint job ~3x sooner (the paper's
        // "three-fold performance improvement").
        assert!(
            fixed.completion.as_micros() * 2 <= plain.completion.as_micros(),
            "completion: plain {} fixed {}",
            plain.completion,
            fixed.completion
        );
    }

    #[test]
    fn one_second_quantum_is_bursty() {
        let slow = run_slack(SlackConfig {
            quantum: millis(1000),
            ..SlackConfig::default()
        });
        // "X events would be buffered for one second before being sent
        // and the user would observe very bursty screen painting."
        let normal = run_slack(SlackConfig::default());
        assert!(
            slow.max_latency >= millis(300),
            "max staleness {} not bursty",
            slow.max_latency
        );
        assert!(
            slow.max_latency.as_micros() >= 5 * normal.max_latency.as_micros(),
            "staleness: 1s quantum {} vs 50ms {}",
            slow.max_latency,
            normal.max_latency
        );
    }

    #[test]
    fn one_millisecond_quantum_defeats_merging() {
        let tiny = run_slack(SlackConfig {
            quantum: millis(1),
            ..SlackConfig::default()
        });
        let normal = run_slack(SlackConfig::default());
        // "If the quantum were 1 millisecond ... we would be back to the
        // start of our problems again."
        assert!(
            tiny.merge_ratio * 2.0 <= normal.merge_ratio,
            "merge: 1ms {} vs 50ms {}",
            tiny.merge_ratio,
            normal.merge_ratio
        );
    }

    #[test]
    fn decoupled_granularity_frees_the_timeout_buffer() {
        // Same 50ms quantum; shrinking only the timer granularity makes
        // the timeout-based buffer snappy — the knob §6.3 is really about.
        let abl = granularity_ablation();
        let at = |g: SimDuration| {
            abl.iter()
                .find(|(gg, _)| *gg == g)
                .map(|(_, o)| o.mean_latency)
                .unwrap()
        };
        assert!(
            at(millis(5)) < at(millis(50)),
            "5ms tick {} should beat 50ms tick {}",
            at(millis(5)),
            at(millis(50))
        );
        assert!(at(millis(10)) <= at(millis(50)));
    }

    #[test]
    fn timeout_buffer_works_at_20ms_quantum() {
        // "If the scheduler quantum were 20 milliseconds, using a timeout
        // instead of a yield in the buffer thread would work fine."
        let at50 = run_slack(SlackConfig {
            policy: SlackPolicy::SleepTimeout(millis(5)),
            quantum: millis(50),
            ..SlackConfig::default()
        });
        let at20 = run_slack(SlackConfig {
            policy: SlackPolicy::SleepTimeout(millis(5)),
            quantum: millis(20),
            ..SlackConfig::default()
        });
        // Finer granularity: snappier painting with merging intact.
        assert!(
            at20.mean_latency < at50.mean_latency,
            "latency: 20ms {} vs 50ms {}",
            at20.mean_latency,
            at50.mean_latency
        );
        assert!(at20.merge_ratio >= 2.0, "20ms merge {}", at20.merge_ratio);
    }
}
