//! Stable priority inversion and its workarounds (§6.2).
//!
//! Two experiments:
//!
//! 1. **Monitor inversion + SystemDaemon.** A high-priority thread waits
//!    on a monitor held by a low-priority thread that a middle-priority
//!    CPU hog never lets run — Birrell's stable inversion, which the
//!    paper says was "not hypothetical". PCR's fix is the SystemDaemon:
//!    a high-priority sleeper that donates random slices so every ready
//!    thread makes progress.
//!
//! 2. **Metalock donation ablation.** For the short per-monitor metalock
//!    PCR *does* donate cycles from the blocked thread to the holder; we
//!    magnify the metalock window, preempt a low-priority thread inside
//!    it, and measure how long a high-priority thread stalls behind it
//!    with donation on vs off.

use pcr::{
    micros, millis, secs, JoinHandle, Priority, RunLimit, Sim, SimConfig, SimDuration,
    SystemDaemonConfig,
};

/// Result of one inversion scenario.
#[derive(Clone, Copy, Debug)]
pub struct InversionOutcome {
    /// Time the high-priority thread needed to acquire the monitor, or
    /// `None` if it was still stalled when the run was cut off.
    pub acquire_latency: Option<SimDuration>,
    /// SystemDaemon donations performed.
    pub donations: u64,
    /// Metalock stalls observed.
    pub metalock_stalls: u64,
}

/// Builds scenario 1's world — the classic stable monitor inversion —
/// without running it, so callers (the benchmarks here, the resilience
/// supervisor's recovery tests) can drive it themselves. Returns the
/// simulation plus the high-priority claimant's handle; the claimant
/// returns its acquire latency.
pub fn build_monitor_world(daemon: bool) -> (Sim, JoinHandle<SimDuration>) {
    let cfg = if daemon {
        SimConfig::default().with_system_daemon(SystemDaemonConfig {
            period: millis(100),
            slice: millis(5),
        })
    } else {
        SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    let resource = sim.monitor("resource", 0u32);
    // Low-priority holder: needs 30ms of CPU inside the monitor.
    let r1 = resource.clone();
    let _ = sim.fork_root("low-holder", Priority::of(2), move |ctx| {
        let mut g = ctx.enter(&r1);
        ctx.work(millis(30));
        g.with_mut(|v| *v += 1);
    });
    // Middle-priority hog: wakes once the holder is inside the monitor
    // and never blocks again.
    let _ = sim.fork_root("middle-hog", Priority::of(4), move |ctx| {
        ctx.sleep_precise(micros(200));
        loop {
            ctx.work(millis(50));
        }
    });
    // High-priority claimant: arrives after the holder has the monitor.
    let r2 = resource;
    let h = sim.fork_root("high-claimant", Priority::of(6), move |ctx| {
        ctx.sleep_precise(millis(1));
        let t0 = ctx.now();
        let mut g = ctx.enter(&r2);
        g.with_mut(|v| *v += 1);
        ctx.now().since(t0)
    });
    (sim, h)
}

/// Scenario 1: classic stable inversion, with or without the
/// SystemDaemon. Returns how long the high-priority thread waited for a
/// monitor held by a starving low-priority thread.
pub fn monitor_inversion(daemon: bool) -> InversionOutcome {
    let (mut sim, h) = build_monitor_world(daemon);
    let _ = sim.run(RunLimit::For(secs(20)));
    let stats = sim.stats().clone();
    InversionOutcome {
        acquire_latency: h.into_result().map(|r| r.expect("claimant ok")),
        donations: stats.daemon_donations,
        metalock_stalls: stats.metalock_stalls,
    }
}

/// Builds scenario 2's world — the magnified-metalock inversion —
/// without running it. Returns the simulation plus the high-priority
/// claimant's handle. With `donation` and `daemon` both off, the world
/// wedges stably: the claimant stalls behind a preempted low-priority
/// metalock holder that a middle-priority hog never lets run — the
/// exact shape the wait-for graph's inversion detector looks for.
pub fn build_metalock_world(donation: bool, daemon: bool) -> (Sim, JoinHandle<SimDuration>) {
    let mut cfg = SimConfig::default()
        .with_metalock_cost(micros(500))
        .with_metalock_donation(donation);
    if daemon {
        cfg = cfg.with_system_daemon(SystemDaemonConfig {
            period: millis(100),
            slice: millis(5),
        });
    }
    let mut sim = Sim::new(cfg);
    let resource = sim.monitor("resource", 0u32);

    // Owner: takes the monitor at t=0 and holds it briefly (sleeping),
    // so the low thread's enter is contended and walks the metalock
    // path; the owner is gone long before anyone else needs the mutex.
    let r_owner = resource.clone();
    let _ = sim.fork_root("owner", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&r_owner);
        ctx.sleep_precise(micros(150)); // threadlint: allow(blocking-call-in-monitor)
        g.with_mut(|v| *v += 1);
    });

    // Low thread: contends while the owner holds; its 500µs metalock
    // window starts right away.
    let r_low = resource.clone();
    let _ = sim.fork_root("low-enterer", Priority::of(2), move |ctx| {
        let mut g = ctx.enter(&r_low);
        g.with_mut(|v| *v += 1);
    });

    // Interrupt: preempts the low thread in the middle of its window.
    let _ = sim.fork_root("interrupt", Priority::of(7), move |ctx| {
        ctx.sleep_precise(micros(300));
        ctx.work(micros(100));
    });

    // Hog: wakes just after the interrupt and keeps the low thread from
    // ever finishing the window on its own.
    let _ = sim.fork_root("middle-hog", Priority::of(4), move |ctx| {
        ctx.sleep_precise(micros(400));
        loop {
            ctx.work(millis(50));
        }
    });

    // High thread: needs the same monitor shortly after. The mutex is
    // free by now; only the stuck metalock (and then the stuck
    // low-priority owner-to-be) stands in its way.
    let r_high = resource;
    let h = sim.fork_root("high-claimant", Priority::of(6), move |ctx| {
        ctx.sleep_precise(millis(1));
        let t0 = ctx.now();
        let mut g = ctx.enter(&r_high);
        g.with_mut(|v| *v += 1);
        ctx.now().since(t0)
    });
    (sim, h)
}

/// Scenario 2: metalock inversion. The metalock window is magnified to
/// 500 µs so a precisely-timed interrupt can preempt a low-priority
/// thread inside it while a middle-priority hog keeps it off the CPU; a
/// high-priority thread then needs the same monitor.
///
/// PCR donated cycles *only* for the metalock ("It is not done for
/// monitors themselves, where we don't know how to implement it
/// efficiently"), so with donation the high thread clears the metalock
/// instantly but can still be stably inverted on the mutex itself —
/// only the SystemDaemon resolves that.
pub fn metalock_inversion(donation: bool, daemon: bool) -> InversionOutcome {
    let (mut sim, h) = build_metalock_world(donation, daemon);
    let _ = sim.run(RunLimit::For(secs(20)));
    let stats = sim.stats().clone();
    InversionOutcome {
        acquire_latency: h.into_result().map(|r| r.expect("claimant ok")),
        donations: stats.daemon_donations,
        metalock_stalls: stats.metalock_stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_is_stable_without_the_daemon() {
        let out = monitor_inversion(false);
        // The high thread never gets the monitor inside 20 virtual
        // seconds: the hog starves the holder forever.
        assert!(
            out.acquire_latency.is_none(),
            "latency {:?} — inversion should be stable",
            out.acquire_latency
        );
        assert_eq!(out.donations, 0);
    }

    #[test]
    fn system_daemon_bounds_the_inversion() {
        let out = monitor_inversion(true);
        let lat = out.acquire_latency.expect("daemon must rescue the holder");
        // 30ms of holder CPU delivered in 5ms donations every ~100ms:
        // bounded at roughly a second.
        assert!(lat < secs(6), "latency {lat} too long despite the daemon");
        assert!(out.donations > 0);
    }

    #[test]
    fn metalock_stalls_only_without_donation() {
        let with = metalock_inversion(true, false);
        let without = metalock_inversion(false, false);
        assert_eq!(with.metalock_stalls, 0, "donation must clear the window");
        assert!(without.metalock_stalls >= 1, "no stall recorded");
    }

    #[test]
    fn even_donation_cannot_fix_mutex_inversion_without_daemon() {
        // PCR's donation covers the metalock only; the low thread, once
        // granted the mutex, still starves behind the hog — exactly why
        // the paper calls priorities "problematic in general".
        let out = metalock_inversion(true, false);
        assert!(
            out.acquire_latency.is_none(),
            "latency {:?} — mutex inversion should persist",
            out.acquire_latency
        );
    }

    #[test]
    fn detector_fires_on_the_metalock_scenario_without_donation() {
        // Satellite: the wait-for graph's inversion detector must spot
        // the §6.2 shape this module constructs — the high-priority
        // claimant stuck behind the preempted low-priority holder —
        // when donation is off and no daemon rescues anyone.
        let (mut sim, _h) = build_metalock_world(false, false);
        let _ = sim.run(RunLimit::For(secs(3)));
        let graph = sim.wait_for_graph();
        let invs = graph.inversions(millis(500));
        assert!(
            !invs.is_empty(),
            "no inversion detected; graph:\n{}",
            graph.render()
        );
        let inv = invs
            .iter()
            .find(|i| i.victim_name == "high-claimant")
            .unwrap_or_else(|| panic!("claimant not the victim: {invs:?}"));
        assert_eq!(inv.holder_name, "low-enterer");
        assert!(inv.victim_priority > inv.holder_priority);
        assert!(!inv.holder_stalled, "holder is preempted, not stalled");
    }

    #[test]
    fn detector_fires_on_the_monitor_scenario_too() {
        let (mut sim, _h) = build_monitor_world(false);
        let _ = sim.run(RunLimit::For(secs(3)));
        let invs = sim.wait_for_graph().inversions(millis(500));
        assert!(
            invs.iter()
                .any(|i| i.victim_name == "high-claimant" && i.holder_name == "low-holder"),
            "expected the monitor inversion: {invs:?}"
        );
    }

    #[test]
    fn runtime_remedies_resolve_the_metalock_inversion_without_restart() {
        // The §6.2 remedies applied from outside, as the supervisor
        // will: enabling donation clears the stuck metalock; if the
        // (now low-priority) owner-to-be is still starved on the mutex,
        // a priority boost finishes the job. No restart involved.
        let (mut sim, h) = build_metalock_world(false, false);
        let _ = sim.run(RunLimit::For(secs(2)));
        let invs = sim.wait_for_graph().inversions(millis(500));
        assert!(!invs.is_empty(), "world must wedge first");
        let cleared = sim.set_metalock_donation(true);
        assert!(cleared >= 1, "donation must clear the stuck metalock");
        // Let the world settle; the claimant may now be inverted on the
        // mutex itself behind the still-starved low-enterer.
        let _ = sim.run(RunLimit::For(secs(2)));
        for inv in sim.wait_for_graph().inversions(millis(500)) {
            assert!(sim.set_thread_priority(inv.holder, inv.victim_priority));
        }
        let _ = sim.run(RunLimit::For(secs(2)));
        let latency = h
            .into_result()
            .expect("claimant must have finished")
            .expect("claimant ok");
        assert!(latency < secs(5), "acquire latency {latency}");
        assert!(
            sim.wait_for_graph().wedged(millis(500)).is_empty(),
            "no wedge may remain after the remedies"
        );
    }

    #[test]
    fn daemon_rescues_both_metalock_variants() {
        let with = metalock_inversion(true, true);
        let without = metalock_inversion(false, true);
        let lat_with = with.acquire_latency.expect("rescued");
        let lat_without = without.acquire_latency.expect("rescued");
        assert!(lat_with < secs(3), "with-donation latency {lat_with}");
        assert!(
            lat_without < secs(5),
            "without-donation latency {lat_without}"
        );
        // Without donation the daemon must rescue the low thread twice
        // (metalock window, then its monitor tenure): never faster.
        assert!(
            lat_without >= lat_with,
            "expected without ({lat_without}) >= with ({lat_with})"
        );
        assert!(without.metalock_stalls >= 1);
    }
}
