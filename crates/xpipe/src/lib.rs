//! # xpipe — the X-server pipeline case studies
//!
//! The engineering lessons of the paper's §5 and §6, as runnable
//! experiments on the [`pcr`] simulator:
//!
//! * [`slackbench`] — §5.2's slack-process buffer thread: plain YIELD vs
//!   `YieldButNotToMe` (the ~3× perceived-performance fix), and §6.3's
//!   quantum sweep showing the 50 ms timeslice is what actually clocks
//!   the batching;
//! * [`spurious`] — §6.1's spurious lock conflicts and the
//!   deferred-reschedule NOTIFY fix;
//! * [`inversion`] — §6.2's stable priority inversion, the SystemDaemon
//!   workaround, and the metalock cycle-donation ablation;
//! * [`xlib`] — §5.6's threaded-Xlib vs X1 connection management
//!   (excessive flushes and the held-mutex inversion window vs a
//!   dedicated reading thread);
//! * [`server`] — the simulated X server with per-batch costs that make
//!   batching economics real;
//! * [`exploiters`] — §4.7's concurrency exploiters measured on the
//!   multiprocessor scheduler ([`pcr::MpSim`]): speedup curves with and
//!   without a serializing shared monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exploiters;
pub mod inversion;
pub mod server;
pub mod slackbench;
pub mod spurious;
pub mod xlib;
