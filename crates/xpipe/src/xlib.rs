//! Threaded Xlib vs. X1 (§5.6): managing the I/O connection to the X
//! server from a multi-threaded client.
//!
//! The **modified Xlib** let any client thread read from the connection
//! while holding the library's monitor. Two problems followed: a
//! priority inversion window while the reading thread held the mutex
//! across the (short-timeout) read, and — because "the X specification
//! requires that the output queue be flushed whenever a read is done" —
//! the repeated short-timeout reads caused "an excessive number of
//! output flushes, defeating the throughput gains of batching requests".
//!
//! **X1** introduced a serializer thread that owns the connection: it
//! blocks indefinitely reading and dispatches events; client timeouts
//! become ordinary CV timeouts, the inversion window shrinks to the
//! queue operations, and output flushing is decoupled (explicit flushes
//! plus a periodic maintenance flush).
//!
//! Model: the `socket` monitor holds arriving server events; the `lib`
//! monitor holds the client library's state (output queue, counters).
//! The Xlib reader enters `lib`, then waits on the socket's CV — which
//! releases only the socket monitor, so `lib` stays held across the
//! read, exactly the original's inversion window.

use std::collections::VecDeque;

use pcr::{micros, millis, secs, Priority, RunLimit, Sim, SimConfig, SimDuration};

/// Measurements from one connection-management model.
#[derive(Clone, Copy, Debug)]
pub struct XlibOutcome {
    /// Server events delivered to the client.
    pub events_delivered: u64,
    /// Output-queue flushes performed.
    pub flushes: u64,
    /// Flushes per event delivered (the §5.6 throughput-loss metric).
    pub flushes_per_event: f64,
    /// Total virtual time the library mutex was held by a thread that
    /// was waiting for input — the priority-inversion window.
    pub inversion_window: SimDuration,
    /// Mean time a high-priority client needed to enter the library.
    pub highprio_entry_latency: SimDuration,
}

const EVENTS: u32 = 100;
const EVENT_GAP: SimDuration = millis(40);
const READ_TIMEOUT: SimDuration = millis(50);

#[derive(Default)]
struct Socket {
    incoming: VecDeque<u32>,
    done: bool,
}

#[derive(Default)]
struct LibState {
    pending_output: u32,
    flushes: u64,
    delivered: u64,
    inversion_us: u64,
}

struct World {
    sim: Sim,
    socket: pcr::Monitor<Socket>,
    arrived: pcr::Condition,
    lib: pcr::Monitor<LibState>,
}

fn build(blocking_read: bool) -> World {
    let mut sim = Sim::new(SimConfig::default().with_seed(7));
    let socket = sim.monitor("socket", Socket::default());
    let timeout = if blocking_read {
        None
    } else {
        Some(READ_TIMEOUT)
    };
    let arrived = sim.condition(&socket, "event-arrived", timeout);
    let lib = sim.monitor("xlib", LibState::default());
    // The server-side event source.
    let (s1, a1) = (socket.clone(), arrived.clone());
    let _ = sim.fork_root("server-events", Priority::of(7), move |ctx| {
        for i in 0..EVENTS {
            ctx.sleep_precise(EVENT_GAP);
            let mut g = ctx.enter(&s1);
            g.with_mut(|s| s.incoming.push_back(i));
            g.notify(&a1);
        }
        let mut g = ctx.enter(&s1);
        g.with_mut(|s| s.done = true);
        g.broadcast(&a1);
    });
    World {
        sim,
        socket,
        arrived,
        lib,
    }
}

fn spawn_highprio_client(w: &mut World) -> pcr::JoinHandle<SimDuration> {
    let lib = w.lib.clone();
    w.sim
        .fork_root("highprio-client", Priority::of(6), move |ctx| {
            let mut total = SimDuration::ZERO;
            let mut n = 0u64;
            for _ in 0..40 {
                ctx.sleep_precise(millis(90));
                let t0 = ctx.now();
                let mut g = ctx.enter(&lib);
                g.with_mut(|c| c.pending_output += 1);
                total += ctx.now().since(t0);
                n += 1;
            }
            total / n.max(1)
        })
}

fn harvest(mut w: World, h: pcr::JoinHandle<SimDuration>) -> XlibOutcome {
    let r = w.sim.run(RunLimit::For(secs(30)));
    assert!(!r.deadlocked(), "xlib world deadlocked");
    let hp_latency = h.into_result().expect("client done").expect("client ok");
    let lib = w.lib.clone();
    let probe = w.sim.fork_root("probe", Priority::of(6), move |ctx| {
        let g = ctx.enter(&lib);
        g.with(|c| (c.delivered, c.flushes, c.inversion_us))
    });
    w.sim.run(RunLimit::For(secs(1)));
    let (delivered, flushes, inversion_us) =
        probe.into_result().expect("probe done").expect("probe ok");
    XlibOutcome {
        events_delivered: delivered,
        flushes,
        flushes_per_event: flushes as f64 / delivered.max(1) as f64,
        inversion_window: SimDuration::from_micros(inversion_us),
        highprio_entry_latency: hp_latency,
    }
}

/// The modified-Xlib model: the client thread reads the connection
/// itself, holding the library monitor, with short-timeout reads and
/// the spec-mandated flush before each read.
pub fn run_modified_xlib() -> XlibOutcome {
    let mut w = build(false);
    let (socket, arrived, lib) = (w.socket.clone(), w.arrived.clone(), w.lib.clone());
    let _ = w
        .sim
        .fork_root("reading-client", Priority::of(3), move |ctx| loop {
            // Enter the library; it stays held across the whole read.
            let mut libg = ctx.enter(&lib);
            // The X spec couples read and flush.
            libg.with_mut(|c| {
                c.flushes += 1;
                c.pending_output = 0;
            });
            ctx.work(micros(80)); // The flush I/O.
            let mut sg = ctx.enter(&socket);
            if sg.with(|s| s.done && s.incoming.is_empty()) {
                break;
            }
            if let Some(_ev) = sg.with_mut(|s| s.incoming.pop_front()) {
                drop(sg);
                libg.with_mut(|c| c.delivered += 1);
                drop(libg);
                ctx.work(micros(200)); // Handle the event.
                continue;
            }
            // Short-timeout read while the LIBRARY mutex is held: the
            // inversion window.
            let t0 = ctx.now();
            let _ = sg.wait(&arrived);
            let held = ctx.now().saturating_since(t0).as_micros();
            drop(sg);
            libg.with_mut(|c| c.inversion_us += held);
        });
    let h = spawn_highprio_client(&mut w);
    harvest(w, h)
}

/// The X1 model: a dedicated reading thread blocks indefinitely on the
/// socket (holding nothing else); flushing is decoupled.
pub fn run_x1() -> XlibOutcome {
    let mut w = build(true);
    let (socket, arrived, lib) = (w.socket.clone(), w.arrived.clone(), w.lib.clone());
    let _ = w.sim.fork_root("x1-reader", Priority::of(5), move |ctx| {
        loop {
            let mut sg = ctx.enter(&socket);
            sg.wait_until(&arrived, |s| s.done || !s.incoming.is_empty());
            if sg.with(|s| s.done && s.incoming.is_empty()) {
                break;
            }
            let batch: Vec<u32> = sg.with_mut(|s| s.incoming.drain(..).collect());
            drop(sg);
            // Dispatch outside the socket monitor.
            let mut libg = ctx.enter(&lib);
            libg.with_mut(|c| c.delivered += batch.len() as u64);
            drop(libg);
            ctx.work(micros(200) * batch.len() as u64);
        }
    });
    // Maintenance flusher: periodic decoupled flushing.
    let lib2 = w.lib.clone();
    let _ = w
        .sim
        .fork_root("maintenance-flusher", Priority::of(4), move |ctx| loop {
            ctx.sleep(millis(950));
            let mut g = ctx.enter(&lib2);
            let had = g.with_mut(|c| {
                let had = c.pending_output > 0;
                if had {
                    c.flushes += 1;
                    c.pending_output = 0;
                }
                had
            });
            drop(g);
            if had {
                ctx.work(micros(80));
            }
        });
    let h = spawn_highprio_client(&mut w);
    harvest(w, h)
}

/// The §5.6 comparison.
pub fn compare() -> (XlibOutcome, XlibOutcome) {
    (run_modified_xlib(), run_x1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_deliver_all_events() {
        let (xlib, x1) = compare();
        assert_eq!(xlib.events_delivered, EVENTS as u64);
        assert_eq!(x1.events_delivered, EVENTS as u64);
    }

    #[test]
    fn xlib_flushes_excessively() {
        let (xlib, x1) = compare();
        // The short-timeout read loop flushes at least once per read
        // attempt; X1 flushes ~once a second.
        assert!(
            xlib.flushes_per_event >= 1.0,
            "xlib flushes/event = {}",
            xlib.flushes_per_event
        );
        assert!(
            x1.flushes_per_event < 0.2,
            "x1 flushes/event = {}",
            x1.flushes_per_event
        );
        assert!(xlib.flushes > 10 * x1.flushes.max(1));
    }

    #[test]
    fn x1_closes_the_inversion_window() {
        let (xlib, x1) = compare();
        // Xlib holds the library mutex across blocked reads for a large
        // share of the run; X1's reader never does.
        assert!(
            xlib.inversion_window > secs(1),
            "xlib window {}",
            xlib.inversion_window
        );
        assert_eq!(x1.inversion_window, SimDuration::ZERO);
        // And the high-priority client pays for it.
        assert!(
            xlib.highprio_entry_latency > x1.highprio_entry_latency,
            "latencies: xlib {} x1 {}",
            xlib.highprio_entry_latency,
            x1.highprio_entry_latency
        );
    }
}
