//! Spurious lock conflicts (§6.1).
//!
//! A NOTIFY that immediately makes the waiter runnable wastes a trip
//! through the scheduler whenever the waiter outranks the notifier on a
//! uniprocessor: the waiter preempts, fails to acquire the still-held
//! monitor, and blocks again. Birrell saw this on multiprocessors; the
//! paper observed it on a *uniprocessor* in exactly this interpriority
//! shape, and fixed it in the runtime by deferring the reschedule (not
//! the notification) until monitor exit.

use pcr::{micros, NotifyMode, Priority, RunLimit, Sim, SimConfig, SimDuration};

/// What one run of the notify microbenchmark measured.
#[derive(Clone, Copy, Debug)]
pub struct SpuriousOutcome {
    /// Notify mode under test.
    pub mode: NotifyMode,
    /// NOTIFYs performed.
    pub notifies: u64,
    /// Spurious lock conflicts (wasted dispatches).
    pub spurious_conflicts: u64,
    /// Total thread switches.
    pub switches: u64,
    /// Virtual time for the whole exchange.
    pub elapsed: SimDuration,
}

/// Runs `rounds` producer→consumer notifications with a **higher**
/// priority consumer, under the given notify mode.
pub fn run_notify_bench(mode: NotifyMode, rounds: u32) -> SpuriousOutcome {
    let mut sim = Sim::new(SimConfig::default().with_notify_mode(mode));
    let m = sim.monitor("cell", 0u32);
    let cv = sim.condition(&m, "filled", None);
    let (mc, cvc) = (m.clone(), cv.clone());
    // Consumer outranks producer: the §6.1 interpriority shape.
    let _ = sim.fork_root("consumer", Priority::of(6), move |ctx| {
        let mut seen = 0u32;
        let mut g = ctx.enter(&mc);
        while seen < rounds {
            g.wait_until(&cvc, |&v| v > seen);
            seen += 1;
        }
    });
    let _ = sim.fork_root("producer", Priority::of(3), move |ctx| {
        for _ in 0..rounds {
            ctx.work(micros(200));
            let mut g = ctx.enter(&m);
            g.with_mut(|v| *v += 1);
            g.notify(&cv);
            // The monitor is still held here: an immediately-rescheduled
            // consumer will block on it.
            ctx.work(micros(50));
            drop(g);
        }
    });
    let report = sim.run(RunLimit::For(pcr::secs(60)));
    assert!(!report.deadlocked());
    let stats = sim.stats();
    SpuriousOutcome {
        mode,
        notifies: stats.cv_notifies,
        spurious_conflicts: stats.spurious_conflicts,
        switches: stats.switches,
        elapsed: report.elapsed,
    }
}

/// The §6.1 comparison: immediate vs deferred-reschedule NOTIFY.
pub fn compare(rounds: u32) -> (SpuriousOutcome, SpuriousOutcome) {
    (
        run_notify_bench(NotifyMode::Immediate, rounds),
        run_notify_bench(NotifyMode::DeferredReschedule, rounds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::millis;

    #[test]
    fn immediate_mode_wastes_a_dispatch_per_notify() {
        let out = run_notify_bench(NotifyMode::Immediate, 200);
        // Every notify to the higher-priority waiter preempts into a
        // still-held monitor.
        assert!(
            out.spurious_conflicts >= out.notifies * 9 / 10,
            "spurious {} of {} notifies",
            out.spurious_conflicts,
            out.notifies
        );
    }

    #[test]
    fn deferred_reschedule_eliminates_the_waste() {
        let out = run_notify_bench(NotifyMode::DeferredReschedule, 200);
        assert_eq!(out.spurious_conflicts, 0);
    }

    #[test]
    fn deferred_mode_switches_less() {
        let (imm, def) = compare(200);
        assert!(
            def.switches + 100 <= imm.switches,
            "switches: immediate {} deferred {}",
            imm.switches,
            def.switches
        );
        // Same number of notifications delivered either way.
        assert_eq!(imm.notifies, def.notifies);
    }

    #[test]
    fn lower_priority_waiter_never_conflicts() {
        // With the consumer *below* the producer, immediate mode never
        // preempts into the held monitor: conflicts need the priority
        // inversion of §6.1.
        let mut sim = Sim::new(SimConfig::default().with_notify_mode(NotifyMode::Immediate));
        let m = sim.monitor("cell", 0u32);
        let cv = sim.condition(&m, "filled", None);
        let (mc, cvc) = (m.clone(), cv.clone());
        let _ = sim.fork_root("consumer", Priority::of(2), move |ctx| {
            let mut g = ctx.enter(&mc);
            g.wait_until(&cvc, |&v| v >= 50);
        });
        let _ = sim.fork_root("producer", Priority::of(5), move |ctx| {
            for _ in 0..50 {
                ctx.work(millis(1));
                let mut g = ctx.enter(&m);
                g.with_mut(|v| *v += 1);
                g.notify(&cv);
            }
        });
        let r = sim.run(RunLimit::For(pcr::secs(10)));
        assert!(!r.deadlocked());
        assert_eq!(sim.stats().spurious_conflicts, 0);
    }
}
