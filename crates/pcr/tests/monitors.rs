//! Integration tests for monitors, condition variables, fault paths,
//! fork policies, and deadlock reporting.

use pcr::{
    micros, millis, secs, ForkError, ForkPolicy, JoinError, NotifyMode, Priority, RunLimit, Sim,
    SimConfig, StopReason, WaitOutcome,
};

fn sim() -> Sim {
    Sim::new(SimConfig::default())
}

// ---- monitors -------------------------------------------------------------

#[test]
fn monitor_protects_a_read_modify_write() {
    let mut s = sim();
    let m = s.monitor("counter", 0u64);
    for i in 0..4 {
        let m = m.clone();
        let _ = s.fork_root(&format!("w{i}"), Priority::DEFAULT, move |ctx| {
            for _ in 0..25 {
                let mut g = ctx.enter(&m);
                let v = g.with(|v| *v);
                ctx.work(micros(500)); // Quantum expiry can land here.
                g.with_mut(|x| *x = v + 1);
            }
        });
    }
    let h = s.fork_root("reader", Priority::of(2), move |ctx| {
        let g = ctx.enter(&m);
        g.with(|v| *v)
    });
    s.run(RunLimit::ToCompletion);
    assert_eq!(h.into_result().unwrap().unwrap(), 100);
}

#[test]
fn recursive_monitor_entry_panics_the_thread_not_the_sim() {
    let mut s = sim();
    let m = s.monitor("m", ());
    let h = s.fork_root("recursive", Priority::DEFAULT, move |ctx| {
        let _g1 = ctx.enter(&m);
        // Mesa monitors are not re-entrant; this provokes the fault on
        // purpose. threadlint: allow(lock-order-cycle)
        let _g2 = ctx.enter(&m);
    });
    let _ = s.fork_root("bystander", Priority::DEFAULT, |ctx| ctx.work(millis(1)));
    let r = s.run(RunLimit::For(secs(2)));
    assert_eq!(r.reason, StopReason::AllExited, "sim must survive");
    match h.into_result().unwrap() {
        Err(JoinError::Panicked(msg)) => {
            assert!(msg.contains("recursive monitor entry"), "{msg}")
        }
        other => panic!("expected panic, got {other:?}"),
    }
    assert_eq!(s.stats().panics, 1);
}

#[test]
fn panic_inside_monitor_releases_it() {
    let mut s = sim();
    let m = s.monitor("m", 0u32);
    let m2 = m.clone();
    let _ = s.fork_root("dies-inside", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        g.with_mut(|v| *v = 1);
        panic!("dies holding the monitor");
    });
    let h = s.fork_root("survivor", Priority::of(4), move |ctx| {
        ctx.sleep_precise(millis(1));
        let g = ctx.enter(&m); // Must not deadlock.
        g.with(|v| *v)
    });
    let r = s.run(RunLimit::For(secs(2)));
    assert_eq!(r.reason, StopReason::AllExited);
    assert_eq!(h.into_result().unwrap().unwrap(), 1);
}

// ---- condition variables --------------------------------------------------

#[test]
fn broadcast_wakes_every_waiter() {
    let mut s = sim();
    let m = s.monitor("flag", false);
    let cv = s.condition(&m, "set", None);
    let mut handles = Vec::new();
    for i in 0..5 {
        let (m, cv) = (m.clone(), cv.clone());
        handles.push(
            s.fork_root(&format!("w{i}"), Priority::DEFAULT, move |ctx| {
                let mut g = ctx.enter(&m);
                g.wait_until(&cv, |&f| f);
                true
            }),
        );
    }
    let _ = s.fork_root("setter", Priority::of(3), move |ctx| {
        ctx.sleep_precise(millis(5));
        let mut g = ctx.enter(&m);
        g.with_mut(|f| *f = true);
        g.broadcast(&cv);
    });
    let r = s.run(RunLimit::For(secs(2)));
    assert_eq!(r.reason, StopReason::AllExited);
    for h in handles {
        assert!(h.into_result().unwrap().unwrap());
    }
    assert_eq!(s.stats().cv_broadcasts, 1);
}

#[test]
fn notify_wakes_exactly_one_waiter() {
    let mut s = sim();
    let m = s.monitor("q", 0u32);
    let cv = s.condition(&m, "cv", Some(millis(200)));
    let mut handles = Vec::new();
    for i in 0..3 {
        let (m, cv) = (m.clone(), cv.clone());
        handles.push(
            s.fork_root(&format!("w{i}"), Priority::DEFAULT, move |ctx| {
                let mut g = ctx.enter(&m);
                g.wait(&cv)
            }),
        );
    }
    let _ = s.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.sleep_precise(millis(5));
        let g = ctx.enter(&m);
        g.notify(&cv);
    });
    s.run(RunLimit::For(secs(2)));
    let outcomes: Vec<WaitOutcome> = handles
        .into_iter()
        .map(|h| h.into_result().unwrap().unwrap())
        .collect();
    let notified = outcomes
        .iter()
        .filter(|o| **o == WaitOutcome::Notified)
        .count();
    let timed_out = outcomes
        .iter()
        .filter(|o| **o == WaitOutcome::TimedOut)
        .count();
    assert_eq!(notified, 1, "exactly one waiter wakens: {outcomes:?}");
    assert_eq!(timed_out, 2);
}

#[test]
fn notify_with_no_waiters_is_a_noop() {
    let mut s = sim();
    let m = s.monitor("m", ());
    let cv = s.condition(&m, "cv", None);
    let _ = s.fork_root("n", Priority::DEFAULT, move |ctx| {
        let g = ctx.enter(&m);
        g.notify(&cv);
        g.broadcast(&cv);
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    assert_eq!(s.stats().cv_notifies, 1);
}

#[test]
fn timeout_is_quantized_to_the_tick() {
    let mut s = sim();
    let m = s.monitor("m", ());
    let cv = s.condition(&m, "cv", Some(millis(30)));
    let h = s.fork_root("w", Priority::DEFAULT, move |ctx| {
        let mut g = ctx.enter(&m);
        let before = ctx.now();
        let outcome = g.wait(&cv);
        (outcome, ctx.now().since(before))
    });
    s.run(RunLimit::ToCompletion);
    let (outcome, waited) = h.into_result().unwrap().unwrap();
    assert_eq!(outcome, WaitOutcome::TimedOut);
    // The 30ms deadline rounds up to the 50ms tick; the wait began a few
    // switch-costs after t=0, so the observed wait is just under 50ms.
    assert!(
        waited >= millis(30) && waited <= millis(50),
        "waited {waited}"
    );
    // The timer fired on the 50ms tick; only microsecond primitive costs
    // separate the observed wake from the tick itself.
    let off_tick = s.now().as_micros() % 50_000;
    assert!(off_tick < 10, "woke {off_tick}us off-tick");
}

#[test]
fn wait_on_foreign_monitors_cv_panics() {
    let mut s = sim();
    let a = s.monitor("a", ());
    let b = s.monitor("b", ());
    let cv_b = s.condition(&b, "of-b", None);
    let h = s.fork_root("confused", Priority::DEFAULT, move |ctx| {
        let mut g = ctx.enter(&a);
        let _ = ctx.wait(&mut g, &cv_b);
    });
    s.run(RunLimit::For(secs(1)));
    match h.into_result().unwrap() {
        Err(JoinError::Panicked(msg)) => assert!(msg.contains("does not belong"), "{msg}"),
        other => panic!("expected panic, got {other:?}"),
    }
}

#[test]
fn immediate_vs_deferred_notify_mode_is_observable() {
    let run = |mode: NotifyMode| {
        let mut s = Sim::new(SimConfig::default().with_notify_mode(mode));
        let m = s.monitor("m", 0u32);
        let cv = s.condition(&m, "cv", None);
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = s.fork_root("hi-waiter", Priority::of(6), move |ctx| {
            let mut g = ctx.enter(&m2);
            g.wait_until(&cv2, |&v| v >= 20);
        });
        let _ = s.fork_root("lo-notifier", Priority::of(3), move |ctx| {
            for _ in 0..20 {
                let mut g = ctx.enter(&m);
                g.with_mut(|v| *v += 1);
                g.notify(&cv);
                ctx.work(micros(100)); // Still holding the monitor.
                drop(g);
            }
        });
        s.run(RunLimit::For(secs(5)));
        s.stats().spurious_conflicts
    };
    assert!(run(NotifyMode::Immediate) >= 19);
    assert_eq!(run(NotifyMode::DeferredReschedule), 0);
}

// ---- fork policies and lifecycle -------------------------------------------

#[test]
fn error_policy_reports_exhaustion() {
    let mut s = Sim::new(
        SimConfig::default()
            .with_max_threads(3)
            .with_fork_policy(ForkPolicy::Error),
    );
    let h = s.fork_root("spawner", Priority::DEFAULT, move |ctx| {
        let mut ok = 0;
        let mut failed = 0;
        let mut handles = Vec::new();
        for i in 0..6 {
            match ctx.fork(&format!("c{i}"), |ctx| ctx.work(millis(100))) {
                Ok(h) => {
                    ok += 1;
                    handles.push(h);
                }
                Err(ForkError::ResourcesExhausted) => failed += 1,
            }
        }
        for h in handles {
            let _ = ctx.join(h);
        }
        (ok, failed)
    });
    s.run(RunLimit::For(secs(5)));
    let (ok, failed) = h.into_result().unwrap().unwrap();
    assert_eq!(ok, 2, "spawner + 2 children = limit of 3");
    assert_eq!(failed, 4);
    assert_eq!(s.stats().fork_failures, 4);
}

#[test]
fn wait_policy_blocks_until_a_slot_frees() {
    let mut s = Sim::new(
        SimConfig::default()
            .with_max_threads(2)
            .with_fork_policy(ForkPolicy::WaitForResources),
    );
    let h = s.fork_root("spawner", Priority::DEFAULT, move |ctx| {
        let t0 = ctx.now();
        let a = ctx.fork("a", |ctx| ctx.work(millis(30))).unwrap();
        // At the limit now: this fork must block until `a` exits.
        let b = ctx.fork("b", |ctx| ctx.work(millis(1))).unwrap();
        let blocked_for = ctx.now().since(t0);
        ctx.join(a).unwrap();
        ctx.join(b).unwrap();
        blocked_for
    });
    let r = s.run(RunLimit::For(secs(5)));
    assert_eq!(r.reason, StopReason::AllExited);
    let blocked = h.into_result().unwrap().unwrap();
    assert!(blocked >= millis(30), "fork blocked only {blocked}");
    assert_eq!(s.stats().fork_blocks, 1);
}

#[test]
fn detached_threads_free_their_slots() {
    let mut s = Sim::new(SimConfig::default().with_max_threads(3));
    let _ = s.fork_root("spawner", Priority::DEFAULT, move |ctx| {
        for i in 0..20 {
            // Sequential detached children never exceed the limit.
            let tid = ctx
                .fork_detached(&format!("d{i}"), |ctx| ctx.work(millis(1)))
                .unwrap();
            let _ = tid;
            ctx.sleep_precise(millis(5));
        }
    });
    let r = s.run(RunLimit::For(secs(5)));
    assert_eq!(r.reason, StopReason::AllExited);
    assert_eq!(s.stats().forks, 21);
    assert!(s.stats().fork_blocks <= 1);
}

// ---- deadlock detection -----------------------------------------------------

#[test]
fn abba_deadlock_is_reported_with_owners() {
    let mut s = sim();
    let a = s.monitor("res-a", ());
    let b = s.monitor("res-b", ());
    let (a1, b1) = (a.clone(), b.clone());
    let _ = s.fork_root("t1", Priority::DEFAULT, move |ctx| {
        let _g = ctx.enter(&a1);
        ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
        let _g2 = ctx.enter(&b1); // threadlint: allow(lock-order-cycle)
    });
    let _ = s.fork_root("t2", Priority::DEFAULT, move |ctx| {
        let _g = ctx.enter(&b);
        ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
        let _g2 = ctx.enter(&a); // threadlint: allow(lock-order-cycle)
    });
    let r = s.run(RunLimit::For(secs(5)));
    let StopReason::Deadlock(report) = r.reason else {
        panic!("expected deadlock, got {:?}", r.reason);
    };
    assert_eq!(report.blocked.len(), 2);
    let text = report.to_string();
    assert!(text.contains("res-a") && text.contains("res-b"), "{text}");
    for b in &report.blocked {
        assert!(b.blocked_on.is_some(), "wait-for edge missing: {b:?}");
    }
}

#[test]
fn untimed_cv_wait_with_no_notifier_deadlocks() {
    let mut s = sim();
    let m = s.monitor("m", ());
    let cv = s.condition(&m, "never", None);
    let _ = s.fork_root("forever", Priority::DEFAULT, move |ctx| {
        let mut g = ctx.enter(&m);
        let _ = g.wait(&cv);
    });
    let r = s.run(RunLimit::For(secs(5)));
    assert!(r.deadlocked(), "got {:?}", r.reason);
}

#[test]
fn join_cycle_is_a_deadlock() {
    let mut s = sim();
    let h1 = s.fork_root("a", Priority::DEFAULT, |ctx| {
        ctx.sleep_precise(secs(3600)); // Never finishes on its own.
    });
    let tid = h1.tid();
    let _ = s.fork_root("joiner", Priority::DEFAULT, move |ctx| {
        ctx.join(h1).unwrap();
    });
    let r = s.run(RunLimit::For(secs(1)));
    // Not a deadlock (the sleeper has a timer) but the joiner is blocked.
    assert_eq!(r.reason, StopReason::TimeLimit);
    let joiner = s.threads_iter().find(|t| t.name == "joiner").unwrap();
    assert!(!joiner.exited);
    let _ = tid;
}

// ---- run() resumability ------------------------------------------------------

#[test]
fn run_can_be_resumed_and_accumulates() {
    let mut s = sim();
    let _ = s.fork_root("ticker", Priority::DEFAULT, |ctx| loop {
        ctx.sleep(millis(100));
        ctx.work(millis(1));
    });
    let r1 = s.run(RunLimit::For(secs(1)));
    let cpu_1 = s.stats().total_cpu;
    let r2 = s.run(RunLimit::For(secs(1)));
    assert_eq!(r1.elapsed, secs(1));
    assert_eq!(r2.elapsed, secs(1));
    assert_eq!(r2.now, pcr::SimTime::ZERO + secs(2));
    // The ticker kept accumulating CPU across the resumed run.
    assert!(s.stats().total_cpu > cpu_1);
}

#[test]
fn run_until_absolute_time() {
    let mut s = sim();
    let _ = s.fork_root("t", Priority::DEFAULT, |ctx| loop {
        ctx.sleep(millis(50));
    });
    let r = s.run(RunLimit::Until(pcr::SimTime::from_micros(750_000)));
    assert_eq!(r.now.as_micros(), 750_000);
}
