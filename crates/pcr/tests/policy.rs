//! Behavioral property tests for the pluggable scheduling policies.
//!
//! The default round-robin policy is pinned byte-for-byte by the bench
//! determinism goldens; these tests pin what the *alternative* policies
//! promise instead: CFS never starves an equal-weight competitor,
//! lottery CPU tracks ticket weights, and MLFQ demotes a spinner rather
//! than letting it starve a low-priority interactive thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pcr::{millis, secs, PolicyKind, Priority, RunLimit, Sim, SimConfig, SimDuration, SimStats};

/// Runs one eternal spinner per entry of `priorities` under `policy`
/// for `window` of virtual time and returns each spinner's completed
/// loop count (5ms of work per loop) plus the final scheduler stats.
fn spinner_counts(
    policy: PolicyKind,
    priorities: &[Priority],
    window: SimDuration,
) -> (Vec<u64>, SimStats) {
    let mut sim = Sim::new(
        SimConfig::default()
            .with_seed(0x90_11C7)
            .with_policy(policy),
    );
    let counters: Vec<Arc<AtomicU64>> = priorities
        .iter()
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    for (i, (&p, c)) in priorities.iter().zip(&counters).enumerate() {
        let c = Arc::clone(c);
        let _ = sim.fork_root(&format!("spin-{i}"), p, move |ctx| loop {
            ctx.work(millis(5));
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    sim.run(RunLimit::For(window));
    let counts = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    (counts, sim.stats().clone())
}

#[test]
fn cfs_shares_cpu_evenly_at_equal_priority() {
    let (counts, _) = spinner_counts(
        PolicyKind::Cfs,
        &[Priority::DEFAULT, Priority::DEFAULT, Priority::DEFAULT],
        secs(10),
    );
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(min > 0, "a spinner starved under CFS: {counts:?}");
    assert!(
        max <= min * 2,
        "equal-weight spinners diverged more than 2x: {counts:?}"
    );
}

#[test]
fn lottery_cpu_tracks_ticket_weights() {
    // Weights double per level: priority 2 holds 2 tickets, priority 5
    // holds 16, so the expected CPU ratio is 8x. The draw is seeded, so
    // the observed ratio is deterministic; the wide band only has to
    // absorb binomial noise across ~600 quantum-length draws.
    let (counts, _) = spinner_counts(
        PolicyKind::Lottery,
        &[Priority::of(2), Priority::of(5)],
        secs(30),
    );
    let (low, high) = (counts[0], counts[1]);
    assert!(low > 0, "2-ticket spinner starved: {counts:?}");
    let ratio = high as f64 / low as f64;
    assert!(
        (2.0..32.0).contains(&ratio),
        "CPU ratio {ratio:.1} is not near the 8x ticket ratio: {counts:?}"
    );
}

#[test]
fn mlfq_demotes_the_spinner_instead_of_starving_the_pump() {
    // A priority-1 "pump" sleeps 50ms then works 1ms, forever — the
    // shape of the paper's low-priority screen painter. A priority-4
    // spinner never blocks. Under strict-priority round-robin the pump
    // never runs; under MLFQ the spinner burns through its quanta,
    // demotes to the bottom level, and the pump makes steady progress.
    fn pump_progress(policy: PolicyKind) -> u64 {
        let mut sim = Sim::new(
            SimConfig::default()
                .with_seed(0x90_11C7)
                .with_policy(policy),
        );
        let pumped = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&pumped);
        let _ = sim.fork_root("pump", Priority::MIN, move |ctx| loop {
            ctx.sleep(millis(50));
            ctx.work(millis(1));
            c.fetch_add(1, Ordering::Relaxed);
        });
        let _ = sim.fork_root("spinner", Priority::DEFAULT, |ctx| loop {
            ctx.work(millis(5));
        });
        sim.run(RunLimit::For(secs(10)));
        pumped.load(Ordering::Relaxed)
    }

    let rr = pump_progress(PolicyKind::RoundRobin);
    let mlfq = pump_progress(PolicyKind::Mlfq);
    assert_eq!(
        rr, 0,
        "strict priority should starve the pump behind the spinner"
    );
    assert!(
        mlfq >= 20,
        "MLFQ pump made only {mlfq} iterations in 10s against a demoted spinner"
    );
}

#[test]
fn every_policy_replays_identically_for_a_fixed_seed() {
    for policy in PolicyKind::ALL {
        let prios = [Priority::of(2), Priority::DEFAULT, Priority::of(6)];
        let (counts_a, stats_a) = spinner_counts(policy, &prios, secs(5));
        let (counts_b, stats_b) = spinner_counts(policy, &prios, secs(5));
        assert_eq!(counts_a, counts_b, "{policy}: progress diverged on replay");
        assert_eq!(
            format!("{stats_a:?}"),
            format!("{stats_b:?}"),
            "{policy}: stats diverged on replay"
        );
    }
}
