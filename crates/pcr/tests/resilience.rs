//! End-to-end tests of the resilience primitives in `pcr`: fault
//! schedules recorded from probabilistic chaos runs and replayed as
//! scripts (byte-identical), the gated stall-while-holding trigger, the
//! live wait-for graph, and the two recovery levers a supervisor pulls —
//! [`Sim::fail_pending_forks`] (§5.4) and [`Sim::rejuvenate`] (§5.2).

use pcr::{
    micros, millis, secs, BlockKind, ChaosConfig, Event, FaultDecision, FaultSchedule,
    FaultSiteKind, Priority, RunLimit, Sim, SimConfig, SimTime, VecSink,
};

fn take_events(sim: &mut Sim) -> Vec<Event> {
    sim.take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events
}

/// A busy world that exercises every injection path and tolerates all of
/// them (timeout-guarded waits, fork errors handled, predicates
/// re-checked).
fn chaotic_world(sim: &mut Sim) {
    let m = sim.monitor("m", 0u64);
    let cv = sim.condition(&m, "cv", Some(millis(10)));
    for t in 0..4 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(
            &format!("t{t}"),
            Priority::of(3 + (t % 3) as u8),
            move |ctx| {
                let mut rng = ctx.rng();
                loop {
                    ctx.work(micros(rng.next_below(800)));
                    let mut g = ctx.enter(&m);
                    g.with_mut(|v| *v += 1);
                    g.notify(&cv);
                    let _ = g.wait(&cv);
                    drop(g);
                    if rng.next_below(4) == 0 {
                        if let Ok(h) = ctx.fork("child", |ctx| ctx.work(millis(1))) {
                            let _ = ctx.join(h);
                        }
                    }
                    ctx.sleep(millis(2));
                }
            },
        );
    }
}

fn full_chaos() -> ChaosConfig {
    ChaosConfig::none()
        .fail_forks(0.3)
        .spurious_wakeups(0.3)
        .drop_notifies(0.2)
        .duplicate_notifies(0.2)
        .jitter_timers(millis(3))
        .stall("t0", SimTime::from_micros(100_000), millis(50))
}

#[test]
fn recorded_schedule_replays_byte_identically_without_rng() {
    // Pass 1: probabilistic chaos, recording the fault schedule.
    let cfg = SimConfig::default()
        .with_seed(0xFA57)
        .with_chaos(full_chaos());
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    chaotic_world(&mut sim);
    sim.run(RunLimit::For(secs(2)));
    let recorded = sim.fault_schedule();
    let events_a = take_events(&mut sim);
    let stats_a = sim.stats().clone();
    assert!(
        !recorded.decisions.is_empty(),
        "chaos at these rates must record decisions"
    );
    assert_eq!(recorded.stalls.len(), 1);

    // Pass 2: same SimConfig, but chaos replaced by the recorded script
    // (no probabilities left anywhere).
    let cfg = SimConfig::default()
        .with_seed(0xFA57)
        .with_chaos(ChaosConfig::none().scripted(recorded.clone()));
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    chaotic_world(&mut sim);
    sim.run(RunLimit::For(secs(2)));
    let events_b = take_events(&mut sim);
    let stats_b = sim.stats().clone();

    assert_eq!(events_a, events_b, "scripted replay diverged from original");
    assert_eq!(stats_a.switches, stats_b.switches);
    assert_eq!(stats_a.chaos_fork_failures, stats_b.chaos_fork_failures);
    assert_eq!(
        stats_a.chaos_spurious_wakeups,
        stats_b.chaos_spurious_wakeups
    );
    assert_eq!(
        stats_a.chaos_dropped_notifies,
        stats_b.chaos_dropped_notifies
    );
    assert_eq!(
        stats_a.chaos_duplicated_notifies,
        stats_b.chaos_duplicated_notifies
    );
    assert_eq!(stats_a.chaos_stalls, stats_b.chaos_stalls);
    // The replay run's own recorded schedule equals the script: replay
    // is a fixed point.
    assert_eq!(sim.fault_schedule(), recorded);
}

#[test]
fn scripted_fork_fail_hits_exactly_the_listed_site() {
    let schedule = FaultSchedule {
        decisions: vec![FaultDecision {
            kind: FaultSiteKind::ForkFail,
            site: 0,
            param_us: 0,
        }],
        stalls: Vec::new(),
    };
    let cfg = SimConfig::default().with_chaos(ChaosConfig::none().scripted(schedule));
    let mut sim = Sim::new(cfg);
    let h = sim.fork_root("forker", Priority::DEFAULT, |ctx| {
        let first = ctx.fork("a", |_| ()).is_err();
        let second = ctx.fork("b", |_| ()).is_ok();
        (first, second)
    });
    sim.run(RunLimit::For(secs(1)));
    assert_eq!(h.into_result().unwrap().unwrap(), (true, true));
    assert_eq!(sim.stats().fork_failures, 1);
}

#[test]
fn fail_pending_forks_drains_the_wait_queue() {
    // Cap the table so the fork blocks (WaitForResources), with an
    // eternal peer guaranteeing the slot never frees on its own.
    let cfg = SimConfig::default().with_max_threads(2);
    let mut sim = Sim::new(cfg);
    let _ = sim.fork_root("eternal", Priority::of(3), |ctx| loop {
        ctx.sleep(millis(5));
    });
    let h = sim.fork_root("forker", Priority::of(4), |ctx| {
        // Blocks in ForkWait: the table is full and nobody ever exits.
        ctx.fork("overflow", |_| ()).is_err()
    });
    sim.run(RunLimit::For(millis(50)));
    let g = sim.wait_for_graph();
    assert_eq!(g.threads.len(), 1, "{}", g.render());
    assert_eq!(g.threads[0].kind.tag(), "fork");
    assert!(
        !g.wedged(millis(20)).is_empty(),
        "forker should be wedged: {}",
        g.render()
    );

    assert_eq!(sim.fail_pending_forks(), 1);
    sim.run(RunLimit::For(millis(50)));
    assert!(
        h.into_result().unwrap().unwrap(),
        "drained fork must surface as ResourcesExhausted"
    );
    assert!(sim.wait_for_graph().wedged(millis(20)).is_empty());
}

#[test]
fn stall_while_holding_wedges_waiters_and_rejuvenate_recovers() {
    // "holder" takes the monitor for 2ms every 10ms; "watcher" takes it
    // briefly every 5ms. The gated stall must catch holder *inside* the
    // monitor, wedging watcher in MutexWait behind a Stalled root.
    let chaos = ChaosConfig::none().stall_while_holding(
        "holder",
        "shared",
        SimTime::from_micros(20_000),
        secs(30),
    );
    let cfg = SimConfig::default().with_chaos(chaos);
    let mut sim = Sim::new(cfg);
    let m = sim.monitor("shared", 0u64);
    let m2 = m.clone();
    let _ = sim.fork_root("holder", Priority::of(4), move |ctx| loop {
        let mut g = ctx.enter(&m2);
        ctx.work(millis(2));
        g.with_mut(|v| *v += 1);
        drop(g);
        ctx.sleep_precise(millis(10));
    });
    let h = sim.fork_root("watcher", Priority::of(5), move |ctx| {
        let mut n = 0u64;
        loop {
            ctx.sleep_precise(millis(5));
            let g = ctx.enter(&m);
            n += g.with(|v| *v);
            if ctx.now() >= SimTime::from_micros(400_000) {
                return n;
            }
        }
    });
    sim.run(RunLimit::For(millis(200)));

    let g = sim.wait_for_graph();
    assert_eq!(sim.stats().chaos_stalls, 1, "gated stall never fired");
    assert_eq!(g.stalled.len(), 1, "{}", g.render());
    let (stalled_tid, stalled_name) = g.stalled[0].clone();
    assert_eq!(stalled_name, "holder");
    let wedged = g.wedged(millis(100));
    assert_eq!(wedged.len(), 1, "{}", g.render());
    assert_eq!(wedged[0].name, "watcher");
    assert!(matches!(wedged[0].kind, BlockKind::Monitor));
    assert_eq!(wedged[0].resource, "shared");
    // The chain from the wedged waiter leads to the stalled holder.
    assert_eq!(g.root_of(wedged[0].tid), Some(stalled_tid));

    // The §5.2 lever: un-stall the unresponsive component and the world
    // finishes its work.
    assert!(sim.rejuvenate(stalled_tid));
    sim.run(RunLimit::For(millis(300)));
    let n = h.into_result().unwrap().unwrap();
    assert!(n > 0, "watcher never ran after rejuvenation");
    assert!(sim.wait_for_graph().wedged(millis(100)).is_empty());
}

#[test]
fn rejuvenate_clears_a_pending_stall_too() {
    // The stall fires at 5ms, mid-sleep (sleeps span [4ms, 8ms)), so it
    // parks as stall_pending; rejuvenation must cancel it before it
    // ever applies.
    let chaos = ChaosConfig::none().stall("sleeper", SimTime::from_micros(5_000), secs(10));
    let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
    let h = sim.fork_root("sleeper", Priority::DEFAULT, |ctx| {
        let mut ticks = 0u64;
        for _ in 0..5 {
            ctx.sleep_precise(millis(4));
            ticks += 1;
        }
        ticks
    });
    sim.run(RunLimit::For(millis(6)));
    assert!(sim.rejuvenate(h.tid()), "pending stall should be cleared");
    sim.run(RunLimit::For(secs(1)));
    assert_eq!(sim.stats().chaos_stalls, 0, "stall must never apply");
    assert_eq!(h.into_result().unwrap().unwrap(), 5);
}
