//! Integration tests for the Mesa-model scheduler: priorities,
//! preemption, timeslicing, yields, and determinism.

use pcr::{
    micros, millis, secs, Priority, RunLimit, Sim, SimConfig, StopReason, SystemDaemonConfig,
    VecSink,
};

fn sim() -> Sim {
    Sim::new(SimConfig::default())
}

#[test]
fn single_thread_runs_to_completion() {
    let mut s = sim();
    let h = s.fork_root("t", Priority::DEFAULT, |ctx| {
        ctx.work(millis(10));
        42u32
    });
    let report = s.run(RunLimit::ToCompletion);
    assert_eq!(report.reason, StopReason::AllExited);
    // The thread's 10ms of work plus a switch cost elapsed.
    assert!(report.now >= pcr::SimTime::from_micros(10_000));
    assert_eq!(h.into_result().unwrap().unwrap(), 42);
    assert_eq!(s.stats().forks, 1);
    assert_eq!(s.stats().exits, 1);
}

#[test]
fn join_returns_value() {
    let mut s = sim();
    let h = s.fork_root("main", Priority::DEFAULT, |ctx| {
        let child = ctx
            .fork("child", |ctx| {
                ctx.work(millis(5));
                "result".to_string()
            })
            .unwrap();
        ctx.join(child).unwrap()
    });
    s.run(RunLimit::ToCompletion);
    drop(h);
    let infos = s.threads();
    assert_eq!(infos.len(), 2);
    assert!(infos.iter().all(|t| t.exited && !t.panicked));
}

#[test]
fn join_of_already_exited_thread_is_immediate() {
    let mut s = sim();
    let _ = s.fork_root("main", Priority::DEFAULT, |ctx| {
        let child = ctx.fork("quick", |_| 7u8).unwrap();
        ctx.work(millis(100)); // Child (same priority? forked later) ...
        ctx.yield_now();
        ctx.join(child).unwrap()
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
}

#[test]
fn panicking_child_reports_via_join() {
    let mut s = sim();
    let h = s.fork_root("main", Priority::DEFAULT, |ctx| {
        let child = ctx
            .fork("doomed", |_ctx| -> u32 { panic!("intentional failure") })
            .unwrap();
        ctx.join(child)
    });
    s.run(RunLimit::ToCompletion);
    drop(h);
    assert_eq!(s.stats().panics, 1);
    let infos = s.threads();
    let doomed = infos.iter().find(|t| t.name == "doomed").unwrap();
    assert!(doomed.panicked);
    let main = infos.iter().find(|t| t.name == "main").unwrap();
    assert!(!main.panicked, "joiner must survive the child's panic");
}

#[test]
fn higher_priority_preempts_lower() {
    // A low-priority hog runs; a high-priority thread wakes from a
    // precise sleep mid-hog and must finish first (strict priority).
    let mut s = sim();
    let hog = s.fork_root("hog", Priority::of(2), move |ctx| {
        ctx.work(millis(40));
        ctx.now()
    });
    let urgent = s.fork_root("urgent", Priority::of(6), move |ctx| {
        ctx.sleep_precise(millis(5));
        ctx.work(millis(1));
        ctx.now()
    });
    s.run(RunLimit::ToCompletion);
    let hog_end = hog.into_result().unwrap().unwrap();
    let urgent_end = urgent.into_result().unwrap().unwrap();
    assert!(
        urgent_end < hog_end,
        "urgent ({urgent_end}) must preempt and finish before hog ({hog_end})"
    );
    // Urgent finished right around t = 6ms, far inside the hog's work.
    assert!(urgent_end.as_micros() < 10_000);
}

#[test]
fn preemption_order_via_events() {
    let mut s = sim();
    s.set_sink(Box::new(VecSink::default()));
    let _ = s.fork_root("hog", Priority::of(2), |ctx| ctx.work(millis(40)));
    let _ = s.fork_root("urgent", Priority::of(6), |ctx| {
        ctx.sleep_precise(millis(5));
        ctx.work(millis(1));
    });
    s.run(RunLimit::ToCompletion);
    let sink = s.take_sink().unwrap();
    // Downcast through Any is unavailable on the trait object; re-run
    // isn't needed — instead check counters: at least 3 switches
    // (hog, urgent preempts, hog resumes).
    drop(sink);
    assert!(s.stats().switches >= 3, "switches = {}", s.stats().switches);
}

#[test]
fn equal_priority_round_robin_on_quantum() {
    let mut s = sim();
    let _ = s.fork_root("a", Priority::DEFAULT, |ctx| ctx.work(millis(200)));
    let _ = s.fork_root("b", Priority::DEFAULT, |ctx| ctx.work(millis(200)));
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    // 400ms total work over 50ms quanta: ~8 quanta, of which the final
    // quantum of each thread ends in an exit rather than an expiry.
    assert!(
        s.stats().quantum_expiries >= 6,
        "expiries = {}",
        s.stats().quantum_expiries
    );
    assert!(s.stats().switches >= 8, "switches = {}", s.stats().switches);
}

#[test]
fn lone_thread_gets_fresh_quanta_without_switch() {
    let mut s = sim();
    let _ = s.fork_root("solo", Priority::DEFAULT, |ctx| ctx.work(millis(200)));
    s.run(RunLimit::ToCompletion);
    // Quantum expires 3 times mid-run but there is nobody to rotate to.
    assert!(s.stats().quantum_expiries >= 3);
    assert_eq!(s.stats().switches, 1);
}

#[test]
fn yield_rotates_same_priority() {
    let mut s = sim();
    let m = s.monitor("order", Vec::<u8>::new());
    for id in 0..3u8 {
        let m = m.clone();
        let _ = s.fork_root(&format!("t{id}"), Priority::DEFAULT, move |ctx| {
            for _ in 0..3 {
                let mut g = ctx.enter(&m);
                g.with_mut(|v| v.push(id));
                drop(g);
                ctx.yield_now();
            }
        });
    }
    let h = s.fork_root("reader", Priority::of(3), move |ctx| {
        let g = ctx.enter(&m);
        g.with(|v| v.clone())
    });
    s.run(RunLimit::ToCompletion);
    let order = h.into_result().unwrap().unwrap();
    // With pure round-robin yielding the pattern interleaves 0,1,2,0,1,2...
    assert_eq!(order.len(), 9);
    assert_eq!(&order[0..3], &[0, 1, 2]);
}

#[test]
fn run_for_time_limit_stops_at_limit() {
    let mut s = sim();
    let _ = s.fork_root("eternal", Priority::DEFAULT, |ctx| loop {
        ctx.work(millis(10));
        ctx.sleep(millis(10));
    });
    let r = s.run(RunLimit::For(secs(2)));
    assert_eq!(r.reason, StopReason::TimeLimit);
    assert_eq!(r.elapsed, secs(2));
    assert_eq!(s.now(), pcr::SimTime::ZERO + secs(2));
}

#[test]
fn sleep_quantizes_to_granularity() {
    let mut s = sim(); // 50ms granularity
    let h = s.fork_root("sleeper", Priority::DEFAULT, |ctx| {
        ctx.sleep(millis(1));
        ctx.now()
    });
    s.run(RunLimit::ToCompletion);
    let woke = h.into_result().unwrap().unwrap();
    // Sleeping 1ms from t≈0 wakes at the 50ms tick.
    assert_eq!(woke.as_micros(), 50_000);
}

#[test]
fn sleep_precise_is_exact() {
    let mut s = sim();
    let h = s.fork_root("sleeper", Priority::DEFAULT, |ctx| {
        let before = ctx.now();
        ctx.sleep_precise(millis(7));
        ctx.now().since(before)
    });
    s.run(RunLimit::ToCompletion);
    assert_eq!(h.into_result().unwrap().unwrap(), millis(7));
}

#[test]
fn yield_but_not_to_me_favors_lower_priority() {
    // High-priority consumer yields-but-not-to-me; the only other ready
    // thread is a lower-priority producer, which must run despite strict
    // priority.
    let mut s = sim();
    let m = s.monitor("cell", 0u32);
    let m2 = m.clone();
    let h = s.fork_root("high", Priority::of(6), move |ctx| {
        ctx.work(micros(100));
        ctx.yield_but_not_to_me();
        // After the donated slice the high thread resumes; the producer
        // must have run by now.
        let g = ctx.enter(&m2);
        g.with(|v| *v)
    });
    let _ = s.fork_root("low", Priority::of(3), move |ctx| {
        let mut g = ctx.enter(&m);
        g.with_mut(|v| *v = 99);
        drop(g);
        ctx.work(millis(200));
    });
    s.run(RunLimit::ToCompletion);
    assert_eq!(h.into_result().unwrap().unwrap(), 99);
}

#[test]
fn yield_but_not_to_me_with_no_other_thread_continues() {
    let mut s = sim();
    let h = s.fork_root("solo", Priority::DEFAULT, |ctx| {
        ctx.yield_but_not_to_me();
        123u8
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    assert_eq!(h.into_result().unwrap().unwrap(), 123);
}

#[test]
fn directed_yield_runs_target() {
    let mut s = sim();
    let m = s.monitor("cell", 0u32);
    let m2 = m.clone();
    let low = s.fork_root("low", Priority::of(2), move |ctx| {
        let mut g = ctx.enter(&m);
        g.with_mut(|v| *v = 7);
    });
    let low_tid = low.tid();
    let h = s.fork_root("high", Priority::of(6), move |ctx| {
        ctx.work(micros(10));
        ctx.directed_yield(low_tid, millis(5));
        let g = ctx.enter(&m2);
        g.with(|v| *v)
    });
    s.run(RunLimit::ToCompletion);
    drop(low);
    assert_eq!(h.into_result().unwrap().unwrap(), 7);
}

#[test]
fn system_daemon_rescues_starved_thread() {
    // Stable priority inversion (§6.2): a middle-priority hog starves a
    // low-priority thread under strict priority. The SystemDaemon's
    // random donations must give the low thread some CPU anyway.
    let run = |daemon: bool| -> bool {
        let cfg = if daemon {
            SimConfig::default().with_system_daemon(SystemDaemonConfig {
                period: millis(100),
                slice: millis(5),
            })
        } else {
            SimConfig::default()
        };
        let mut s = Sim::new(cfg);
        let _ = s.fork_root("hog", Priority::of(4), |ctx| loop {
            ctx.work(millis(50));
        });
        let _ = s.fork_root("starved", Priority::of(2), |ctx| {
            ctx.work(millis(1));
        });
        s.run(RunLimit::For(secs(5)));
        let infos = s.threads();
        infos.iter().find(|t| t.name == "starved").unwrap().exited
    };
    assert!(!run(false), "without the daemon the low thread starves");
    assert!(run(true), "the daemon must donate slices to the low thread");
}

#[test]
fn set_priority_applies_immediately() {
    let mut s = sim();
    let _ = s.fork_root("self-demoting", Priority::of(6), |ctx| {
        assert_eq!(ctx.priority().get(), 6);
        ctx.set_priority(Priority::of(2));
        assert_eq!(ctx.priority().get(), 2);
        ctx.work(millis(1));
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    let infos = s.threads();
    assert_eq!(infos[0].priority.get(), 2);
}

#[test]
fn fork_priority_inherits_parent() {
    let mut s = sim();
    let _ = s.fork_root("parent", Priority::of(5), |ctx| {
        let c = ctx.fork("child", |ctx| ctx.priority().get()).unwrap();
        let p = ctx.join(c).unwrap();
        assert_eq!(p, 5);
    });
    s.run(RunLimit::ToCompletion);
}

#[test]
fn fork_generation_tracking() {
    let mut s = sim();
    let _ = s.fork_root("worker", Priority::DEFAULT, |ctx| {
        let g1 = ctx
            .fork("gen1", |ctx| {
                let g2 = ctx.fork("gen2", |_| ()).unwrap();
                ctx.join(g2).unwrap();
            })
            .unwrap();
        ctx.join(g1).unwrap();
    });
    s.run(RunLimit::ToCompletion);
    let infos = s.threads();
    assert_eq!(
        infos
            .iter()
            .find(|t| t.name == "worker")
            .unwrap()
            .generation,
        0
    );
    assert_eq!(
        infos.iter().find(|t| t.name == "gen1").unwrap().generation,
        1
    );
    assert_eq!(
        infos.iter().find(|t| t.name == "gen2").unwrap().generation,
        2
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut s = Sim::new(
            SimConfig::default()
                .with_seed(7)
                .with_system_daemon(SystemDaemonConfig::default()),
        );
        s.set_sink(Box::new(VecSink::default()));
        let m = s.monitor("m", 0u64);
        let cv = s.condition(&m, "cv", Some(millis(50)));
        for i in 0..4 {
            let m = m.clone();
            let cv = cv.clone();
            let _ = s.fork_root(
                &format!("w{i}"),
                Priority::of(3 + (i % 3) as u8),
                move |ctx| {
                    let mut rng = ctx.rng();
                    for _ in 0..20 {
                        ctx.work(micros(rng.next_below(3000)));
                        let mut g = ctx.enter(&m);
                        g.with_mut(|v| *v += 1);
                        if rng.next_below(2) == 0 {
                            g.notify(&cv);
                        } else {
                            g.wait(&cv);
                        }
                        drop(g);
                        ctx.yield_now();
                    }
                },
            );
        }
        s.run(RunLimit::For(secs(3)));
        let stats = s.stats().clone();
        (
            stats.switches,
            stats.ml_enters,
            stats.cv_waits,
            stats.cv_timeouts,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_can_diverge() {
    let run = |seed| {
        let mut s = Sim::new(
            SimConfig::default()
                .with_seed(seed)
                .with_system_daemon(SystemDaemonConfig::default()),
        );
        let _ = s.fork_root("a", Priority::of(2), |ctx| loop {
            ctx.work(millis(3));
        });
        let _ = s.fork_root("b", Priority::of(3), |ctx| loop {
            ctx.work(millis(3));
        });
        s.run(RunLimit::For(secs(2)));
        s.stats().daemon_donations
    };
    // Both runs donate; the targets differ but counts may coincide.
    assert!(run(1) > 0);
    assert!(run(2) > 0);
}

#[test]
fn switch_events_are_emitted() {
    let mut s = sim();
    s.set_sink(Box::new(VecSink::default()));
    let _ = s.fork_root("a", Priority::DEFAULT, |ctx| ctx.work(millis(120)));
    let _ = s.fork_root("b", Priority::DEFAULT, |ctx| ctx.work(millis(120)));
    s.run(RunLimit::ToCompletion);
    let stats_switches = s.stats().switches;
    assert!(stats_switches >= 4);
    // The sink cannot be downcast through the public API; the event
    // counts are cross-checked in the trace crate's tests instead.
}

#[test]
fn max_live_threads_high_water_mark() {
    let mut s = sim();
    let _ = s.fork_root("spawner", Priority::DEFAULT, |ctx| {
        let hs: Vec<_> = (0..10)
            .map(|i| {
                ctx.fork(&format!("c{i}"), |ctx| ctx.work(millis(1)))
                    .unwrap()
            })
            .collect();
        for h in hs {
            ctx.join(h).unwrap();
        }
    });
    s.run(RunLimit::ToCompletion);
    assert!(s.stats().max_live_threads >= 11);
}

#[test]
fn stats_cpu_by_priority() {
    let mut s = sim();
    let _ = s.fork_root("p2", Priority::of(2), |ctx| ctx.work(millis(30)));
    let _ = s.fork_root("p6", Priority::of(6), |ctx| ctx.work(millis(10)));
    s.run(RunLimit::ToCompletion);
    let st = s.stats();
    assert_eq!(st.cpu_by_priority[1], millis(30)); // index 1 = priority 2
    assert_eq!(st.cpu_by_priority[5], millis(10)); // index 5 = priority 6
    assert_eq!(st.total_cpu, millis(40));
}

#[test]
fn directed_yield_to_sleeping_target_is_a_noop() {
    let mut s = sim();
    let sleeper = s.fork_root("sleeper", Priority::of(3), |ctx| {
        ctx.sleep_precise(millis(100));
    });
    let target = sleeper.tid();
    let h = s.fork_root("donor", Priority::of(5), move |ctx| {
        ctx.work(millis(1));
        // Target is sleeping, not ready: the donation must not block or
        // reschedule anything.
        ctx.directed_yield(target, millis(5));
        ctx.now()
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    let done = h.into_result().unwrap().unwrap();
    assert!(done.as_micros() < 5_000, "donor stalled until {done}");
    drop(sleeper);
}

#[test]
fn yield_but_not_to_me_shield_yields_to_higher_priority_third_party() {
    // Donor (P6) YBNTMs to a low producer (P3); an unrelated P7 device
    // wakes mid-slice and must preempt the favored thread — the shield
    // only excludes the donor.
    let mut s = sim();
    let h = s.fork_root("device", Priority::of(7), |ctx| {
        ctx.sleep_precise(millis(5));
        ctx.work(millis(1));
        ctx.now()
    });
    let _ = s.fork_root("donor", Priority::of(6), |ctx| {
        ctx.work(millis(1));
        ctx.yield_but_not_to_me();
        ctx.work(millis(1));
    });
    let _ = s.fork_root("low", Priority::of(3), |ctx| {
        ctx.work(millis(30));
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    // The device ran promptly at ~6ms despite the active donation.
    let device_done = h.into_result().unwrap().unwrap();
    assert!(
        device_done.as_micros() < 8_000,
        "device delayed to {device_done}"
    );
}

#[test]
fn work_zero_is_free_and_legal() {
    let mut s = sim();
    let h = s.fork_root("t", Priority::DEFAULT, |ctx| {
        let t0 = ctx.now();
        for _ in 0..100 {
            ctx.work(pcr::SimDuration::ZERO);
        }
        ctx.now().since(t0)
    });
    s.run(RunLimit::ToCompletion);
    assert_eq!(h.into_result().unwrap().unwrap(), pcr::SimDuration::ZERO);
}

#[test]
fn set_priority_to_lower_yields_to_waiting_peer() {
    // A P6 thread demotes itself to P2 while a P4 peer is ready: the
    // peer must immediately take over, finishing first.
    let mut s = sim();
    let demoted = s.fork_root("self-demoting", Priority::of(6), |ctx| {
        ctx.work(millis(1));
        ctx.set_priority(Priority::of(2));
        ctx.work(millis(5));
        ctx.now()
    });
    let peer = s.fork_root("peer", Priority::of(4), |ctx| {
        ctx.work(millis(5));
        ctx.now()
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    let demoted_end = demoted.into_result().unwrap().unwrap();
    let peer_end = peer.into_result().unwrap().unwrap();
    assert!(
        peer_end < demoted_end,
        "peer ({peer_end}) must overtake the demoted thread ({demoted_end})"
    );
}
