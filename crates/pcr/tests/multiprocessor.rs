//! Integration tests for the multiprocessor scheduler: timers, CVs,
//! fault paths, fairness, and interactions that the in-module unit
//! tests don't cover.

use pcr::{
    micros, millis, secs, JoinError, MpSim, NotifyMode, Priority, RunLimit, SimConfig, SimTime,
    StopReason, WaitOutcome,
};

fn mp(cpus: usize) -> MpSim {
    MpSim::new(SimConfig::default(), cpus)
}

#[test]
fn sleeps_and_timers_fire_across_cpus() {
    let mut s = mp(2);
    let a = s.fork_root("a", Priority::DEFAULT, |ctx| {
        ctx.sleep_precise(millis(10));
        ctx.now()
    });
    let b = s.fork_root("b", Priority::DEFAULT, |ctx| {
        ctx.sleep_precise(millis(25));
        ctx.now()
    });
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    assert_eq!(
        a.into_result().unwrap().unwrap(),
        SimTime::from_micros(10_000)
    );
    assert_eq!(
        b.into_result().unwrap().unwrap(),
        SimTime::from_micros(25_000)
    );
}

#[test]
fn plain_sleep_quantizes_like_the_up_scheduler() {
    let mut s = mp(2);
    let h = s.fork_root("sleeper", Priority::DEFAULT, |ctx| {
        ctx.sleep(millis(30));
        ctx.now()
    });
    s.run(RunLimit::ToCompletion);
    assert_eq!(
        h.into_result().unwrap().unwrap(),
        SimTime::from_micros(50_000)
    );
}

#[test]
fn cv_timeout_fires_with_all_cpus_busy() {
    // Two hogs occupy both CPUs; a waiter's CV timeout must still fire
    // and preempt one of them (the waiter has higher priority).
    let mut s = mp(2);
    let m = s.monitor("m", ());
    let cv = s.condition(&m, "cv", Some(millis(40)));
    let _ = s.fork_root("hog1", Priority::of(3), |ctx| ctx.work(millis(500)));
    let _ = s.fork_root("hog2", Priority::of(3), |ctx| ctx.work(millis(500)));
    let h = s.fork_root("waiter", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m);
        let outcome = g.wait(&cv);
        (outcome, ctx.now())
    });
    s.run(RunLimit::ToCompletion);
    let (outcome, woke) = h.into_result().unwrap().unwrap();
    assert_eq!(outcome, WaitOutcome::TimedOut);
    assert_eq!(woke.as_micros() / 1000, 50, "woke at {woke}");
}

#[test]
fn equal_priority_threads_share_via_quantum_rotation() {
    // 3 hogs on 2 CPUs: rotation must give all three comparable CPU.
    let mut s = mp(2);
    let hs: Vec<_> = (0..3)
        .map(|i| {
            s.fork_root(&format!("h{i}"), Priority::DEFAULT, |ctx| {
                ctx.work(millis(300));
                ctx.now()
            })
        })
        .collect();
    let r = s.run(RunLimit::ToCompletion);
    assert_eq!(r.reason, StopReason::AllExited);
    let ends: Vec<u64> = hs
        .into_iter()
        .map(|h| h.into_result().unwrap().unwrap().as_micros())
        .collect();
    // Total 900ms over 2 CPUs: makespan ~450ms; with rotation all three
    // finish within one quantum of each other near the end.
    let max = *ends.iter().max().unwrap();
    let min = *ends.iter().min().unwrap();
    assert!((440_000..=470_000).contains(&max), "ends {ends:?}");
    assert!(max - min <= 110_000, "unfair rotation: {ends:?}");
    assert!(s.stats().quantum_expiries > 0);
}

#[test]
fn recursive_enter_faults_the_thread_only() {
    let mut s = mp(2);
    let m = s.monitor("m", ());
    let h = s.fork_root("recursive", Priority::DEFAULT, move |ctx| {
        let _a = ctx.enter(&m);
        // Deliberate re-entry: the runtime must fault only this thread.
        // threadlint: allow(lock-order-cycle)
        let _b = ctx.enter(&m);
    });
    let _ = s.fork_root("bystander", Priority::DEFAULT, |ctx| ctx.work(millis(5)));
    let r = s.run(RunLimit::For(secs(2)));
    assert_eq!(r.reason, StopReason::AllExited);
    match h.into_result().unwrap() {
        Err(JoinError::Panicked(msg)) => assert!(msg.contains("recursive"), "{msg}"),
        other => panic!("expected panic, got {other:?}"),
    }
}

#[test]
fn broadcast_fans_out_to_all_cpus() {
    let mut s = mp(4);
    let m = s.monitor("flag", false);
    let cv = s.condition(&m, "set", None);
    let hs: Vec<_> = (0..6)
        .map(|i| {
            let (m, cv) = (m.clone(), cv.clone());
            s.fork_root(&format!("w{i}"), Priority::DEFAULT, move |ctx| {
                let mut g = ctx.enter(&m);
                g.wait_until(&cv, |&f| f);
                drop(g); // Release before the real work.
                ctx.work(millis(10)); // Post-wake work spreads over CPUs.
                ctx.now()
            })
        })
        .collect();
    let _ = s.fork_root("setter", Priority::of(6), move |ctx| {
        ctx.sleep_precise(millis(5));
        let mut g = ctx.enter(&m);
        g.with_mut(|f| *f = true);
        g.broadcast(&cv);
    });
    let r = s.run(RunLimit::For(secs(5)));
    assert_eq!(r.reason, StopReason::AllExited);
    let ends: Vec<u64> = hs
        .into_iter()
        .map(|h| h.into_result().unwrap().unwrap().as_micros())
        .collect();
    // 6 × 10ms of post-wake work over ~4 CPUs: everything well under the
    // 60ms a uniprocessor would need.
    assert!(ends.iter().all(|&e| e < 40_000), "ends {ends:?}");
}

#[test]
fn deadlock_detected_on_mp_too() {
    let mut s = mp(2);
    let a = s.monitor("a", ());
    let b = s.monitor("b", ());
    let (a1, b1) = (a.clone(), b.clone());
    let _ = s.fork_root("t1", Priority::DEFAULT, move |ctx| {
        let _g = ctx.enter(&a1);
        ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
        let _g2 = ctx.enter(&b1); // threadlint: allow(lock-order-cycle)
    });
    let _ = s.fork_root("t2", Priority::DEFAULT, move |ctx| {
        let _g = ctx.enter(&b);
        ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
        let _g2 = ctx.enter(&a); // threadlint: allow(lock-order-cycle)
    });
    let r = s.run(RunLimit::For(secs(5)));
    assert!(r.deadlocked(), "got {:?}", r.reason);
}

#[test]
fn immediate_notify_between_same_priorities_only_conflicts_on_mp() {
    // The same program: on 1 CPU the notifier finishes its monitor
    // section before the equal-priority wakee runs (no preemption), so
    // no conflicts; on 2 CPUs the wakee starts concurrently and hits the
    // held monitor — exactly Birrell's distinction.
    let run = |cpus: usize| {
        let mut s = MpSim::new(
            SimConfig::default().with_notify_mode(NotifyMode::Immediate),
            cpus,
        );
        let m = s.monitor("m", 0u32);
        let cv = s.condition(&m, "cv", None);
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = s.fork_root("waiter", Priority::DEFAULT, move |ctx| {
            let mut g = ctx.enter(&m2);
            g.wait_until(&cv2, |&v| v >= 30);
        });
        let _ = s.fork_root("notifier", Priority::DEFAULT, move |ctx| {
            for _ in 0..30 {
                let mut g = ctx.enter(&m);
                g.with_mut(|v| *v += 1);
                g.notify(&cv);
                ctx.work(micros(100));
                drop(g);
                ctx.work(micros(100));
            }
        });
        let r = s.run(RunLimit::For(secs(10)));
        assert!(!r.deadlocked());
        s.stats().spurious_conflicts
    };
    assert_eq!(
        run(1),
        0,
        "uniprocessor equal-priority: no preemption, no conflict"
    );
    assert!(
        run(2) >= 25,
        "multiprocessor: nearly every notify conflicts"
    );
}

#[test]
fn mp_stats_accumulate_cpu_by_priority() {
    let mut s = mp(2);
    let _ = s.fork_root("p2", Priority::of(2), |ctx| ctx.work(millis(20)));
    let _ = s.fork_root("p6", Priority::of(6), |ctx| ctx.work(millis(30)));
    s.run(RunLimit::ToCompletion);
    assert_eq!(s.stats().cpu_by_priority[1], millis(20));
    assert_eq!(s.stats().cpu_by_priority[5], millis(30));
    assert_eq!(s.stats().total_cpu, millis(50));
}

#[test]
#[should_panic(expected = "at least one CPU")]
fn zero_cpus_rejected() {
    let _ = MpSim::new(SimConfig::default(), 0);
}
