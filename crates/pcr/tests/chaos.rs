//! End-to-end tests of the chaos layer: every injectable fault observed
//! through the event stream and stats, every hazard detector driven by
//! a real simulated world (one inject-and-observe and one clean run
//! each), and the determinism guarantee — same seed, same
//! [`ChaosConfig`] ⇒ identical event trace and identical hazards.

use pcr::{
    millis, secs, ChaosConfig, Event, EventKind, HazardConfig, Priority, RunLimit, Sim, SimConfig,
    SimTime, VecSink, WaitOutcome,
};

/// Runs `setup`'s world under `cfg` with a [`VecSink`] attached and
/// returns the captured events plus the final run report.
fn run_capturing(cfg: SimConfig, setup: impl FnOnce(&mut Sim)) -> (Vec<Event>, pcr::RunReport) {
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    setup(&mut sim);
    let report = sim.run(RunLimit::For(secs(10)));
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    (events, report)
}

fn has_kind(events: &[Event], pred: impl Fn(&EventKind) -> bool) -> bool {
    events.iter().any(|e| pred(&e.kind))
}

// ---------------------------------------------------------------------
// Injection mechanics
// ---------------------------------------------------------------------

#[test]
fn inactive_chaos_injects_nothing() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(10)));
    let _ = sim.fork_root("t", Priority::DEFAULT, move |ctx| {
        let h = ctx.fork("child", |_| ()).unwrap();
        ctx.join(h).unwrap();
        let mut g = ctx.enter(&m);
        let _ = g.wait(&cv);
    });
    sim.run(RunLimit::ToCompletion);
    let s = sim.stats();
    assert_eq!(s.chaos_fork_failures, 0);
    assert_eq!(s.chaos_spurious_wakeups, 0);
    assert_eq!(s.chaos_dropped_notifies, 0);
    assert_eq!(s.chaos_duplicated_notifies, 0);
    assert_eq!(s.chaos_stalls, 0);
}

#[test]
fn fork_failure_injection_is_visible() {
    let cfg = SimConfig::default().with_chaos(ChaosConfig::none().fail_forks(1.0));
    let (events, _) = run_capturing(cfg, |sim| {
        let _ = sim.fork_root("forker", Priority::DEFAULT, |ctx| {
            assert!(ctx.fork("doomed", |_| ()).is_err(), "p=1.0 must fail");
        });
    });
    assert!(has_kind(&events, |k| matches!(
        k,
        EventKind::ChaosForkFail { .. }
    )));
}

#[test]
fn fork_outage_window_has_edges() {
    // Forks fail inside [0, 20ms) and succeed after.
    let chaos = ChaosConfig::none().fork_outage(SimTime::ZERO, SimTime::from_micros(20_000));
    let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
    let h = sim.fork_root("forker", Priority::DEFAULT, |ctx| {
        let inside = ctx.fork("early", |_| ()).is_err();
        ctx.sleep(millis(30));
        let after = ctx.fork("late", |_| ()).is_ok();
        (inside, after)
    });
    sim.run(RunLimit::For(secs(1)));
    assert_eq!(h.into_result().unwrap().unwrap(), (true, true));
    assert_eq!(sim.stats().chaos_fork_failures, 1);
}

#[test]
fn dropped_notify_forces_timeout_rescue() {
    let cfg = SimConfig::default().with_chaos(ChaosConfig::none().drop_notifies(1.0));
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    let m = sim.monitor("m", false);
    let cv = sim.condition(&m, "cv", Some(millis(20)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let h = sim.fork_root("waiter", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        let mut outcomes = Vec::new();
        while !g.with(|done| *done) {
            outcomes.push(g.wait(&cv2));
        }
        outcomes
    });
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.work(millis(2));
        let mut g = ctx.enter(&m);
        g.with_mut(|done| *done = true);
        g.notify(&cv); // Dropped: the waiter's timeout must rescue it.
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert!(!report.deadlocked(), "timeout must rescue the waiter");
    let outcomes = h.into_result().unwrap().unwrap();
    assert!(
        outcomes.contains(&WaitOutcome::TimedOut),
        "outcomes: {outcomes:?}"
    );
    assert!(sim.stats().chaos_dropped_notifies >= 1);
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    assert!(has_kind(&events, |k| matches!(
        k,
        EventKind::NotifyDropped { .. }
    )));
    // The dropped notify must not masquerade as a delivered one.
    assert!(!has_kind(&events, |k| matches!(
        k,
        EventKind::Notify { woken: Some(_), .. }
    )));
}

#[test]
fn duplicated_notify_wakes_a_second_waiter() {
    let cfg = SimConfig::default().with_chaos(ChaosConfig::none().duplicate_notifies(1.0));
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", None);
    for w in 0..2 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(&format!("w{w}"), Priority::of(5), move |ctx| {
            let mut g = ctx.enter(&m);
            // Mesa discipline: the predicate makes the duplicate harmless.
            g.wait_until(&cv, |tokens| *tokens > 0);
            g.with_mut(|tokens| *tokens -= 1);
        });
    }
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        for _ in 0..2 {
            let mut g = ctx.enter(&m2);
            g.with_mut(|tokens| *tokens += 1);
            g.notify(&cv2);
            drop(g);
            ctx.work(millis(1));
        }
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert!(!report.deadlocked());
    assert!(sim.stats().chaos_duplicated_notifies >= 1);
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    assert!(has_kind(&events, |k| matches!(
        k,
        EventKind::NotifyDuplicated { .. }
    )));
}

#[test]
fn stall_freezes_the_named_thread() {
    // "victim" ticks every 1ms; stalled for [10ms, 60ms) it must miss
    // ~50 ticks relative to an unstalled run.
    let tick = |ctx: &pcr::ThreadCtx| {
        let mut n = 0u64;
        while ctx.now() < SimTime::from_micros(100_000) {
            ctx.sleep_precise(millis(1));
            n += 1;
        }
        n
    };
    let clean = {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("victim", Priority::DEFAULT, tick);
        sim.run(RunLimit::For(secs(1)));
        h.into_result().unwrap().unwrap()
    };
    let chaos = ChaosConfig::none().stall("victim", SimTime::from_micros(10_000), millis(50));
    let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
    sim.set_sink(Box::new(VecSink::default()));
    let h = sim.fork_root("victim", Priority::DEFAULT, tick);
    sim.run(RunLimit::For(secs(1)));
    let stalled = h.into_result().unwrap().unwrap();
    assert_eq!(sim.stats().chaos_stalls, 1);
    assert!(
        stalled + 40 <= clean,
        "stall removed too few ticks: clean={clean} stalled={stalled}"
    );
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    assert!(has_kind(&events, |k| matches!(
        k,
        EventKind::ChaosStall { .. }
    )));
}

#[test]
fn timer_jitter_delays_wakeups_within_bound() {
    let jitter = millis(5);
    let cfg = SimConfig::default().with_chaos(ChaosConfig::none().jitter_timers(jitter));
    let mut sim = Sim::new(cfg);
    let h = sim.fork_root("sleeper", Priority::DEFAULT, move |ctx| {
        let mut actual = Vec::new();
        for _ in 0..20 {
            let before = ctx.now();
            ctx.sleep_precise(millis(10));
            actual.push(ctx.now().since(before));
        }
        actual
    });
    sim.run(RunLimit::ToCompletion);
    let slept = h.into_result().unwrap().unwrap();
    for d in &slept {
        // Jitter only ever delays a wakeup, and by at most `jitter`.
        assert!(*d >= millis(10), "woke early: {d}");
        assert!(*d <= millis(10) + jitter, "jitter exceeded bound: {d}");
    }
    // With up to 5ms of jitter over 20 sleeps, at least one wakeup must
    // actually have been perturbed.
    assert!(
        slept.iter().any(|d| *d > millis(10)),
        "jitter never bit: {slept:?}"
    );
}

#[test]
fn spurious_wakeup_surfaces_as_spurious_outcome() {
    let chaos = ChaosConfig::none().spurious_wakeups(1.0);
    let cfg = SimConfig::default().with_chaos(chaos);
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    let m = sim.monitor("m", false);
    let cv = sim.condition(&m, "cv", None);
    let (m2, cv2) = (m.clone(), cv.clone());
    let h = sim.fork_root("waiter", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        let mut saw_spurious = false;
        while !g.with(|done| *done) {
            saw_spurious |= g.wait(&cv2) == WaitOutcome::Spurious;
        }
        saw_spurious
    });
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.work(millis(20));
        let mut g = ctx.enter(&m);
        g.with_mut(|done| *done = true);
        g.notify(&cv);
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert!(!report.deadlocked());
    assert!(
        h.into_result().unwrap().unwrap(),
        "no Spurious outcome seen"
    );
    assert!(sim.stats().chaos_spurious_wakeups >= 1);
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    assert!(has_kind(&events, |k| matches!(
        k,
        EventKind::SpuriousWakeup { .. }
    )));
}

// ---------------------------------------------------------------------
// Hazard detectors, end to end: inject-and-observe + clean runs
// ---------------------------------------------------------------------

fn detect_cfg() -> SimConfig {
    SimConfig::default().with_hazard_detection(HazardConfig::default())
}

#[test]
fn detects_wait_without_recheck() {
    // The waiter treats any wakeup as a delivered notify (no predicate
    // loop) — exactly the §5.3 mistake. A forced spurious wakeup makes
    // it proceed without the state it waited for.
    let cfg = detect_cfg().with_chaos(ChaosConfig::none().spurious_wakeups(1.0));
    let mut sim = Sim::new(cfg);
    let m = sim.monitor("m", false);
    let cv = sim.condition(&m, "cv", None);
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("sloppy", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        let _ = g.wait(&cv2); // WAIT without re-checking: the §5.3 bug.
    });
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.work(millis(20));
        let g = ctx.enter(&m);
        g.notify(&cv);
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert!(
        report.hazards.wait_without_recheck >= 1,
        "hazards: {:?}",
        report.hazards
    );
    assert!(report.hazardous());
}

#[test]
fn clean_predicate_loop_never_flags_recheck() {
    // Same chaos, but the waiter uses wait_until: every spurious wakeup
    // funnels straight back into WAIT, so the detector stays quiet.
    let cfg = detect_cfg().with_chaos(ChaosConfig::none().spurious_wakeups(1.0));
    let mut sim = Sim::new(cfg);
    let m = sim.monitor("m", false);
    let cv = sim.condition(&m, "cv", None);
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("careful", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        g.wait_until(&cv2, |done| *done);
    });
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.work(millis(20));
        let mut g = ctx.enter(&m);
        g.with_mut(|done| *done = true);
        g.notify(&cv);
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert_eq!(
        report.hazards.wait_without_recheck, 0,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn detects_naked_notify() {
    // NOTIFY fires before the waiter reaches WAIT (outside any shared
    // predicate discipline); the waiter then waits and times out — the
    // §5.3 naked-notify signature.
    let mut sim = Sim::new(detect_cfg());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(5)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("notifier", Priority::of(5), move |ctx| {
        let g = ctx.enter(&m2);
        g.notify(&cv2); // Nobody is waiting yet: the wakeup evaporates.
        drop(g);
        ctx.sleep(millis(100)); // Free the CPU so the latecomer waits
                                // inside the naked window.
    });
    let _ = sim.fork_root("latecomer", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m);
        let _ = g.wait(&cv);
    });
    let report = sim.run(RunLimit::For(secs(1)));
    assert!(
        report.hazards.naked_notifies >= 1,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn clean_ordered_notify_is_not_naked() {
    // The waiter is already waiting when the notify arrives: no hazard.
    let mut sim = Sim::new(detect_cfg());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(50)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("waiter", Priority::of(5), move |ctx| {
        let mut g = ctx.enter(&m2);
        let _ = g.wait(&cv2);
    });
    let _ = sim.fork_root("notifier", Priority::of(3), move |ctx| {
        ctx.work(millis(2));
        let g = ctx.enter(&m);
        g.notify(&cv);
    });
    let report = sim.run(RunLimit::For(secs(1)));
    assert_eq!(
        report.hazards.naked_notifies, 0,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn detects_livelock_yield_storm() {
    // §5.2's busy-wait-by-yield: a thread burning its slices on YIELD
    // without any synchronization progress.
    let mut sim = Sim::new(detect_cfg());
    let _ = sim.fork_root("spinner", Priority::DEFAULT, |ctx| {
        for _ in 0..60 {
            ctx.yield_now();
        }
    });
    let _ = sim.fork_root("peer", Priority::DEFAULT, |ctx| ctx.work(millis(5)));
    let report = sim.run(RunLimit::For(secs(1)));
    assert!(
        report.hazards.livelocks >= 1,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn clean_modest_yielding_is_not_livelock() {
    let mut sim = Sim::new(detect_cfg());
    let _ = sim.fork_root("polite", Priority::DEFAULT, |ctx| {
        for _ in 0..20 {
            ctx.yield_now();
        }
    });
    let _ = sim.fork_root("peer", Priority::DEFAULT, |ctx| ctx.work(millis(5)));
    let report = sim.run(RunLimit::For(secs(1)));
    assert_eq!(report.hazards.livelocks, 0, "hazards: {:?}", report.hazards);
}

#[test]
fn detects_spurious_conflict_storm() {
    // §6.1: under NOTIFY's Immediate mode, BROADCAST readies twelve
    // waiters while the broadcaster still holds the monitor — every
    // waiter is dispatched just to block again on the lock. (Deferred
    // reschedule, the paper's fix, hands the lock off directly and
    // cannot storm — see the clean counterpart.)
    let mut sim = Sim::new(detect_cfg().with_notify_mode(pcr::NotifyMode::Immediate));
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", None);
    for w in 0..12 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(&format!("w{w}"), Priority::of(5), move |ctx| {
            let mut g = ctx.enter(&m);
            g.wait_until(&cv, |v| *v > 0);
        });
    }
    let _ = sim.fork_root("broadcaster", Priority::of(3), move |ctx| {
        let mut g = ctx.enter(&m);
        g.with_mut(|v| *v = 1);
        g.broadcast(&cv);
        ctx.work(millis(5)); // Keep holding: every wakee conflicts.
    });
    let report = sim.run(RunLimit::For(secs(1)));
    assert!(
        report.hazards.spurious_conflict_storms >= 1,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn clean_small_broadcast_is_not_a_storm() {
    // Same Immediate mode, but only three waiters conflict — far below
    // the storm threshold.
    let mut sim = Sim::new(detect_cfg().with_notify_mode(pcr::NotifyMode::Immediate));
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", None);
    for w in 0..3 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(&format!("w{w}"), Priority::of(5), move |ctx| {
            let mut g = ctx.enter(&m);
            g.wait_until(&cv, |v| *v > 0);
        });
    }
    let _ = sim.fork_root("broadcaster", Priority::of(3), move |ctx| {
        let mut g = ctx.enter(&m);
        g.with_mut(|v| *v = 1);
        g.broadcast(&cv);
        ctx.work(millis(5));
    });
    let report = sim.run(RunLimit::For(secs(1)));
    assert_eq!(
        report.hazards.spurious_conflict_storms, 0,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn detects_starvation_via_directed_donation() {
    // §6.2's proportional-scheduling hack gone wrong: a high-priority
    // donor keeps handing its slice to a low-priority grinder
    // (shielded from preemption), so a middle-priority thread sits
    // ready far past the threshold while lower-priority code runs.
    let cfg = SimConfig::default().with_hazard_detection(HazardConfig {
        starvation_threshold: millis(100),
        ..HazardConfig::default()
    });
    let mut sim = Sim::new(cfg);
    let grinder = sim.fork_root("grinder", Priority::of(2), |ctx| ctx.work(secs(2)));
    let grinder_tid = grinder.tid();
    let _ = sim.fork_root("victim", Priority::of(4), |ctx| ctx.work(secs(1)));
    let _ = sim.fork_root("donor", Priority::of(6), move |ctx| {
        for _ in 0..8 {
            ctx.directed_yield(grinder_tid, millis(50));
        }
    });
    let report = sim.run(RunLimit::For(secs(1)));
    assert!(
        report.hazards.starvations >= 1,
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn clean_priority_scheduling_has_no_starvation() {
    let mut sim = Sim::new(detect_cfg());
    let _ = sim.fork_root("hi", Priority::of(5), |ctx| ctx.work(secs(1)));
    let _ = sim.fork_root("lo", Priority::of(3), |ctx| ctx.work(secs(1)));
    let report = sim.run(RunLimit::For(secs(3)));
    assert_eq!(
        report.hazards.starvations, 0,
        "hazards: {:?}",
        report.hazards
    );
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// A busy world that exercises every injection path and tolerates all
/// of them (timeout-guarded waits, fork errors handled, predicates
/// re-checked).
fn chaotic_world(sim: &mut Sim) {
    let m = sim.monitor("m", 0u64);
    let cv = sim.condition(&m, "cv", Some(millis(10)));
    for t in 0..4 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(
            &format!("t{t}"),
            Priority::of(3 + (t % 3) as u8),
            move |ctx| {
                let mut rng = ctx.rng();
                loop {
                    ctx.work(pcr::micros(rng.next_below(800)));
                    let mut g = ctx.enter(&m);
                    g.with_mut(|v| *v += 1);
                    g.notify(&cv);
                    let _ = g.wait(&cv);
                    drop(g);
                    if rng.next_below(4) == 0 {
                        if let Ok(h) = ctx.fork("child", |ctx| ctx.work(millis(1))) {
                            let _ = ctx.join(h);
                        }
                    }
                    ctx.sleep(millis(2));
                }
            },
        );
    }
}

fn full_chaos() -> ChaosConfig {
    ChaosConfig::none()
        .fail_forks(0.3)
        .spurious_wakeups(0.3)
        .drop_notifies(0.2)
        .duplicate_notifies(0.2)
        .jitter_timers(millis(3))
        .stall("t0", SimTime::from_micros(100_000), millis(50))
}

#[test]
fn same_seed_same_chaos_replays_identically() {
    let run = || {
        let cfg = SimConfig::default()
            .with_seed(0xD15EA5E)
            .with_chaos(full_chaos())
            .with_hazard_detection(HazardConfig::default());
        let mut sim = Sim::new(cfg);
        sim.set_sink(Box::new(VecSink::default()));
        chaotic_world(&mut sim);
        let report = sim.run(RunLimit::For(secs(2)));
        let events = sim
            .take_sink()
            .unwrap()
            .into_any()
            .downcast::<VecSink>()
            .unwrap()
            .events;
        (events, report.hazards, sim.stats().clone())
    };
    let (ev_a, hz_a, st_a) = run();
    let (ev_b, hz_b, st_b) = run();
    assert_eq!(ev_a.len(), ev_b.len(), "trace lengths diverged");
    assert_eq!(ev_a, ev_b, "event traces diverged");
    assert_eq!(hz_a, hz_b, "hazard tallies diverged");
    assert_eq!(st_a.switches, st_b.switches);
    assert_eq!(st_a.chaos_spurious_wakeups, st_b.chaos_spurious_wakeups);
    assert_eq!(st_a.chaos_dropped_notifies, st_b.chaos_dropped_notifies);
    assert_eq!(
        st_a.chaos_duplicated_notifies,
        st_b.chaos_duplicated_notifies
    );
    assert_eq!(st_a.chaos_fork_failures, st_b.chaos_fork_failures);
    // The chaos actually did things in this world.
    assert!(st_a.chaos_spurious_wakeups > 0, "stats: {st_a:?}");
    assert!(st_a.chaos_stalls > 0, "stats: {st_a:?}");
}

#[test]
fn different_seeds_diverge_under_chaos() {
    let run = |seed: u64| {
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_chaos(full_chaos());
        let mut sim = Sim::new(cfg);
        chaotic_world(&mut sim);
        sim.run(RunLimit::For(secs(2)));
        sim.stats().clone()
    };
    let a = run(1);
    let b = run(2);
    // Not a strict requirement of any single counter, but across all
    // chaos counters two seeds virtually never tie.
    assert!(
        a.switches != b.switches
            || a.chaos_spurious_wakeups != b.chaos_spurious_wakeups
            || a.chaos_dropped_notifies != b.chaos_dropped_notifies,
        "two different seeds produced identical behaviour: {a:?}"
    );
}

#[test]
fn clean_world_is_hazard_free_with_detection_on() {
    // The acceptance-criteria control: detectors on, no chaos, a
    // disciplined Mesa producer/consumer world — zero hazards of any
    // kind. The producer outranks the consumers so each notify resolves
    // before the wakee races the lock, and every wait sits in a
    // predicate loop.
    let mut sim = Sim::new(detect_cfg());
    let m = sim.monitor("tokens", 0u64);
    let cv = sim.condition(&m, "cv", None);
    for c in 0..2 {
        let (m, cv) = (m.clone(), cv.clone());
        let _ = sim.fork_root(&format!("consumer{c}"), Priority::of(4), move |ctx| {
            for _ in 0..100 {
                let mut g = ctx.enter(&m);
                g.wait_until(&cv, |tokens| *tokens > 0);
                g.with_mut(|tokens| *tokens -= 1);
            }
        });
    }
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("producer", Priority::of(5), move |ctx| {
        for _ in 0..200 {
            let mut g = ctx.enter(&m2);
            g.with_mut(|tokens| *tokens += 1);
            g.notify(&cv2);
            drop(g);
            ctx.sleep(millis(1));
        }
    });
    let report = sim.run(RunLimit::For(secs(5)));
    assert!(!report.deadlocked());
    let probe = sim.fork_root("probe", Priority::of(6), move |ctx| {
        ctx.enter(&m).with(|tokens| *tokens)
    });
    sim.run(RunLimit::ToCompletion);
    assert_eq!(probe.into_result().unwrap().unwrap(), 0, "tokens leaked");
    assert_eq!(report.hazards.total(), 0, "hazards: {:?}", report.hazards);
    assert!(!report.hazardous());
}

// ---------------------------------------------------------------------
// PCT priority perturbation
// ---------------------------------------------------------------------

/// Runs the chaotic world under `chaos` and returns the captured events,
/// the recorded fault schedule, and the final stats.
fn run_pct(chaos: ChaosConfig, seed: u64) -> (Vec<Event>, pcr::FaultSchedule, pcr::SimStats) {
    let cfg = SimConfig::default().with_seed(seed).with_chaos(chaos);
    let mut sim = Sim::new(cfg);
    sim.set_sink(Box::new(VecSink::default()));
    chaotic_world(&mut sim);
    sim.run(RunLimit::For(secs(2)));
    let schedule = sim.fault_schedule();
    let stats = sim.stats().clone();
    let events = sim
        .take_sink()
        .unwrap()
        .into_any()
        .downcast::<VecSink>()
        .unwrap()
        .events;
    (events, schedule, stats)
}

#[test]
fn pct_perturbs_priorities_and_records_decisions() {
    let (events, schedule, stats) = run_pct(ChaosConfig::none().pct(8, 512), 0xBEEF);
    assert!(
        stats.chaos_priority_changes > 0,
        "no PCT change landed inside the run: {stats:?}"
    );
    assert!(
        has_kind(&events, |k| matches!(k, EventKind::SetPriority { .. })),
        "PCT changes must surface as SetPriority events"
    );
    let pct_decisions = schedule
        .decisions
        .iter()
        .filter(|d| d.kind == pcr::FaultSiteKind::PriorityChange)
        .count() as u64;
    assert_eq!(pct_decisions, stats.chaos_priority_changes);
    // Every recorded parameter is a legal priority level.
    for d in &schedule.decisions {
        if d.kind == pcr::FaultSiteKind::PriorityChange {
            assert!((1..=7).contains(&d.param_us), "level {}", d.param_us);
        }
    }
}

#[test]
fn pct_composes_with_chaos_and_replays_byte_identically() {
    let chaos = full_chaos().pct(6, 1024);
    let (ev_a, sched, st_a) = run_pct(chaos, 0xD15EA5E);
    assert!(st_a.chaos_priority_changes > 0, "stats: {st_a:?}");
    // Scripted replay: no probabilities, no RNG — identical trace.
    let (ev_b, sched_b, st_b) = run_pct(ChaosConfig::none().scripted(sched.clone()), 0xD15EA5E);
    assert_eq!(ev_a, ev_b, "scripted PCT replay diverged");
    assert_eq!(sched, sched_b, "replayed schedule is not a fixed point");
    assert_eq!(st_a.chaos_priority_changes, st_b.chaos_priority_changes);
}

#[test]
fn pct_with_zero_changes_matches_a_clean_run() {
    let (ev_none, _, _) = run_pct(ChaosConfig::none(), 7);
    let (ev_zero, sched, stats) = run_pct(ChaosConfig::none().pct(0, 1024), 7);
    assert_eq!(ev_none, ev_zero, "an empty PCT config must be inert");
    assert!(sched.is_empty());
    assert_eq!(stats.chaos_priority_changes, 0);
}
