//! A simulated weakly-ordered shared memory (§5.5).
//!
//! The paper warns that code that was correct on the strongly-ordered
//! Xerox D-machines breaks on "modern multiprocessors with weakly ordered
//! memory": a thread that fills in a record and then publishes a pointer
//! to it can expose the pointer before the fields, unless a memory
//! barrier (or a monitor, whose implementation contains the barriers)
//! orders the stores.
//!
//! The simulator executes one thread at a time, so real reorderings can
//! never be observed; this module reintroduces them as a model. Each
//! thread's stores go into a private store buffer and become visible to
//! other threads only after a per-store, pseudo-random *visibility delay*
//! — an abstraction of an aggressively reordering memory system (stores
//! may become visible out of program order, as on Alpha or SPARC RMO).
//! [`WeakMem::fence`] flushes the calling thread's buffer, modelling a
//! store barrier. A thread always sees its own stores (store forwarding).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::ThreadCtx;
use crate::rng::SplitMix64;
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// A memory location index.
pub type Addr = usize;

struct BufferedStore {
    addr: Addr,
    value: u64,
    visible_at: SimTime,
}

struct Inner {
    mem: HashMap<Addr, u64>,
    buffers: HashMap<ThreadId, Vec<BufferedStore>>,
    rng: SplitMix64,
    max_delay: SimDuration,
}

impl Inner {
    /// Makes every buffered store that has reached its visibility time
    /// globally visible.
    fn drain_visible(&mut self, now: SimTime) {
        for buf in self.buffers.values_mut() {
            let mut i = 0;
            while i < buf.len() {
                if buf[i].visible_at <= now {
                    let s = buf.remove(i);
                    self.mem.insert(s.addr, s.value);
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// A weakly-ordered shared memory shared between simulated threads.
///
/// Cloning shares the same memory.
#[derive(Clone)]
pub struct WeakMem {
    inner: Arc<Mutex<Inner>>,
}

impl WeakMem {
    /// Creates a memory whose stores take up to `max_delay` of virtual
    /// time to become visible to other threads, in pseudo-random order.
    pub fn new(seed: u64, max_delay: SimDuration) -> Self {
        WeakMem {
            inner: Arc::new(Mutex::new(Inner {
                mem: HashMap::new(),
                buffers: HashMap::new(),
                rng: SplitMix64::new(seed),
                max_delay,
            })),
        }
    }

    /// Stores `value` at `addr`. Other threads observe it only after its
    /// visibility delay elapses (or after the storing thread fences).
    pub fn store(&self, ctx: &ThreadCtx, addr: Addr, value: u64) {
        let mut inner = self.inner.lock();
        let bound = inner.max_delay.as_micros().max(1) + 1;
        let jitter = inner.rng.next_below(bound);
        let visible_at = ctx.now() + SimDuration::from_micros(jitter);
        inner
            .buffers
            .entry(ctx.tid())
            .or_default()
            .push(BufferedStore {
                addr,
                value,
                visible_at,
            });
    }

    /// Loads `addr` as seen by the calling thread: its own latest
    /// buffered store wins (store forwarding); otherwise the globally
    /// visible value (0 if never written).
    pub fn load(&self, ctx: &ThreadCtx, addr: Addr) -> u64 {
        let now = ctx.now();
        let mut inner = self.inner.lock();
        inner.drain_visible(now);
        if let Some(buf) = inner.buffers.get(&ctx.tid()) {
            if let Some(s) = buf.iter().rev().find(|s| s.addr == addr) {
                return s.value;
            }
        }
        inner.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Store barrier: every store the calling thread has issued becomes
    /// globally visible now, in order.
    pub fn fence(&self, ctx: &ThreadCtx) {
        let mut inner = self.inner.lock();
        if let Some(buf) = inner.buffers.remove(&ctx.tid()) {
            for s in buf {
                inner.mem.insert(s.addr, s.value);
            }
        }
    }

    /// Number of stores still buffered (all threads). Useful in tests.
    pub fn buffered(&self) -> usize {
        self.inner.lock().buffers.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{millis, secs, Priority, RunLimit, Sim, SimConfig};

    fn run_publication(fenced: bool) -> u64 {
        // Writer fills fields 1..=3 then publishes pointer at addr 0.
        // Reader polls addr 0 and, once set, counts unfilled fields.
        let mut sim = Sim::new(SimConfig::default().with_seed(99));
        let mem = WeakMem::new(1234, millis(5));
        let (wm, rm) = (mem.clone(), mem);
        let _ = sim.fork_root("writer", Priority::of(4), move |ctx| {
            ctx.work(millis(1));
            for field in 1..=3 {
                wm.store(ctx, field, 42);
            }
            if fenced {
                wm.fence(ctx);
            }
            wm.store(ctx, 0, 1); // Publish.
            if fenced {
                wm.fence(ctx);
            }
            // Keep yielding so the reader interleaves at fine grain.
            for _ in 0..400 {
                ctx.work(crate::micros(50));
                ctx.yield_now();
            }
        });
        let h = sim.fork_root("reader", Priority::of(4), move |ctx| {
            let mut torn = 0u64;
            for _ in 0..400 {
                ctx.work(crate::micros(50));
                ctx.yield_now();
                if rm.load(ctx, 0) == 1 {
                    for field in 1..=3 {
                        if rm.load(ctx, field) != 42 {
                            torn += 1;
                        }
                    }
                    break;
                }
            }
            torn
        });
        let mut torn = None;
        let mut moved = Some(h);
        // Run and join from a root coordinator-free setup: just run to
        // completion and read the slot.
        let report = sim.run(RunLimit::For(secs(5)));
        assert!(!report.deadlocked());
        if let Some(h) = moved.take() {
            torn = Some(h.take_result().expect("reader panicked"));
        }
        torn.unwrap()
    }

    #[test]
    fn unfenced_publication_can_tear() {
        // With pseudo-random visibility delays the pointer can become
        // visible before the fields. Seeds are fixed, so this is
        // deterministic: assert we actually observe the §5.5 bug.
        assert!(run_publication(false) > 0, "expected a torn read");
    }

    #[test]
    fn fenced_publication_never_tears() {
        assert_eq!(run_publication(true), 0);
    }

    #[test]
    fn store_forwarding_sees_own_writes() {
        let mut sim = Sim::new(SimConfig::default());
        let mem = WeakMem::new(7, millis(50));
        let h = sim.fork_root("self", Priority::DEFAULT, move |ctx| {
            mem.store(ctx, 5, 77);
            mem.load(ctx, 5)
        });
        sim.run(RunLimit::ToCompletion);
        assert_eq!(h.take_result().unwrap(), 77);
    }
}
