//! Virtual time for the simulated runtime.
//!
//! The simulator measures time in integer microseconds, matching the
//! microsecond-resolution event traces the paper's authors gathered from
//! their instrumented PCR. [`SimTime`] is an instant on the virtual clock
//! (microseconds since simulation start); [`SimDuration`] is a span.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in microseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any practical simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the virtual clock never
    /// runs backwards, so this indicates a simulator bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Returns the span from `earlier` to `self`, or zero if `earlier`
    /// is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds this time up to the next multiple of `granularity`.
    ///
    /// PCR's condition-variable timeouts and sleeps fire only on scheduler
    /// ticks; this models that quantization. A zero granularity leaves the
    /// time unchanged.
    pub fn round_up_to(self, granularity: SimDuration) -> SimTime {
        if granularity.0 == 0 {
            return self;
        }
        let g = granularity.0;
        let rounded = self.0.div_ceil(g).saturating_mul(g);
        SimTime(rounded)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

/// Convenience constructor: microseconds.
pub const fn micros(us: u64) -> SimDuration {
    SimDuration::from_micros(us)
}

/// Convenience constructor: milliseconds.
pub const fn millis(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// Convenience constructor: seconds.
pub const fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        write!(f, "{s}.{us:06}s")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(secs(1), millis(1_000));
        assert_eq!(millis(1), micros(1_000));
        assert_eq!(secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + millis(50);
        assert_eq!(t.as_micros(), 50_000);
        assert_eq!(t - SimTime::ZERO, millis(50));
        assert_eq!((t + millis(25)).since(t), millis(25));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), micros(10));
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_backwards_time() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        let _ = early.since(late);
    }

    #[test]
    fn round_up_to_granularity() {
        let g = millis(50);
        assert_eq!(SimTime::from_micros(1).round_up_to(g).as_micros(), 50_000);
        assert_eq!(
            SimTime::from_micros(50_000).round_up_to(g).as_micros(),
            50_000
        );
        assert_eq!(
            SimTime::from_micros(50_001).round_up_to(g).as_micros(),
            100_000
        );
        // Zero granularity is the identity.
        assert_eq!(
            SimTime::from_micros(123).round_up_to(SimDuration::ZERO),
            SimTime::from_micros(123)
        );
    }

    #[test]
    fn duration_min_and_saturating() {
        assert_eq!(millis(3).min(millis(5)), millis(3));
        assert_eq!(millis(5).saturating_sub(millis(7)), SimDuration::ZERO);
        assert_eq!(millis(7).checked_sub(millis(5)), Some(millis(2)));
        assert_eq!(millis(5).checked_sub(millis(7)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(secs(3).to_string(), "3s");
        assert_eq!(millis(50).to_string(), "50ms");
        assert_eq!(micros(7).to_string(), "7us");
        assert_eq!(micros(1_500).to_string(), "1500us");
        assert_eq!((SimTime::ZERO + micros(1_250_000)).to_string(), "1.250000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [millis(1), millis(2), millis(3)].into_iter().sum();
        assert_eq!(total, millis(6));
    }
}
