//! The scheduler: strict priorities, round-robin timeslicing, preemption,
//! yields and slice donation, monitors, and condition variables.
//!
//! [`Sim`] owns every piece of scheduling state and advances the virtual
//! clock. Simulated threads interact with it through the rendezvous
//! protocol in [`crate::rendezvous`]; exactly one simulated thread is ever
//! unparked, so the whole simulation is single-threaded in effect and
//! deterministic for a given configuration and seed.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::arena::{NodeArena, QList};
use crate::chaos::{FaultDecision, FaultSchedule, FaultSiteKind};
use crate::condition::Condition;
use crate::config::{ForkPolicy, NotifyMode, SimConfig};
use crate::ctx::{wrap_body, ThreadCtx};
use crate::error::{BlockedThread, DeadlockReport, RunReport, StopReason};
use crate::event::{CondId, Event, EventKind, EventMask, TraceSink, WaitOutcome, YieldKind};
use crate::hazard::HazardMonitor;
use crate::monitor::{Monitor, MonitorId};
use crate::rendezvous::{reply_channel, BodyFn, ForkSpec, Reply, Request, ThreadChannels};
use crate::rng::SplitMix64;
use crate::thread::{JoinHandle, Priority, ResultSlot, ThreadId, ThreadInfo, ThreadView};
use crate::time::{micros, millis, SimDuration, SimTime};
use crate::timer::{TimerKind, TimerWheel};

pub mod policy;

use policy::{PolicyCtx, Scheduler};

/// Salt folded into the seed for the dedicated chaos RNG stream, so
/// enabling injection leaves the scheduler's own random decisions (e.g.
/// SystemDaemon donation targets) untouched.
const CHAOS_SEED_SALT: u64 = 0xC4A0_5EED_1B5A_93D7;

/// Wakeup-to-run scheduler-latency profile, per priority level.
///
/// Every time the scheduler switches to a thread it records how long that
/// thread sat in the ready queue (§6.2's preemption concerns, §6.3's
/// quantum tuning): one sample per emitted [`EventKind::Switch`], bucketed
/// into a log₂-microsecond histogram. Maintained inside [`SimStats`], so a
/// measurement window is the elementwise delta of two snapshots
/// ([`SchedLatency::window_since`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedLatency {
    /// Dispatches observed at each priority level (index 0 = priority 1).
    pub samples: [u64; Priority::LEVELS],
    /// Summed ready-queue wait per priority level.
    pub total_wait: [SimDuration; Priority::LEVELS],
    /// Longest single ready-queue wait per priority level.
    pub max_wait: [SimDuration; Priority::LEVELS],
    /// Histogram counts: `buckets[p][b]` is the number of dispatches at
    /// priority index `p` whose wait fell in bucket `b`. Bucket 0 is a
    /// zero-microsecond wait; bucket `b > 0` covers `[2^(b-1), 2^b)`
    /// microseconds, with the last bucket open-ended.
    pub buckets: [[u64; SchedLatency::BUCKETS]; Priority::LEVELS],
}

impl SchedLatency {
    /// Number of histogram buckets per priority level.
    pub const BUCKETS: usize = 20;

    /// The bucket index a wait of `d` falls into.
    pub fn bucket_of(d: SimDuration) -> usize {
        let us = d.as_micros();
        if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize + 1).min(Self::BUCKETS - 1)
        }
    }

    /// Lower bound (inclusive), in microseconds, of bucket `b`.
    pub fn bucket_floor_us(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one dispatch of a thread at `prio` that waited `d`.
    pub fn record(&mut self, prio: Priority, d: SimDuration) {
        let p = prio.index();
        self.samples[p] += 1;
        self.total_wait[p] += d;
        if d > self.max_wait[p] {
            self.max_wait[p] = d;
        }
        self.buckets[p][Self::bucket_of(d)] += 1;
    }

    /// Total dispatches across every priority level.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Mean wait at priority index `p`, if any sample exists.
    pub fn mean_wait(&self, p: usize) -> Option<SimDuration> {
        self.total_wait[p]
            .as_micros()
            .checked_div(self.samples[p])
            .map(SimDuration::from_micros)
    }

    /// The elementwise delta of `self` over an earlier snapshot `start`,
    /// giving the profile for the window between them. `max_wait` is not
    /// windowable from counters alone, so the end-of-run maximum is kept
    /// (an upper bound for the window).
    pub fn window_since(&self, start: &SchedLatency) -> SchedLatency {
        let mut out = self.clone();
        for p in 0..Priority::LEVELS {
            out.samples[p] -= start.samples[p];
            out.total_wait[p] -= start.total_wait[p];
            for b in 0..Self::BUCKETS {
                out.buckets[p][b] -= start.buckets[p][b];
            }
        }
        out
    }
}

/// Aggregate counters maintained by the runtime, mirroring the metrics in
/// the paper's Tables 1–3.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Threads created (Table 1: forks/sec).
    pub forks: u64,
    /// Threads exited.
    pub exits: u64,
    /// Threads that exited by panic.
    pub panics: u64,
    /// Thread switches (Table 1: thread switches/sec).
    pub switches: u64,
    /// Timeslice expirations.
    pub quantum_expiries: u64,
    /// Monitor entries (Table 2: ML-enters/sec).
    pub ml_enters: u64,
    /// Contended monitor entries (paper §3: 0.01–0.1 % in Cedar, up to
    /// 0.4 % in GVX).
    pub ml_contended: u64,
    /// CV waits begun (Table 2: waits/sec).
    pub cv_waits: u64,
    /// CV waits that ended by timeout (Table 2: % timeouts).
    pub cv_timeouts: u64,
    /// NOTIFY calls.
    pub cv_notifies: u64,
    /// BROADCAST calls.
    pub cv_broadcasts: u64,
    /// Spurious lock conflicts (§6.1): a notified thread dispatched only
    /// to block on the still-held monitor.
    pub spurious_conflicts: u64,
    /// Yield primitives invoked (all kinds).
    pub yields: u64,
    /// SystemDaemon donations performed.
    pub daemon_donations: u64,
    /// FORKs that blocked for resources (§5.4).
    pub fork_blocks: u64,
    /// FORKs that failed with an error (§5.4).
    pub fork_failures: u64,
    /// Stalls behind a preempted metalock holder (§6.2, donation off).
    pub metalock_stalls: u64,
    /// FORKs failed by chaos injection (§5.4).
    pub chaos_fork_failures: u64,
    /// Spurious CV wakeups injected by chaos (§5.3).
    pub chaos_spurious_wakeups: u64,
    /// NOTIFYs silently dropped by chaos (§5.3).
    pub chaos_dropped_notifies: u64,
    /// NOTIFYs that chaos made wake a second waiter (§5.3).
    pub chaos_duplicated_notifies: u64,
    /// Thread stalls applied by chaos (§5.2, §6.2).
    pub chaos_stalls: u64,
    /// PCT-style priority changes applied by chaos at dispatch points
    /// (§6.2's priorities as a fuzz dimension).
    pub chaos_priority_changes: u64,
    /// High-water mark of live threads (paper: never exceeded 41 in the
    /// benchmarks).
    pub max_live_threads: usize,
    /// Distinct monitors entered (Table 3: # MLs).
    pub distinct_monitors: HashSet<u32>,
    /// Distinct CVs waited on (Table 3: # CVs).
    pub distinct_conditions: HashSet<u32>,
    /// Virtual CPU consumed at each priority level (§3's per-priority
    /// execution-time profile).
    pub cpu_by_priority: [SimDuration; Priority::LEVELS],
    /// Total virtual CPU consumed by threads.
    pub total_cpu: SimDuration,
    /// Wakeup-to-run latency profile, one sample per thread switch.
    pub sched_latency: SchedLatency,
}

impl SimStats {
    /// Fraction of CV waits that timed out.
    pub fn timeout_fraction(&self) -> f64 {
        if self.cv_waits == 0 {
            0.0
        } else {
            self.cv_timeouts as f64 / self.cv_waits as f64
        }
    }

    /// Fraction of monitor entries that were contended.
    pub fn contention_fraction(&self) -> f64 {
        if self.ml_enters == 0 {
            0.0
        } else {
            self.ml_contended as f64 / self.ml_enters as f64
        }
    }

    /// Total primitive-event volume: the sum of the monotonic
    /// per-primitive counters (forks, exits, switches, quantum expiries,
    /// monitor enters, CV waits/notifies/broadcasts, yields, donations).
    /// The perf harness divides the delta of this over a run by wall-clock
    /// time to report simulated events per second.
    pub fn event_volume(&self) -> u64 {
        self.forks
            + self.exits
            + self.switches
            + self.quantum_expiries
            + self.ml_enters
            + self.cv_waits
            + self.cv_notifies
            + self.cv_broadcasts
            + self.yields
            + self.daemon_donations
    }
}

/// How long [`Sim::run`] should keep going.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunLimit {
    /// Run for this much more virtual time.
    For(SimDuration),
    /// Run until this absolute virtual time.
    Until(SimTime),
    /// Run until every thread has exited (never returns if eternal
    /// threads exist; prefer a time limit for worlds with daemons).
    ToCompletion,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Ready,
    Running,
    MutexWait(MonitorId),
    MetaWait(MonitorId),
    CvWait(CondId),
    Sleeping,
    JoinWait(ThreadId),
    ForkWait,
    /// Removed from scheduling by chaos injection until a
    /// [`TimerKind::ChaosStallEnd`] timer fires.
    Stalled,
    Exited,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AfterDebt {
    Reply,
    BlockOnMutex(MonitorId),
}

struct Tcb {
    name: String,
    priority: Priority,
    state: TState,
    pending_reply: Option<Reply>,
    debt: SimDuration,
    after_debt: AfterDebt,
    reply_tx: mpsc::Sender<Reply>,
    /// Index of the pooled OS carrier thread running this simulated
    /// thread's body, released back to the pool on exit.
    worker: Option<u32>,
    detached: bool,
    joiner: Option<ThreadId>,
    exited: bool,
    panicked: bool,
    parent: Option<ThreadId>,
    generation: u32,
    cpu: SimDuration,
    wait_seq: u64,
    /// Monitor to (re)acquire when next dispatched, with the CV-wait
    /// outcome to report (None for a metalock-stall retry).
    acquire_on_dispatch: Option<MonitorId>,
    reacquire_outcome: Option<WaitOutcome>,
    reacquire_cv: Option<CondId>,
    /// A chaos stall that fired while the thread could not be removed
    /// from scheduling (running or blocked); applied the next time it
    /// would become ready.
    stall_pending: Option<SimDuration>,
    /// True while the thread has a live entry in a ready queue. Dequeues
    /// clear this flag instead of scanning the queue; entries whose flag
    /// (or generation) no longer matches are tombstones, dropped when
    /// they surface at the front.
    in_ready: bool,
    /// Generation of the thread's live ready entry, bumped on every
    /// enqueue so a tombstone left by an O(1) removal can never alias a
    /// later enqueue of the same thread.
    ready_gen: u32,
    /// When the thread last became ready, for the wakeup-to-run latency
    /// profile ([`SchedLatency`]).
    ready_since: SimTime,
    /// When the thread entered its current blocking state (any
    /// `*Wait`/`Sleeping` transition resets it). The wait-for graph uses
    /// this to distinguish a long-wedged waiter from normal contention.
    blocked_since: SimTime,
}

struct MonitorState {
    name: String,
    owner: Option<ThreadId>,
    queue: VecDeque<ThreadId>,
    /// Deferred-reschedule notifications awaiting the notifier's exit.
    deferred: Vec<(ThreadId, WaitOutcome, CondId)>,
    /// Thread preempted inside the metalock window, if any.
    meta: Option<ThreadId>,
    /// Threads stalled behind `meta` (metalock donation disabled).
    meta_waiters: VecDeque<ThreadId>,
}

impl MonitorState {
    fn new(name: String) -> Self {
        MonitorState {
            name,
            owner: None,
            queue: VecDeque::new(),
            deferred: Vec::new(),
            meta: None,
            meta_waiters: VecDeque::new(),
        }
    }
}

struct CvState {
    name: String,
    monitor: MonitorId,
    timeout: Option<SimDuration>,
    /// Waiters in arrival order (nodes in [`Sim::queue_arena`]), each
    /// tagged with the `wait_seq` it enqueued under. A timeout or
    /// spurious wake cancels its entry lazily (the seq no longer
    /// matches) instead of an O(n) `retain`; `live` tracks how many
    /// entries are still current.
    queue: QList,
    /// Number of live entries in `queue`.
    live: u32,
}

#[derive(Clone, Copy, Debug)]
enum DonationPlan {
    /// `YieldButNotToMe`: next pick excludes the donor.
    NotToMe { excluded: ThreadId },
    /// Directed yield: next pick is `target` with `slice` as its quantum.
    Directed {
        target: ThreadId,
        slice: SimDuration,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shield {
    /// No preemption at all during the donated slice.
    Full,
    /// The donor may not preempt the favored thread.
    FromDonor(ThreadId),
}

/// Allocation and reuse counters for the sim's pooled resources, for
/// verifying that the fork/switch/timer hot paths stop allocating once
/// the pools reach their high-water marks. Snapshot-and-subtract over a
/// measurement window with [`AllocCounters::since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Timer-wheel slab nodes newly allocated.
    pub timer_node_allocs: u64,
    /// Timer arms served from the wheel's free list.
    pub timer_node_reuses: u64,
    /// Ready/CV queue nodes newly allocated.
    pub queue_node_allocs: u64,
    /// Queue pushes served from the arena's free list.
    pub queue_node_reuses: u64,
    /// OS carrier threads spawned for simulated forks.
    pub os_thread_spawns: u64,
    /// Simulated forks served by an idle pooled carrier.
    pub os_thread_reuses: u64,
}

impl AllocCounters {
    /// Elementwise difference from an earlier snapshot.
    pub fn since(self, earlier: AllocCounters) -> AllocCounters {
        AllocCounters {
            timer_node_allocs: self.timer_node_allocs - earlier.timer_node_allocs,
            timer_node_reuses: self.timer_node_reuses - earlier.timer_node_reuses,
            queue_node_allocs: self.queue_node_allocs - earlier.queue_node_allocs,
            queue_node_reuses: self.queue_node_reuses - earlier.queue_node_reuses,
            os_thread_spawns: self.os_thread_spawns - earlier.os_thread_spawns,
            os_thread_reuses: self.os_thread_reuses - earlier.os_thread_reuses,
        }
    }
}

/// One simulated thread's body plus its rendezvous endpoints, handed to
/// a pooled carrier thread. The carrier waits for the first dispatch
/// (`Reply::Ok`) before running the body, exactly as a dedicated spawn
/// did; anything else means the sim is tearing down before the thread
/// ever ran.
struct Assignment {
    body: BodyFn,
    ctx: ThreadCtx,
}

struct PoolWorker {
    /// `None` once shutdown has disconnected the carrier's queue.
    assign_tx: Option<mpsc::Sender<Assignment>>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// The carrier-thread pool. A carrier loops over assignments; the body
/// wrapper ([`crate::ctx::wrap_body`]) catches every unwind — including
/// the shutdown signal — so a finished or torn-down body always returns
/// control to the loop. Exited threads release their carrier index
/// without joining: a successor assignment just queues on the carrier's
/// channel until it loops back.
struct WorkerPool {
    workers: Vec<PoolWorker>,
    /// LIFO free list of carrier indices, so the hottest carrier (most
    /// recently exited, stack still warm) is reused first.
    free: Vec<u32>,
    spawns: u64,
    reuses: u64,
}

impl WorkerPool {
    fn new() -> WorkerPool {
        WorkerPool {
            workers: Vec::new(),
            free: Vec::new(),
            spawns: 0,
            reuses: 0,
        }
    }

    /// Hands `assignment` to an idle carrier, spawning one only when the
    /// pool has no free carrier. Returns the carrier index.
    fn assign(&mut self, assignment: Assignment) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.reuses += 1;
            self.workers[idx as usize]
                .assign_tx
                .as_ref()
                .expect("assign after pool shutdown")
                .send(assignment)
                .expect("pooled carrier thread died");
            return idx;
        }
        let idx = self.workers.len() as u32;
        let (assign_tx, assign_rx) = mpsc::channel::<Assignment>();
        let join = std::thread::Builder::new()
            .name(format!("sim-worker-{idx}"))
            .stack_size(128 * 1024)
            .spawn(move || {
                while let Ok(a) = assign_rx.recv() {
                    if let Ok(Reply::Ok) = a.ctx.channels.reply_rx.recv() {
                        (a.body)(&a.ctx);
                    }
                }
            })
            .expect("failed to spawn carrier thread for simulated thread");
        self.spawns += 1;
        self.workers.push(PoolWorker {
            assign_tx: Some(assign_tx),
            join: Some(join),
        });
        self.workers[idx as usize]
            .assign_tx
            .as_ref()
            .expect("just installed")
            .send(assignment)
            .expect("pooled carrier thread died");
        idx
    }

    /// Returns a carrier to the free list. The carrier may still be
    /// unwinding out of its previous body; that's fine, its next
    /// assignment waits on the channel.
    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    /// Disconnects every carrier's queue and joins them. Callers must
    /// already have unblocked any carrier still inside a body (the sim
    /// sends `Reply::Shutdown` to all live threads first).
    fn shutdown(&mut self) {
        for w in &mut self.workers {
            w.assign_tx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.join.take() {
                let _ = h.join();
            }
        }
    }
}

/// The simulated runtime.
///
/// Build one with [`Sim::new`], create monitors/conditions/root threads,
/// then call [`Sim::run`]. Dropping the `Sim` tears every simulated
/// thread down cleanly.
pub struct Sim {
    cfg: SimConfig,
    clock: SimTime,
    clock_mirror: Arc<AtomicU64>,
    rng: SplitMix64,
    threads: Vec<Tcb>,
    /// The installed scheduling policy: owns the ready structure and
    /// makes every dispatch decision ([`policy::Scheduler`]). The
    /// default [`policy::RoundRobin`] is the paper's scheduler,
    /// byte-identical to the pre-trait dispatcher.
    policy: Box<dyn Scheduler>,
    /// Shared node slab for the ready queues and CV wait queues: one
    /// free list bounds total queue memory at its joint high-water mark
    /// and keeps enqueue/dequeue allocation-free at steady state. Lent
    /// to the policy through [`PolicyCtx`] on every policy call.
    queue_arena: NodeArena,
    running: Option<ThreadId>,
    last_dispatched: Option<ThreadId>,
    shield: Option<Shield>,
    donation: Option<DonationPlan>,
    timers: TimerWheel,
    /// Pool of reusable OS carrier threads: a simulated fork grabs a
    /// free carrier instead of spawning, so steady-state fork/exit does
    /// no OS thread creation or join.
    pool: WorkerPool,
    monitors: Vec<MonitorState>,
    conds: Vec<CvState>,
    req_tx: mpsc::Sender<(ThreadId, Request)>,
    req_rx: mpsc::Receiver<(ThreadId, Request)>,
    sink: Option<Box<dyn TraceSink>>,
    /// Cached [`TraceSink::subscriptions`] of `sink` (EMPTY when none):
    /// [`Sim::emit`] consults the masks before constructing an event, so
    /// an un-instrumented run pays only for its counters.
    sink_mask: EventMask,
    /// Cached subscription mask of `hazards` (EMPTY when none).
    hazard_mask: EventMask,
    stats: SimStats,
    pending_forks: VecDeque<(ThreadId, ForkSpec)>,
    live_threads: usize,
    /// Dedicated RNG stream for fault injection (seed ⊕ salt), so chaos
    /// draws never perturb `rng`.
    chaos_rng: SplitMix64,
    /// Per-kind chaos decision-point counters (indexed by
    /// [`FaultSiteKind::index`]), ticked at every decision point whether
    /// or not a fault is injected, so `(kind, site)` names one decision.
    chaos_sites: [u64; 6],
    /// Chronological record of every positive injection decision.
    chaos_trace: Vec<FaultDecision>,
    /// Scripted replay cursors, per kind sorted by site, when
    /// [`ChaosConfig::script`] is set. Consulted instead of the RNG.
    chaos_script: Option<[VecDeque<(u64, u64)>; 6]>,
    /// Pre-drawn PCT priority-change sites (dispatch ordinals, sorted
    /// ascending, deduplicated), drawn once at construction when
    /// [`ChaosConfig::pct`] is set and no script is in force.
    pct_sites: VecDeque<u64>,
    /// Online hazard detector, when enabled; sees every event before the
    /// user sink.
    hazards: Option<HazardMonitor>,
}

impl Sim {
    /// Creates a runtime with the given configuration. If the
    /// configuration enables the SystemDaemon, the daemon thread is
    /// forked immediately at priority 6 (the level the paper reports both
    /// systems using for it).
    pub fn new(cfg: SimConfig) -> Sim {
        crate::install_panic_silencer();
        let (req_tx, req_rx) = mpsc::channel();
        let seed = cfg.seed;
        let daemon = cfg.system_daemon;
        let kind = cfg.policy;
        let mut sim = Sim {
            cfg,
            clock: SimTime::ZERO,
            clock_mirror: Arc::new(AtomicU64::new(0)),
            rng: SplitMix64::new(seed),
            threads: Vec::new(),
            policy: policy::make(kind, seed),
            queue_arena: NodeArena::new(),
            pool: WorkerPool::new(),
            running: None,
            last_dispatched: None,
            shield: None,
            donation: None,
            timers: TimerWheel::new(),
            monitors: Vec::new(),
            conds: Vec::new(),
            req_tx,
            req_rx,
            sink: None,
            sink_mask: EventMask::EMPTY,
            hazard_mask: EventMask::EMPTY,
            stats: SimStats::default(),
            pending_forks: VecDeque::new(),
            live_threads: 0,
            chaos_rng: SplitMix64::new(seed ^ CHAOS_SEED_SALT),
            chaos_sites: [0; 6],
            chaos_trace: Vec::new(),
            chaos_script: None,
            pct_sites: VecDeque::new(),
            hazards: None,
        };
        sim.chaos_script = sim.cfg.chaos.script.as_ref().map(|s| s.cursors());
        if sim.chaos_script.is_none() {
            if let Some(pct) = sim.cfg.chaos.pct {
                // PCT's change points: drawn up front from the chaos
                // stream so later faults never shift them, sorted so a
                // single cursor suffices at dispatch time.
                let mut sites: Vec<u64> = (0..pct.changes)
                    .map(|_| sim.chaos_rng.next_below(pct.horizon))
                    .collect();
                sites.sort_unstable();
                sites.dedup();
                sim.pct_sites = sites.into_iter().collect();
            }
        }
        if let Some(hc) = sim.cfg.hazard_detection.clone() {
            sim.hazards = Some(HazardMonitor::new(hc));
            sim.hazard_mask = HazardMonitor::subscriptions();
        }
        for (i, spec) in sim.cfg.chaos.stalls.iter().enumerate() {
            sim.timers
                .schedule(spec.at, TimerKind::ChaosStallStart { spec: i as u32 });
        }
        if let Some(d) = daemon {
            let (period, slice) = (d.period, d.slice);
            let h = sim.fork_root_with(
                "SystemDaemon",
                Some(Priority::of(6)),
                true,
                move |ctx: &ThreadCtx| loop {
                    ctx.sleep_precise(period);
                    ctx.donate_random(slice);
                },
            );
            drop(h); // Detached; the handle is never joined.
        }
        sim
    }

    /// Creates a runtime with default (paper) configuration.
    pub fn with_defaults() -> Sim {
        Sim::new(SimConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runtime counters accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Allocation/reuse counters for the sim's pooled resources (timer
    /// slab, queue-node arena, carrier-thread pool). Snapshot before and
    /// after a window and subtract with [`AllocCounters::since`] to
    /// verify the hot path runs allocation-free at steady state.
    pub fn alloc_counters(&self) -> AllocCounters {
        let (timer_node_allocs, timer_node_reuses) = self.timers.alloc_stats();
        let (queue_node_allocs, queue_node_reuses) = self.queue_arena.alloc_stats();
        AllocCounters {
            timer_node_allocs,
            timer_node_reuses,
            queue_node_allocs,
            queue_node_reuses,
            os_thread_spawns: self.pool.spawns,
            os_thread_reuses: self.pool.reuses,
        }
    }

    /// Installs a trace sink; events flow to it from now on. The sink's
    /// [`TraceSink::subscriptions`] mask is read once here: only events
    /// of subscribed kinds are constructed and dispatched to it.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink_mask = sink.subscriptions();
        self.sink = Some(sink);
    }

    /// Removes and returns the trace sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink_mask = EventMask::EMPTY;
        self.sink.take()
    }

    /// The online hazard monitor, when
    /// [`SimConfig::with_hazard_detection`](crate::SimConfig::with_hazard_detection)
    /// enabled one.
    pub fn hazards(&self) -> Option<&HazardMonitor> {
        self.hazards.as_ref()
    }

    /// Removes and returns the hazard monitor (detection stops).
    pub fn take_hazards(&mut self) -> Option<HazardMonitor> {
        self.hazard_mask = EventMask::EMPTY;
        self.hazards.take()
    }

    /// Post-run summary of every thread ever created. Allocates one
    /// `Vec` plus a name per thread; prefer [`Sim::threads_iter`] when a
    /// borrowed view is enough.
    pub fn threads(&self) -> Vec<ThreadInfo> {
        self.threads_iter().map(|v| v.to_info()).collect()
    }

    /// Iterates borrowed summaries of every thread ever created, in
    /// creation order, without allocating.
    pub fn threads_iter(&self) -> impl Iterator<Item = ThreadView<'_>> + '_ {
        self.threads.iter().enumerate().map(|(i, t)| ThreadView {
            tid: ThreadId(i as u32),
            name: &t.name,
            priority: t.priority,
            cpu: t.cpu,
            exited: t.exited,
            panicked: t.panicked,
            parent: t.parent,
            generation: t.generation,
        })
    }

    /// Number of threads ever created (exited ones included).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of threads currently alive.
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// The name of every monitor, indexed by [`MonitorId::as_u32`].
    /// Exporters use this to label lock tracks and contention rows.
    pub fn monitor_names(&self) -> Vec<String> {
        self.monitors.iter().map(|m| m.name.clone()).collect()
    }

    /// For every condition variable, indexed by [`CondId::as_u32`]: its
    /// name and the monitor it belongs to.
    pub fn condition_info(&self) -> Vec<(String, MonitorId)> {
        self.conds
            .iter()
            .map(|c| (c.name.clone(), c.monitor))
            .collect()
    }

    // ---- resilience introspection & recovery ------------------------------

    /// The complete fault schedule injected so far: every positive chaos
    /// decision in chronological order, plus the stall specs in force.
    /// Feeding it to a fresh `Sim` with the same [`SimConfig`] via
    /// [`ChaosConfig::scripted`](crate::ChaosConfig::scripted) replays
    /// exactly these faults, with no RNG involved.
    pub fn fault_schedule(&self) -> FaultSchedule {
        FaultSchedule {
            decisions: self.chaos_trace.clone(),
            stalls: self.cfg.chaos.stalls.clone(),
        }
    }

    /// Every currently blocked thread, as wait-for-graph nodes. CV
    /// waiters are included (for rendering); chaos-stalled and sleeping
    /// threads are not — they have timers pending.
    pub fn blocked_threads(&self) -> Vec<crate::WaitingThread> {
        let mut out = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if t.exited {
                continue;
            }
            let tid = ThreadId(i as u32);
            let (kind, resource, blocked_on) = match t.state {
                TState::MutexWait(m) => (
                    crate::BlockKind::Monitor,
                    self.monitors[m.0 as usize].name.clone(),
                    self.monitors[m.0 as usize].owner,
                ),
                TState::MetaWait(m) => (
                    crate::BlockKind::Metalock,
                    format!("metalock of {}", self.monitors[m.0 as usize].name),
                    self.monitors[m.0 as usize].meta,
                ),
                TState::CvWait(cv) => (
                    crate::BlockKind::Condition {
                        has_timeout: self.conds[cv.0 as usize].timeout.is_some(),
                    },
                    self.conds[cv.0 as usize].name.clone(),
                    None,
                ),
                TState::JoinWait(target) => (
                    crate::BlockKind::Join,
                    self.threads[target.0 as usize].name.clone(),
                    Some(target),
                ),
                TState::ForkWait => (crate::BlockKind::Fork, "fork slot".to_string(), None),
                TState::Stalled
                | TState::Sleeping
                | TState::Ready
                | TState::Running
                | TState::Exited => continue,
            };
            out.push(crate::WaitingThread {
                tid,
                name: t.name.clone(),
                priority: t.priority,
                kind,
                resource,
                blocked_on,
                since: t.blocked_since,
            });
        }
        out
    }

    /// Snapshots the wait-for graph of the current instant: blocked
    /// threads, their edges, and any chaos-stalled roots. See
    /// [`crate::WaitForGraph`] for wedge and cycle queries.
    pub fn wait_for_graph(&self) -> crate::WaitForGraph {
        let stalled = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.exited && t.state == TState::Stalled)
            .map(|(i, t)| (ThreadId(i as u32), t.name.clone()))
            .collect();
        let runnable = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.exited && matches!(t.state, TState::Ready | TState::Stalled))
            .map(|(i, t)| crate::RunnableThread {
                tid: ThreadId(i as u32),
                name: t.name.clone(),
                priority: t.priority,
                stalled: t.state == TState::Stalled,
            })
            .collect();
        crate::WaitForGraph {
            now: self.clock,
            threads: self.blocked_threads(),
            stalled,
            runnable,
        }
    }

    /// Fails every FORK currently blocked waiting for a thread slot
    /// (§5.4 recovery: drain the queue instead of letting callers hang).
    /// Each blocked forker resumes with
    /// [`ForkError::ResourcesExhausted`](crate::ForkError::ResourcesExhausted).
    /// Returns how many forks were failed.
    pub fn fail_pending_forks(&mut self) -> usize {
        let pending: Vec<ThreadId> = self
            .pending_forks
            .drain(..)
            .map(|(forker, _spec)| forker)
            .collect();
        let n = pending.len();
        for forker in pending {
            self.stats.fork_failures += 1;
            self.emit(EventKind::ForkFailed { tid: forker });
            let f = &mut self.threads[forker.0 as usize];
            f.pending_reply = Some(Reply::ForkFailed);
            f.debt = self.cfg.primitive_cost;
            f.after_debt = AfterDebt::Reply;
            self.push_ready_back(forker);
        }
        n
    }

    /// Clears any chaos stall on `tid` — in force or pending — and puts
    /// a stalled thread back in the ready queue (§5.2 recovery: restart
    /// the unresponsive component). The orphaned `ChaosStallEnd` timer
    /// no-ops when it fires. Returns true if anything changed.
    pub fn rejuvenate(&mut self, tid: ThreadId) -> bool {
        let had_pending = self.threads[tid.0 as usize].stall_pending.take().is_some();
        let was_stalled = self.threads[tid.0 as usize].state == TState::Stalled;
        if was_stalled {
            self.push_ready_back(tid);
        }
        had_pending || was_stalled
    }

    /// Re-levels a live thread from outside (§6.2 recovery: boost a
    /// preempted lock holder so its high-priority waiter can make
    /// progress). A ready thread is re-queued at its new level; a
    /// blocked, stalled, or running thread just carries the new priority
    /// from its next scheduling point. Returns false if the thread has
    /// exited.
    pub fn set_thread_priority(&mut self, tid: ThreadId, priority: Priority) -> bool {
        let Some(t) = self.threads.get(tid.0 as usize) else {
            return false;
        };
        if t.exited {
            return false;
        }
        if self.threads[tid.0 as usize].in_ready {
            self.remove_from_ready(tid);
            self.threads[tid.0 as usize].priority = priority;
            self.policy.on_priority_changed(tid, priority);
            self.ready_enqueue(tid, false, false);
        } else {
            self.threads[tid.0 as usize].priority = priority;
            self.policy.on_priority_changed(tid, priority);
        }
        self.emit(EventKind::SetPriority { tid, priority });
        true
    }

    /// Toggles metalock cycle donation at runtime (§6.2 recovery: the
    /// remedy PCR shipped). Enabling it immediately donates the
    /// remaining window of every preempted metalock holder that has
    /// waiters stalled behind it — a stalled holder is rejuvenated
    /// first. Returns how many stuck metalocks were cleared.
    pub fn set_metalock_donation(&mut self, enabled: bool) -> usize {
        self.cfg.metalock_donation = enabled;
        if !enabled {
            return 0;
        }
        let mut cleared = 0;
        for i in 0..self.monitors.len() {
            let (holder, has_waiters) = {
                let m = &self.monitors[i];
                (m.meta, !m.meta_waiters.is_empty())
            };
            let Some(holder) = holder else { continue };
            if !has_waiters {
                continue;
            }
            match self.threads[holder.0 as usize].state {
                TState::Stalled => {
                    self.rejuvenate(holder);
                }
                TState::Ready => {}
                _ => continue,
            }
            self.donate_metalock(MonitorId(i as u32), holder);
            cleared += 1;
        }
        cleared
    }

    // ---- pre-run construction -------------------------------------------

    /// Creates a monitor before the run starts.
    pub fn monitor<T: Send + 'static>(&mut self, name: &str, data: T) -> Monitor<T> {
        let id = MonitorId(self.monitors.len() as u32);
        self.monitors.push(MonitorState::new(name.to_string()));
        Monitor::new(id, name, data)
    }

    /// Creates a condition variable on `m` before the run starts.
    pub fn condition<T: Send + 'static>(
        &mut self,
        m: &Monitor<T>,
        name: &str,
        timeout: Option<SimDuration>,
    ) -> Condition {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(CvState {
            name: name.to_string(),
            monitor: m.id(),
            timeout,
            queue: QList::new(),
            live: 0,
        });
        Condition {
            id,
            monitor: m.id(),
            name: name.to_string(),
            timeout,
        }
    }

    /// Forks a root thread (generation 0) at the given priority
    /// (`None` = default priority 4).
    pub fn fork_root<T, F>(&mut self, name: &str, priority: Priority, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        self.fork_root_with(name, Some(priority), false, f)
    }

    /// Forks a detached root thread.
    pub fn fork_root_detached<F>(&mut self, name: &str, priority: Priority, f: F) -> ThreadId
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        let h = self.fork_root_with(name, Some(priority), true, f);
        h.tid()
    }

    fn fork_root_with<T, F>(
        &mut self,
        name: &str,
        priority: Option<Priority>,
        detached: bool,
        f: F,
    ) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
        let body = wrap_body(f, Arc::clone(&slot));
        let tid = self.create_thread(
            ForkSpec {
                name: name.to_string(),
                priority,
                detached,
                body,
            },
            None,
        );
        JoinHandle { tid, slot }
    }

    // ---- thread creation --------------------------------------------------

    fn create_thread(&mut self, spec: ForkSpec, parent: Option<ThreadId>) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let priority = spec.priority.unwrap_or_else(|| {
            parent
                .map(|p| self.threads[p.0 as usize].priority)
                .unwrap_or(Priority::DEFAULT)
        });
        let generation = parent
            .map(|p| self.threads[p.0 as usize].generation + 1)
            .unwrap_or(0);
        let (reply_tx, reply_rx) = reply_channel();
        let ctx = ThreadCtx {
            tid,
            name: spec.name.clone(),
            channels: ThreadChannels {
                req_tx: self.req_tx.clone(),
                reply_rx,
            },
            clock: Arc::clone(&self.clock_mirror),
            shutting_down: std::cell::Cell::new(false),
            priority: std::cell::Cell::new(priority),
            seed: self.cfg.seed,
        };
        let worker = self.pool.assign(Assignment {
            body: spec.body,
            ctx,
        });
        self.threads.push(Tcb {
            name: spec.name,
            priority,
            state: TState::Ready,
            pending_reply: Some(Reply::Ok),
            debt: SimDuration::ZERO,
            after_debt: AfterDebt::Reply,
            reply_tx,
            worker: Some(worker),
            detached: spec.detached,
            joiner: None,
            exited: false,
            panicked: false,
            parent,
            generation,
            cpu: SimDuration::ZERO,
            wait_seq: 0,
            acquire_on_dispatch: None,
            reacquire_outcome: None,
            reacquire_cv: None,
            stall_pending: None,
            in_ready: false,
            ready_gen: 0,
            ready_since: SimTime::ZERO,
            blocked_since: SimTime::ZERO,
        });
        self.live_threads += 1;
        self.stats.max_live_threads = self.stats.max_live_threads.max(self.live_threads);
        self.stats.forks += 1;
        self.emit(EventKind::Fork {
            parent,
            child: tid,
            priority,
            generation,
        });
        self.ready_enqueue(tid, false, true);
        tid
    }

    // ---- event emission ---------------------------------------------------

    /// Routes one event to the subscribed consumers. When neither the
    /// hazard monitor nor the sink wants this kind — in particular when
    /// no instrumentation is attached at all — the event is never even
    /// constructed: the counters in [`SimStats`] are maintained by the
    /// callers, so this fast path loses nothing.
    #[inline]
    fn emit(&mut self, kind: EventKind) {
        let to_hazard = self.hazard_mask.contains(&kind);
        let to_sink = self.sink_mask.contains(&kind);
        if !to_hazard && !to_sink {
            return;
        }
        let ev = Event {
            t: self.clock,
            kind,
        };
        if to_hazard {
            if let Some(h) = &mut self.hazards {
                h.record(&ev);
            }
        }
        if to_sink {
            if let Some(sink) = &mut self.sink {
                sink.record(&ev);
            }
        }
    }

    fn set_clock(&mut self, t: SimTime) {
        debug_assert!(t >= self.clock, "clock must be monotonic");
        self.clock = t;
        self.clock_mirror.store(t.as_micros(), Ordering::Relaxed);
    }

    // ---- ready-queue helpers ----------------------------------------------

    /// Splits the borrow of `self` into the installed policy and the
    /// [`PolicyCtx`] lending it the arena and thread table — disjoint
    /// fields, so the policy can mutate its structure while reading
    /// thread state.
    fn policy_split(&mut self) -> (&mut dyn Scheduler, PolicyCtx<'_>) {
        let Sim {
            policy,
            queue_arena,
            threads,
            ..
        } = self;
        (
            policy.as_mut(),
            PolicyCtx {
                arena: queue_arena,
                threads,
            },
        )
    }

    /// Hands a runnable `tid` to the policy, maintaining the simulator's
    /// own bookkeeping (live flag, tombstone generation, latency stamp).
    /// `wakeup` is true when the thread was blocked rather than
    /// preempted or yielding.
    fn ready_enqueue(&mut self, tid: ThreadId, front: bool, wakeup: bool) {
        let now = self.clock;
        let t = &mut self.threads[tid.0 as usize];
        debug_assert!(!t.in_ready, "thread {tid:?} enqueued while already ready");
        t.in_ready = true;
        t.ready_gen = t.ready_gen.wrapping_add(1);
        t.ready_since = now;
        let (policy, mut ctx) = self.policy_split();
        policy.on_ready(&mut ctx, tid, front, wakeup);
    }

    fn push_ready_back(&mut self, tid: ThreadId) {
        if self.apply_pending_stall(tid) {
            return;
        }
        let t = &mut self.threads[tid.0 as usize];
        let wakeup = t.state != TState::Running;
        t.state = TState::Ready;
        self.ready_enqueue(tid, false, wakeup);
    }

    fn push_ready_front(&mut self, tid: ThreadId) {
        if self.apply_pending_stall(tid) {
            return;
        }
        let t = &mut self.threads[tid.0 as usize];
        let wakeup = t.state != TState::Running;
        t.state = TState::Ready;
        self.ready_enqueue(tid, true, wakeup);
    }

    // ---- chaos injection --------------------------------------------------

    /// Consumes a deferred chaos stall at the moment the thread would
    /// have become ready. Returns true if the thread was stalled instead.
    fn apply_pending_stall(&mut self, tid: ThreadId) -> bool {
        let Some(d) = self.threads[tid.0 as usize].stall_pending.take() else {
            return false;
        };
        self.stall_thread(tid, d);
        true
    }

    /// Takes `tid` (not currently in any queue) out of scheduling for `d`.
    fn stall_thread(&mut self, tid: ThreadId, d: SimDuration) {
        let until = self.clock + d;
        self.threads[tid.0 as usize].state = TState::Stalled;
        self.stats.chaos_stalls += 1;
        self.emit(EventKind::ChaosStall { tid, until });
        self.timers.schedule(until, TimerKind::ChaosStallEnd(tid));
    }

    /// Resolves one chaos decision point of `kind`: ticks the per-kind
    /// site counter, then either consults the replay script (injecting
    /// iff it lists this exact site) or defers to `draw`, which may
    /// consume chaos RNG. Every positive decision — drawn or scripted —
    /// is appended to the chronological fault trace, so
    /// [`Sim::fault_schedule`] always reflects what actually happened.
    fn chaos_decision(
        &mut self,
        kind: FaultSiteKind,
        draw: impl FnOnce(&mut Self, u64) -> Option<u64>,
    ) -> Option<u64> {
        let idx = kind.index();
        let site = self.chaos_sites[idx];
        self.chaos_sites[idx] += 1;
        let param = if let Some(cursors) = &mut self.chaos_script {
            let q = &mut cursors[idx];
            while q.front().is_some_and(|&(s, _)| s < site) {
                q.pop_front();
            }
            if q.front().is_some_and(|&(s, _)| s == site) {
                Some(q.pop_front().expect("peeked entry vanished").1)
            } else {
                None
            }
        } else {
            draw(self, site)
        };
        let param = param?;
        self.chaos_trace.push(FaultDecision {
            kind,
            site,
            param_us: param,
        });
        Some(param)
    }

    /// One seeded decision: fail this FORK? (§5.4 injection.)
    fn chaos_fork_should_fail(&mut self) -> bool {
        self.chaos_decision(FaultSiteKind::ForkFail, |s, _| {
            if let Some((from, until)) = s.cfg.chaos.fork_outage {
                if s.clock >= from && s.clock < until {
                    return Some(0);
                }
            }
            let p = s.cfg.chaos.fork_fail_prob;
            (p > 0.0 && s.chaos_rng.next_f64() < p).then_some(0)
        })
        .is_some()
    }

    /// Extra seeded delay applied to a timer deadline (§6.3 injection).
    fn chaos_timer_jitter(&mut self) -> SimDuration {
        let jitter = self.chaos_decision(FaultSiteKind::TimerJitter, |s, _| {
            let max = s.cfg.chaos.timer_jitter;
            if max.is_zero() {
                return None;
            }
            // A zero draw is indistinguishable from no jitter, so it is
            // not recorded as a decision (the replay injects nothing at
            // this site and the deadline comes out identical).
            let d = s.chaos_rng.next_below(max.as_micros() + 1);
            (d > 0).then_some(d)
        });
        micros(jitter.unwrap_or(0))
    }

    /// One PCT decision point, consulted at every dispatch: if this is a
    /// pre-drawn change site (or the replay script lists it), the thread
    /// being dispatched moves to a seeded random priority. The site
    /// counter ticks on every dispatch — with PCT off nothing is drawn
    /// and clean runs are untouched, yet `(PriorityChange, site)` still
    /// names one exact dispatch for scripted replay.
    fn chaos_priority_change(&mut self, tid: ThreadId) {
        let param = self.chaos_decision(FaultSiteKind::PriorityChange, |s, site| {
            if s.pct_sites.front() == Some(&site) {
                s.pct_sites.pop_front();
                Some(1 + s.chaos_rng.next_below(Priority::LEVELS as u64))
            } else {
                None
            }
        });
        if let Some(level) = param {
            let prio = Priority::of(level.clamp(1, Priority::LEVELS as u64) as u8);
            self.threads[tid.0 as usize].priority = prio;
            self.policy.on_priority_changed(tid, prio);
            self.stats.chaos_priority_changes += 1;
            self.emit(EventKind::SetPriority {
                tid,
                priority: prio,
            });
        }
    }

    /// Asks the policy for the next thread to run, skipping `excluded`
    /// (the paper's `YieldButNotToMe`).
    fn pop_ready_excluding(&mut self, excluded: Option<ThreadId>) -> Option<ThreadId> {
        let (policy, mut ctx) = self.policy_split();
        policy.next(&mut ctx, excluded)
    }

    fn remove_from_ready(&mut self, tid: ThreadId) -> bool {
        if !self.threads[tid.0 as usize].in_ready {
            return false;
        }
        let (policy, mut ctx) = self.policy_split();
        policy.remove(&mut ctx, tid);
        debug_assert!(!self.threads[tid.0 as usize].in_ready);
        true
    }

    /// After `tid`'s quantum expired: does the policy want to requeue it
    /// behind a competitor instead of granting a fresh slice?
    fn quantum_competitor_exists(&mut self, tid: ThreadId) -> bool {
        let (policy, mut ctx) = self.policy_split();
        policy.has_competitor(&mut ctx, tid)
    }

    /// The policy-granted quantum for dispatching `tid` now.
    fn policy_timeslice(&self, tid: ThreadId) -> SimDuration {
        let prio = self.threads[tid.0 as usize].priority;
        self.policy.timeslice(tid, prio, self.cfg.quantum)
    }

    fn preempt_needed(&mut self) -> bool {
        let Some(run) = self.running else {
            return false;
        };
        let shield = self.shield;
        let (policy, mut ctx) = self.policy_split();
        match shield {
            Some(Shield::Full) => false,
            Some(Shield::FromDonor(d)) => policy.preempts(&mut ctx, run, Some(d)),
            None => policy.preempts(&mut ctx, run, None),
        }
    }

    // ---- timers -----------------------------------------------------------

    fn fire_due_timers(&mut self) {
        while let Some(kind) = self.timers.pop_due(self.clock) {
            match kind {
                TimerKind::Wake(tid) => {
                    if self.threads[tid.0 as usize].state == TState::Sleeping {
                        self.push_ready_back(tid);
                    }
                }
                TimerKind::CvTimeout { tid, cv, seq } => {
                    let idx = tid.0 as usize;
                    let live = self.threads[idx].wait_seq == seq
                        && self.threads[idx].state == TState::CvWait(cv);
                    if live {
                        self.threads[idx].wait_seq += 1;
                        let mid = self.conds[cv.0 as usize].monitor;
                        // The queue entry is lazily cancelled: the seq
                        // bump above orphans it, so only the live count
                        // needs maintaining.
                        self.cv_mark_dequeued(cv);
                        self.stats.cv_timeouts += 1;
                        let t = &mut self.threads[idx];
                        t.acquire_on_dispatch = Some(mid);
                        t.reacquire_outcome = Some(WaitOutcome::TimedOut);
                        t.reacquire_cv = Some(cv);
                        self.push_ready_back(tid);
                    }
                }
                TimerKind::ChaosSpuriousWake { tid, cv, seq } => {
                    // Same lazy-cancellation guard as CvTimeout: only a
                    // still-waiting thread can wake spuriously.
                    let idx = tid.0 as usize;
                    let live = self.threads[idx].wait_seq == seq
                        && self.threads[idx].state == TState::CvWait(cv);
                    if live {
                        self.threads[idx].wait_seq += 1;
                        let mid = self.conds[cv.0 as usize].monitor;
                        self.cv_mark_dequeued(cv);
                        self.stats.chaos_spurious_wakeups += 1;
                        self.emit(EventKind::SpuriousWakeup { tid, cv });
                        let t = &mut self.threads[idx];
                        t.acquire_on_dispatch = Some(mid);
                        t.reacquire_outcome = Some(WaitOutcome::Spurious);
                        t.reacquire_cv = Some(cv);
                        self.push_ready_back(tid);
                    }
                }
                TimerKind::ChaosStallStart { spec } => {
                    let s = &self.cfg.chaos.stalls[spec as usize];
                    let name = s.thread.clone();
                    let duration = s.duration;
                    let gate = s.while_holding.clone();
                    let target = self
                        .threads
                        .iter()
                        .position(|t| !t.exited && t.name == name)
                        .map(|i| ThreadId(i as u32));
                    let armed = match (target, &gate) {
                        (Some(tid), Some(mon)) => self
                            .monitors
                            .iter()
                            .any(|m| m.owner == Some(tid) && &m.name == mon)
                            .then_some(tid),
                        (t, None) => t,
                        (None, Some(_)) => None,
                    };
                    if let Some(tid) = armed {
                        match self.threads[tid.0 as usize].state {
                            TState::Ready => {
                                self.remove_from_ready(tid);
                                self.stall_thread(tid, duration);
                            }
                            TState::Running => {
                                // Caught inside its critical section: the
                                // dispatch loop notices the state change
                                // and parks it immediately.
                                self.stall_thread(tid, duration);
                            }
                            _ => {
                                // Blocked: stall at the next point it
                                // would become ready.
                                self.threads[tid.0 as usize].stall_pending = Some(duration);
                            }
                        }
                    } else if gate.is_some() {
                        // Gated on monitor ownership and the target is not
                        // (yet) inside: poll again in a millisecond until
                        // it is caught holding the lock.
                        self.timers
                            .schedule(self.clock + millis(1), TimerKind::ChaosStallStart { spec });
                    }
                }
                TimerKind::ChaosStallEnd(tid) => {
                    if self.threads[tid.0 as usize].state == TState::Stalled {
                        self.push_ready_back(tid);
                    }
                }
            }
        }
    }

    // ---- condition-variable queue helpers -----------------------------------

    /// Accounts for one entry of `cv`'s queue going dead (woken, timed
    /// out, or spuriously awakened); the deque entry itself is dropped
    /// lazily when it surfaces.
    fn cv_mark_dequeued(&mut self, cv: CondId) {
        let i = cv.0 as usize;
        self.conds[i].live -= 1;
        if self.conds[i].live == 0 {
            self.queue_arena.clear(&mut self.conds[i].queue);
        }
    }

    /// Pops the frontmost live waiter of `cv`, skipping entries whose
    /// wait was already ended by a timeout or spurious wake.
    fn pop_cv_waiter(&mut self, cv: CondId) -> Option<ThreadId> {
        if self.conds[cv.0 as usize].live == 0 {
            return None;
        }
        while let Some((w, seq)) = self
            .queue_arena
            .pop_front(&mut self.conds[cv.0 as usize].queue)
        {
            if self.threads[w.0 as usize].wait_seq == seq {
                self.cv_mark_dequeued(cv);
                return Some(w);
            }
        }
        unreachable!("cv {cv:?} live count out of sync with its queue");
    }

    // ---- monitor helpers ----------------------------------------------------

    /// Consumes a thread's pending CV-wake bookkeeping, emitting the
    /// `CvWake` event, and returns the reply it should receive once it
    /// holds its monitor again.
    fn grant_reply(&mut self, tid: ThreadId) -> Reply {
        let t = &mut self.threads[tid.0 as usize];
        match t.reacquire_outcome.take() {
            Some(outcome) => {
                let cv = t.reacquire_cv.take().expect("reacquire without cv");
                self.emit(EventKind::CvWake { tid, cv, outcome });
                Reply::Wait(outcome)
            }
            None => Reply::Ok,
        }
    }

    /// Grants a released monitor to the next queued thread, flushing
    /// deferred notifications into the queue first.
    fn release_monitor(&mut self, mid: MonitorId) {
        // Move the deferred list out wholesale and hand its (emptied)
        // buffer back afterwards, so the common notify-heavy path never
        // allocates.
        let now = self.clock;
        let mut deferred = std::mem::take(&mut self.monitors[mid.0 as usize].deferred);
        for &(wtid, outcome, cv) in &deferred {
            let w = &mut self.threads[wtid.0 as usize];
            debug_assert!(matches!(w.state, TState::CvWait(_)));
            w.state = TState::MutexWait(mid);
            w.blocked_since = now;
            w.reacquire_outcome = Some(outcome);
            w.reacquire_cv = Some(cv);
            self.monitors[mid.0 as usize].queue.push_back(wtid);
        }
        deferred.clear();
        debug_assert!(self.monitors[mid.0 as usize].deferred.is_empty());
        self.monitors[mid.0 as usize].deferred = deferred;
        self.monitors[mid.0 as usize].owner = None;
        if let Some(next) = self.monitors[mid.0 as usize].queue.pop_front() {
            self.monitors[mid.0 as usize].owner = Some(next);
            self.emit(EventKind::MlAcquired {
                tid: next,
                monitor: mid,
            });
            let reply = self.grant_reply(next);
            self.threads[next.0 as usize].pending_reply = Some(reply);
            self.push_ready_back(next);
        }
    }

    /// Handles a thread's dispatch-time monitor (re)acquire. Returns true
    /// if the thread may keep running, false if it blocked.
    fn dispatch_acquire(&mut self, tid: ThreadId, mid: MonitorId) -> bool {
        let owner = self.monitors[mid.0 as usize].owner;
        let outcome = self.threads[tid.0 as usize].reacquire_outcome;
        match owner {
            None => {
                self.monitors[mid.0 as usize].owner = Some(tid);
                self.stats.ml_enters += 1;
                self.stats.distinct_monitors.insert(mid.0);
                self.emit(EventKind::MlEnter {
                    tid,
                    monitor: mid,
                    contended: false,
                });
                let reply = self.grant_reply(tid);
                let t = &mut self.threads[tid.0 as usize];
                t.pending_reply = Some(reply);
                t.debt = self.cfg.primitive_cost;
                t.after_debt = AfterDebt::Reply;
                true
            }
            Some(_) => {
                // The §6.1 wasted trip: dispatched just to block again.
                if outcome == Some(WaitOutcome::Notified) {
                    self.stats.spurious_conflicts += 1;
                    self.emit(EventKind::SpuriousLockConflict { tid, monitor: mid });
                }
                self.stats.ml_enters += 1;
                self.stats.ml_contended += 1;
                self.stats.distinct_monitors.insert(mid.0);
                self.emit(EventKind::MlEnter {
                    tid,
                    monitor: mid,
                    contended: true,
                });
                self.monitors[mid.0 as usize].queue.push_back(tid);
                self.threads[tid.0 as usize].state = TState::MutexWait(mid);
                self.threads[tid.0 as usize].blocked_since = self.clock;
                false
            }
        }
    }

    /// Runs the preempted metalock holder's remaining window right now
    /// (cycle donation), unblocking the monitor's queues.
    fn donate_metalock(&mut self, mid: MonitorId, holder: ThreadId) {
        let debt = self.threads[holder.0 as usize].debt;
        self.charge_thread(holder, debt);
        self.threads[holder.0 as usize].debt = SimDuration::ZERO;
        debug_assert_eq!(
            self.threads[holder.0 as usize].after_debt,
            AfterDebt::BlockOnMutex(mid)
        );
        // The holder finishes its enqueue-and-block immediately; it was
        // Ready (preempted), so pull it from the ready queue first.
        let was_ready = self.remove_from_ready(holder);
        debug_assert!(
            was_ready || self.threads[holder.0 as usize].state == TState::Stalled,
            "metalock holder must be preempted/ready (or chaos-stalled)"
        );
        self.finish_block_on_mutex(holder, mid);
    }

    /// Completes a contended-enter after its metalock window: clears the
    /// metalock, releases stalled threads, and enqueues (or grants).
    fn finish_block_on_mutex(&mut self, tid: ThreadId, mid: MonitorId) {
        self.threads[tid.0 as usize].after_debt = AfterDebt::Reply;
        let m = &mut self.monitors[mid.0 as usize];
        if m.meta == Some(tid) {
            m.meta = None;
        }
        // Same take-and-return trick as `release_monitor`: no allocation
        // per metalock release.
        let mut stalled = std::mem::take(&mut m.meta_waiters);
        for &s in &stalled {
            let t = &mut self.threads[s.0 as usize];
            t.acquire_on_dispatch = Some(mid);
            self.push_ready_back(s);
        }
        stalled.clear();
        debug_assert!(self.monitors[mid.0 as usize].meta_waiters.is_empty());
        self.monitors[mid.0 as usize].meta_waiters = stalled;
        let m = &mut self.monitors[mid.0 as usize];
        if m.owner.is_none() && m.queue.is_empty() {
            // The mutex freed up while we were in the metalock window.
            m.owner = Some(tid);
            self.emit(EventKind::MlAcquired { tid, monitor: mid });
            let reply = self.grant_reply(tid);
            self.threads[tid.0 as usize].pending_reply = Some(reply);
            self.push_ready_back(tid);
        } else {
            m.queue.push_back(tid);
            self.threads[tid.0 as usize].state = TState::MutexWait(mid);
            self.threads[tid.0 as usize].blocked_since = self.clock;
        }
    }

    fn charge_thread(&mut self, tid: ThreadId, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let t = &mut self.threads[tid.0 as usize];
        t.cpu += d;
        let prio = t.priority;
        self.stats.cpu_by_priority[prio.index()] += d;
        self.stats.total_cpu += d;
        self.policy.on_cpu(tid, prio, d);
        self.set_clock(self.clock + d);
    }

    fn fault(&mut self, tid: ThreadId, msg: String) {
        let t = &mut self.threads[tid.0 as usize];
        t.pending_reply = Some(Reply::Fault(msg));
        t.debt = SimDuration::ZERO;
        t.after_debt = AfterDebt::Reply;
    }

    // ---- the run loop -------------------------------------------------------

    /// Advances the simulation until the limit is reached, every thread
    /// has exited, or the remaining threads are deadlocked.
    pub fn run(&mut self, limit: RunLimit) -> RunReport {
        let start = self.clock;
        let end = match limit {
            RunLimit::For(d) => self.clock.saturating_add(d),
            RunLimit::Until(t) => t,
            RunLimit::ToCompletion => SimTime::MAX,
        };
        let reason = loop {
            self.fire_due_timers();
            if self.live_threads == 0 {
                break StopReason::AllExited;
            }
            if self.clock >= end {
                break StopReason::TimeLimit;
            }
            match self.pick_next() {
                Some((tid, slice, shield)) => {
                    self.dispatch(tid, slice, shield, end);
                }
                None => match self.timers.next_deadline() {
                    Some(t) if t <= end => self.set_clock(t),
                    Some(_) => {
                        self.set_clock(end);
                        break StopReason::TimeLimit;
                    }
                    None => break StopReason::Deadlock(self.deadlock_report()),
                },
            }
        };
        if reason == StopReason::TimeLimit && self.clock < end && end != SimTime::MAX {
            self.set_clock(end);
        }
        RunReport {
            reason,
            now: self.clock,
            elapsed: self.clock.saturating_since(start),
            hazards: self
                .hazards
                .as_ref()
                .map(|h| h.counts())
                .unwrap_or_default(),
        }
    }

    fn pick_next(&mut self) -> Option<(ThreadId, Option<SimDuration>, Option<Shield>)> {
        if let Some(plan) = self.donation.take() {
            match plan {
                DonationPlan::NotToMe { excluded } => {
                    if let Some(tid) = self.pop_ready_excluding(Some(excluded)) {
                        return Some((tid, None, Some(Shield::FromDonor(excluded))));
                    }
                }
                DonationPlan::Directed { target, slice } => {
                    if self.threads[target.0 as usize].state == TState::Ready
                        && self.remove_from_ready(target)
                    {
                        return Some((target, Some(slice), Some(Shield::Full)));
                    }
                }
            }
        }
        self.pop_ready_excluding(None).map(|t| (t, None, None))
    }

    fn dispatch(
        &mut self,
        tid: ThreadId,
        quantum_override: Option<SimDuration>,
        shield: Option<Shield>,
        end: SimTime,
    ) {
        self.chaos_priority_change(tid);
        if self.last_dispatched != Some(tid) {
            self.stats.switches += 1;
            let prio = self.threads[tid.0 as usize].priority;
            let ready_for = self
                .clock
                .saturating_since(self.threads[tid.0 as usize].ready_since);
            self.stats.sched_latency.record(prio, ready_for);
            self.emit(EventKind::Switch {
                from: self.last_dispatched,
                to: tid,
                to_priority: prio,
                ready_for,
            });
            // Scheduler overhead: advances the clock, charged to no thread.
            self.set_clock(self.clock + self.cfg.switch_cost);
            self.last_dispatched = Some(tid);
        }
        self.running = Some(tid);
        self.threads[tid.0 as usize].state = TState::Running;
        self.shield = shield;
        let mut quantum_left = quantum_override.unwrap_or_else(|| self.policy_timeslice(tid));

        // A CV wake or metalock retry acquires its monitor now; blocking
        // here is the "useless trip through the scheduler" of §6.1.
        if let Some(mid) = self.threads[tid.0 as usize].acquire_on_dispatch.take() {
            if !self.dispatch_acquire(tid, mid) {
                self.policy.on_block(tid);
                self.running = None;
                self.shield = None;
                return;
            }
        }

        loop {
            self.fire_due_timers();
            if self.threads[tid.0 as usize].state != TState::Running {
                // A chaos stall caught the running thread mid-dispatch
                // (no other timer touches a Running thread); it must not
                // be re-enqueued until its stall ends.
                break;
            }
            if self.clock >= end {
                self.push_ready_front(tid);
                break;
            }
            if self.preempt_needed() {
                self.push_ready_front(tid);
                break;
            }
            let debt = self.threads[tid.0 as usize].debt;
            if !debt.is_zero() {
                let mut slice = debt.min(quantum_left).min(end.since(self.clock));
                if let Some(nt) = self.timers.next_deadline() {
                    slice = slice.min(nt.saturating_since(self.clock));
                }
                if slice.is_zero() {
                    // Quantum exhausted (timers due are handled at loop top).
                    self.quantum_expired(tid);
                    if self.shield.is_some() {
                        self.shield = None;
                        self.push_ready_back(tid);
                        break;
                    }
                    if self.quantum_competitor_exists(tid) {
                        self.push_ready_back(tid);
                        break;
                    }
                    quantum_left = self.policy_timeslice(tid);
                    continue;
                }
                self.charge_thread(tid, slice);
                self.threads[tid.0 as usize].debt -= slice;
                quantum_left -= slice;
                continue;
            }
            match self.threads[tid.0 as usize].after_debt {
                AfterDebt::BlockOnMutex(mid) => {
                    self.finish_block_on_mutex(tid, mid);
                    // finish_block_on_mutex may have granted immediately
                    // (thread is Ready) or blocked it; either way this
                    // dispatch ends.
                    break;
                }
                AfterDebt::Reply => {}
            }
            let Some(reply) = self.threads[tid.0 as usize].pending_reply.take() else {
                unreachable!("running thread {tid:?} has no debt and no pending reply");
            };
            self.threads[tid.0 as usize]
                .reply_tx
                .send(reply)
                .expect("simulated thread vanished while running");
            let (rtid, req) = self
                .req_rx
                .recv()
                .expect("simulated thread disconnected while running");
            debug_assert_eq!(rtid, tid, "request from a thread that is not running");
            self.handle_request(tid, req);
            if self.threads[tid.0 as usize].state != TState::Running {
                break;
            }
        }
        if !matches!(
            self.threads[tid.0 as usize].state,
            TState::Running | TState::Ready | TState::Exited
        ) {
            // The dispatched thread left the CPU blocked (monitor, CV,
            // sleep, join, fork-wait, or a chaos stall).
            self.policy.on_block(tid);
        }
        self.running = None;
        self.shield = None;
    }

    fn quantum_expired(&mut self, tid: ThreadId) {
        // Demotion (MLFQ) happens before the requeue decision so the
        // expired thread re-enters at its new level.
        self.policy.on_quantum_expired(tid);
        self.stats.quantum_expiries += 1;
        self.emit(EventKind::QuantumExpired { tid });
    }

    // ---- request handling ----------------------------------------------------

    fn handle_request(&mut self, tid: ThreadId, req: Request) {
        match req {
            Request::Fork(spec) => self.handle_fork(tid, spec),
            Request::Join(target) => self.handle_join(tid, target),
            Request::Detach(target) => {
                self.threads[target.0 as usize].detached = true;
                self.emit(EventKind::Detach { tid, target });
                self.reply_ok(tid);
            }
            Request::Work(d) => {
                let t = &mut self.threads[tid.0 as usize];
                t.debt = d;
                t.after_debt = AfterDebt::Reply;
                t.pending_reply = Some(Reply::Ok);
            }
            Request::Sleep { d, precise } => {
                let mut until = self.clock + d;
                if !precise {
                    until = until.round_up_to(self.cfg.granularity());
                }
                until += self.chaos_timer_jitter();
                self.emit(EventKind::Sleep { tid, until });
                self.timers.schedule(until, TimerKind::Wake(tid));
                let now = self.clock;
                let t = &mut self.threads[tid.0 as usize];
                t.state = TState::Sleeping;
                t.blocked_since = now;
                t.pending_reply = Some(Reply::Ok);
            }
            Request::Yield => {
                self.stats.yields += 1;
                self.emit(EventKind::Yield {
                    tid,
                    kind: YieldKind::Normal,
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
                self.push_ready_back(tid);
            }
            Request::YieldButNotToMe => {
                self.stats.yields += 1;
                self.emit(EventKind::Yield {
                    tid,
                    kind: YieldKind::ButNotToMe,
                });
                self.donation = Some(DonationPlan::NotToMe { excluded: tid });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
                self.push_ready_back(tid);
            }
            Request::DirectedYield { target, slice } => {
                self.stats.yields += 1;
                self.emit(EventKind::Yield {
                    tid,
                    kind: YieldKind::Directed(target),
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
                if self.threads[target.0 as usize].state == TState::Ready {
                    self.donation = Some(DonationPlan::Directed { target, slice });
                    self.push_ready_back(tid);
                }
                // Target not ready: the yield is a no-op and we keep running.
            }
            Request::DonateRandom { slice } => {
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
                // The candidate count comes from the policy (every ready
                // thread except the donor); the index pick stays on the
                // main RNG stream, and the policy enumerates candidates
                // in its deterministic order — for round-robin, the same
                // (level, FIFO) order the pre-trait scheduler had.
                let n = {
                    let (policy, ctx) = self.policy_split();
                    policy.ready_count_excluding(&ctx, tid)
                };
                if let Some(i) = self.rng.pick_index(n) {
                    let target = {
                        let (policy, ctx) = self.policy_split();
                        policy.nth_ready_excluding(&ctx, i, tid)
                    }
                    .expect("donation target walk out of sync");
                    debug_assert_ne!(target, tid, "donation target walk out of sync");
                    self.stats.daemon_donations += 1;
                    self.emit(EventKind::DaemonDonation { target });
                    self.donation = Some(DonationPlan::Directed { target, slice });
                    self.push_ready_back(tid);
                }
            }
            Request::SetPriority(p) => {
                self.threads[tid.0 as usize].priority = p;
                // The thread is running (not in the ready structure), so
                // the policy only needs the notification, not a requeue.
                self.policy.on_priority_changed(tid, p);
                self.emit(EventKind::SetPriority { tid, priority: p });
                self.reply_ok(tid);
            }
            Request::MonitorEnter(mid) => self.handle_enter(tid, mid),
            Request::MonitorExit(mid) => self.handle_exit_monitor(tid, mid),
            Request::CvWait { cv } => self.handle_cv_wait(tid, cv),
            Request::Notify { cv } => self.handle_notify(tid, cv, false),
            Request::Broadcast { cv } => self.handle_notify(tid, cv, true),
            Request::NewMonitor { name } => {
                let id = MonitorId(self.monitors.len() as u32);
                self.monitors.push(MonitorState::new(name));
                self.threads[tid.0 as usize].pending_reply = Some(Reply::MonitorId(id));
            }
            Request::NewCondition {
                name,
                monitor,
                timeout,
            } => {
                let id = CondId(self.conds.len() as u32);
                self.conds.push(CvState {
                    name,
                    monitor,
                    timeout,
                    queue: QList::new(),
                    live: 0,
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::CondId(id));
            }
            Request::Exit { panicked } => self.handle_exit(tid, panicked),
        }
    }

    fn reply_ok(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0 as usize];
        t.pending_reply = Some(Reply::Ok);
        t.debt = self.cfg.primitive_cost;
        t.after_debt = AfterDebt::Reply;
    }

    fn handle_fork(&mut self, tid: ThreadId, spec: ForkSpec) {
        // Chaos first (§5.4): an injected failure overrides the fork
        // policy — it models resource exhaustion the policy can't see.
        if self.chaos_fork_should_fail() {
            self.stats.chaos_fork_failures += 1;
            self.stats.fork_failures += 1;
            self.emit(EventKind::ChaosForkFail { tid });
            let t = &mut self.threads[tid.0 as usize];
            t.pending_reply = Some(Reply::ForkFailed);
            t.debt = self.cfg.primitive_cost;
            t.after_debt = AfterDebt::Reply;
            return;
        }
        if self.live_threads >= self.cfg.max_threads {
            match self.cfg.fork_policy {
                ForkPolicy::Error => {
                    self.stats.fork_failures += 1;
                    self.emit(EventKind::ForkFailed { tid });
                    self.threads[tid.0 as usize].pending_reply = Some(Reply::ForkFailed);
                }
                ForkPolicy::WaitForResources => {
                    self.stats.fork_blocks += 1;
                    self.emit(EventKind::ForkBlocked { tid });
                    self.threads[tid.0 as usize].state = TState::ForkWait;
                    self.threads[tid.0 as usize].blocked_since = self.clock;
                    self.pending_forks.push_back((tid, spec));
                }
            }
            return;
        }
        let child = self.create_thread(spec, Some(tid));
        let t = &mut self.threads[tid.0 as usize];
        t.pending_reply = Some(Reply::Forked(child));
        t.debt = self.cfg.fork_cost;
        t.after_debt = AfterDebt::Reply;
    }

    fn handle_join(&mut self, tid: ThreadId, target: ThreadId) {
        if self.threads[target.0 as usize].exited {
            self.emit(EventKind::Join {
                joiner: tid,
                target,
            });
            self.threads[tid.0 as usize].pending_reply = Some(Reply::Joined);
        } else {
            if let Some(other) = self.threads[target.0 as usize].joiner {
                self.fault(
                    tid,
                    format!("JOIN: thread {target:?} is already being joined by {other:?}"),
                );
                return;
            }
            self.threads[target.0 as usize].joiner = Some(tid);
            self.emit(EventKind::JoinBlocked {
                joiner: tid,
                target,
            });
            self.threads[tid.0 as usize].state = TState::JoinWait(target);
            self.threads[tid.0 as usize].blocked_since = self.clock;
        }
    }

    fn handle_enter(&mut self, tid: ThreadId, mid: MonitorId) {
        // Metalock window check (§6.2): someone preempted mid-window?
        if let Some(holder) = self.monitors[mid.0 as usize].meta {
            if holder != tid {
                if self.cfg.metalock_donation {
                    self.donate_metalock(mid, holder);
                } else {
                    self.stats.metalock_stalls += 1;
                    self.emit(EventKind::MetalockStall {
                        tid,
                        monitor: mid,
                        holder,
                    });
                    self.monitors[mid.0 as usize].meta_waiters.push_back(tid);
                    self.threads[tid.0 as usize].state = TState::MetaWait(mid);
                    self.threads[tid.0 as usize].blocked_since = self.clock;
                    return;
                }
            }
        }
        match self.monitors[mid.0 as usize].owner {
            None => {
                self.monitors[mid.0 as usize].owner = Some(tid);
                self.stats.ml_enters += 1;
                self.stats.distinct_monitors.insert(mid.0);
                self.emit(EventKind::MlEnter {
                    tid,
                    monitor: mid,
                    contended: false,
                });
                self.reply_ok(tid);
            }
            Some(owner) if owner == tid => {
                self.fault(
                    tid,
                    format!(
                        "recursive monitor entry on {:?} ({}); Mesa monitors are not re-entrant",
                        mid, self.monitors[mid.0 as usize].name
                    ),
                );
            }
            Some(_) => {
                self.stats.ml_enters += 1;
                self.stats.ml_contended += 1;
                self.stats.distinct_monitors.insert(mid.0);
                self.emit(EventKind::MlEnter {
                    tid,
                    monitor: mid,
                    contended: true,
                });
                // Enqueueing runs inside the metalock window; if we get
                // preempted during it, others stall (or donate cycles).
                self.monitors[mid.0 as usize].meta = Some(tid);
                let t = &mut self.threads[tid.0 as usize];
                t.debt = self.cfg.metalock_cost;
                t.after_debt = AfterDebt::BlockOnMutex(mid);
            }
        }
    }

    fn handle_exit_monitor(&mut self, tid: ThreadId, mid: MonitorId) {
        if self.monitors[mid.0 as usize].owner != Some(tid) {
            self.fault(
                tid,
                format!(
                    "monitor exit on {:?} ({}) by non-owner",
                    mid, self.monitors[mid.0 as usize].name
                ),
            );
            return;
        }
        self.emit(EventKind::MlExit { tid, monitor: mid });
        self.release_monitor(mid);
        self.reply_ok(tid);
    }

    fn handle_cv_wait(&mut self, tid: ThreadId, cv: CondId) {
        let mid = self.conds[cv.0 as usize].monitor;
        if self.monitors[mid.0 as usize].owner != Some(tid) {
            self.fault(
                tid,
                format!("WAIT on {cv:?} without holding its monitor {mid:?}"),
            );
            return;
        }
        self.stats.cv_waits += 1;
        self.stats.distinct_conditions.insert(cv.0);
        self.emit(EventKind::CvWait { tid, cv });
        let now = self.clock;
        let t = &mut self.threads[tid.0 as usize];
        t.wait_seq += 1;
        let seq = t.wait_seq;
        t.state = TState::CvWait(cv);
        t.blocked_since = now;
        if let Some(timeout) = self.conds[cv.0 as usize].timeout {
            let deadline = (self.clock + timeout).round_up_to(self.cfg.granularity())
                + self.chaos_timer_jitter();
            self.timers
                .schedule(deadline, TimerKind::CvTimeout { tid, cv, seq });
        }
        let spurious = self.chaos_decision(FaultSiteKind::SpuriousWakeup, |s, _| {
            let sp = s.cfg.chaos.spurious_wakeup_prob;
            if sp > 0.0 && s.chaos_rng.next_f64() < sp {
                // A spurious wakeup 1..=spurious_delay µs into the wait;
                // lazily cancelled if the wait ends first.
                let max = s.cfg.chaos.spurious_delay.as_micros();
                Some(s.chaos_rng.next_below(max) + 1)
            } else {
                None
            }
        });
        if let Some(delay_us) = spurious {
            self.timers.schedule(
                self.clock + micros(delay_us),
                TimerKind::ChaosSpuriousWake { tid, cv, seq },
            );
        }
        self.queue_arena
            .push_back(&mut self.conds[cv.0 as usize].queue, tid, seq);
        self.conds[cv.0 as usize].live += 1;
        self.emit(EventKind::MlExit { tid, monitor: mid });
        self.release_monitor(mid);
    }

    fn handle_notify(&mut self, tid: ThreadId, cv: CondId, broadcast: bool) {
        let mid = self.conds[cv.0 as usize].monitor;
        if self.monitors[mid.0 as usize].owner != Some(tid) {
            self.fault(
                tid,
                format!("NOTIFY/BROADCAST on {cv:?} without holding its monitor {mid:?}"),
            );
            return;
        }
        // Chaos (§5.3): silently discard a NOTIFY that has a waiter. The
        // waiter keeps waiting; only its timeout (if any) can rescue it.
        if !broadcast && self.conds[cv.0 as usize].live > 0 {
            let dropped = self
                .chaos_decision(FaultSiteKind::DropNotify, |s, _| {
                    let p = s.cfg.chaos.drop_notify_prob;
                    (p > 0.0 && s.chaos_rng.next_f64() < p).then_some(0)
                })
                .is_some();
            if dropped {
                self.stats.cv_notifies += 1;
                self.stats.chaos_dropped_notifies += 1;
                self.emit(EventKind::NotifyDropped { tid, cv });
                self.reply_ok(tid);
                return;
            }
        }
        let mut woken = 0u32;
        let mut first_woken = None;
        while let Some(w) = self.pop_cv_waiter(cv) {
            woken += 1;
            first_woken.get_or_insert(w);
            self.wake_waiter(w, mid, cv);
            if !broadcast {
                break;
            }
        }
        // Chaos (§5.3): wake a second waiter too, violating "exactly one
        // waiter wakens". Correct Mesa code re-checks its predicate and
        // survives; code that doesn't is what this fault flushes out.
        let mut extra = None;
        if !broadcast && first_woken.is_some() && self.conds[cv.0 as usize].live > 0 {
            let duplicated = self
                .chaos_decision(FaultSiteKind::DuplicateNotify, |s, _| {
                    let p = s.cfg.chaos.duplicate_notify_prob;
                    (p > 0.0 && s.chaos_rng.next_f64() < p).then_some(0)
                })
                .is_some();
            if duplicated {
                let w = self.pop_cv_waiter(cv).expect("live waiter present");
                self.wake_waiter(w, mid, cv);
                self.stats.chaos_duplicated_notifies += 1;
                extra = Some(w);
            }
        }
        if broadcast {
            self.stats.cv_broadcasts += 1;
            self.emit(EventKind::Broadcast { tid, cv, woken });
        } else {
            self.stats.cv_notifies += 1;
            self.emit(EventKind::Notify {
                tid,
                cv,
                woken: first_woken,
            });
            if let Some(extra) = extra {
                self.emit(EventKind::NotifyDuplicated { tid, cv, extra });
            }
        }
        self.reply_ok(tid);
    }

    /// Wakes one CV waiter according to the configured NOTIFY mode.
    fn wake_waiter(&mut self, w: ThreadId, mid: MonitorId, cv: CondId) {
        let wt = &mut self.threads[w.0 as usize];
        wt.wait_seq += 1; // Lazily cancels the timeout timer.
        match self.cfg.notify_mode {
            NotifyMode::Immediate => {
                wt.acquire_on_dispatch = Some(mid);
                wt.reacquire_outcome = Some(WaitOutcome::Notified);
                wt.reacquire_cv = Some(cv);
                self.push_ready_back(w);
            }
            NotifyMode::DeferredReschedule => {
                self.monitors[mid.0 as usize]
                    .deferred
                    .push((w, WaitOutcome::Notified, cv));
            }
        }
    }

    fn handle_exit(&mut self, tid: ThreadId, panicked: bool) {
        self.emit(EventKind::Exit { tid, panicked });
        self.stats.exits += 1;
        if panicked {
            self.stats.panics += 1;
        }
        let t = &mut self.threads[tid.0 as usize];
        t.exited = true;
        t.panicked = panicked;
        t.state = TState::Exited;
        t.pending_reply = None;
        t.debt = SimDuration::ZERO;
        self.live_threads -= 1;
        // Release the carrier thread back to the pool without joining:
        // it returns to its assignment loop right after sending Exit,
        // and a successor assignment queues safely in the meantime.
        if let Some(w) = self.threads[tid.0 as usize].worker.take() {
            self.pool.release(w);
        }
        debug_assert!(
            self.monitors.iter().all(|m| m.owner != Some(tid)),
            "thread exited while holding a monitor"
        );
        if let Some(j) = self.threads[tid.0 as usize].joiner.take() {
            self.emit(EventKind::Join {
                joiner: j,
                target: tid,
            });
            self.threads[j.0 as usize].pending_reply = Some(Reply::Joined);
            self.push_ready_back(j);
        }
        // A freed slot can satisfy a blocked FORK (§5.4).
        if self.live_threads < self.cfg.max_threads {
            if let Some((forker, spec)) = self.pending_forks.pop_front() {
                let child = self.create_thread(spec, Some(forker));
                let f = &mut self.threads[forker.0 as usize];
                f.pending_reply = Some(Reply::Forked(child));
                f.debt = self.cfg.fork_cost;
                f.after_debt = AfterDebt::Reply;
                self.push_ready_back(forker);
            }
        }
    }

    // ---- deadlock reporting -----------------------------------------------

    fn deadlock_report(&self) -> DeadlockReport {
        let mut blocked = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if t.exited {
                continue;
            }
            let tid = ThreadId(i as u32);
            let (waiting_for, blocked_on) = match t.state {
                TState::MutexWait(m) => (
                    format!("monitor {:?} ({})", m, self.monitors[m.0 as usize].name),
                    self.monitors[m.0 as usize].owner,
                ),
                TState::MetaWait(m) => (
                    format!("metalock of {:?}", m),
                    self.monitors[m.0 as usize].meta,
                ),
                TState::CvWait(cv) => {
                    let mid = self.conds[cv.0 as usize].monitor;
                    (
                        format!("condition {cv:?} (no timeout) of monitor {mid:?}"),
                        None,
                    )
                }
                TState::JoinWait(target) => (format!("join of {target:?}"), Some(target)),
                TState::ForkWait => ("fork resources".to_string(), None),
                // A chaos-stalled thread always has a ChaosStallEnd timer
                // pending, so a deadlock is never declared while one exists.
                TState::Stalled
                | TState::Sleeping
                | TState::Ready
                | TState::Running
                | TState::Exited => continue,
            };
            blocked.push(BlockedThread {
                tid,
                name: t.name.clone(),
                waiting_for,
                blocked_on,
            });
        }
        DeadlockReport { blocked }
    }

    fn shutdown(&mut self) {
        // Unblock every still-live body (the shutdown reply unwinds it),
        // then disconnect and join the carrier pool.
        for t in &self.threads {
            if !t.exited {
                let _ = t.reply_tx.send(Reply::Shutdown);
            }
        }
        self.pool.shutdown();
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.clock)
            .field("live_threads", &self.live_threads)
            .field("monitors", &self.monitors.len())
            .field("conditions", &self.conds.len())
            .finish()
    }
}
