//! Thread identity, priorities, and join handles.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::error::JoinError;
use crate::time::SimDuration;

/// Identifier of a simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) u32);

impl ThreadId {
    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index. Intended for tooling and tests that
    /// fabricate event streams; ids are only meaningful within the `Sim`
    /// that issued them.
    pub const fn from_u32(v: u32) -> ThreadId {
        ThreadId(v)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A Mesa thread priority: 1 (lowest) through 7 (highest).
///
/// The paper's systems use 7 priority levels with the default in the
/// middle (4). Lower priorities are used for long-running background work;
/// higher priorities for device handling and the user interface.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Lowest priority (1): deep background work.
    pub const MIN: Priority = Priority(1);
    /// The default priority (4), the middle of the seven levels.
    pub const DEFAULT: Priority = Priority(4);
    /// Highest priority (7): interrupt-level threads.
    pub const MAX: Priority = Priority(7);
    /// Number of priority levels.
    pub const LEVELS: usize = 7;

    /// Creates a priority, returning `None` outside `1..=7`.
    pub const fn new(level: u8) -> Option<Priority> {
        if level >= 1 && level <= 7 {
            Some(Priority(level))
        } else {
            None
        }
    }

    /// Creates a priority, panicking outside `1..=7`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=7`.
    pub const fn of(level: u8) -> Priority {
        match Priority::new(level) {
            Some(p) => p,
            None => panic!("priority must be in 1..=7"),
        }
    }

    /// Returns the numeric level (1..=7).
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Zero-based index for table lookups.
    pub(crate) const fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Shared slot a forked thread writes its result (or panic message) into.
pub(crate) type ResultSlot<T> = Arc<Mutex<Option<Result<T, String>>>>;

/// Handle returned by FORK; redeem it with [`crate::ThreadCtx::join`].
///
/// Per the Mesa model a thread may be JOINed at most once; a handle that
/// will not be joined should be passed to [`crate::ThreadCtx::detach`]
/// (or created with `fork_detached`) so the runtime can recycle the
/// thread's resources when it terminates. The handle is consumed by both
/// operations, so the at-most-once rule is enforced by the type system.
#[must_use = "a forked thread must be JOINed or DETACHed"]
pub struct JoinHandle<T> {
    pub(crate) tid: ThreadId,
    pub(crate) slot: ResultSlot<T>,
}

impl<T> JoinHandle<T> {
    /// The identity of the forked thread.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Consumes the handle and returns the thread's result, if the thread
    /// has already exited.
    ///
    /// This is the *outside-the-simulation* counterpart of
    /// [`crate::ThreadCtx::join`]: an experiment harness that drove
    /// [`crate::Sim::run`] to completion can harvest results without a
    /// joining thread inside the world. Returns `None` when the thread
    /// has not exited (e.g. the run hit its time limit first).
    pub fn into_result(self) -> Option<Result<T, JoinError>> {
        let stored = self.slot.lock().expect("result slot poisoned").take()?;
        Some(stored.map_err(JoinError::Panicked))
    }

    /// Takes the stored result after the thread has exited.
    pub(crate) fn take_result(&self) -> Result<T, JoinError> {
        let stored = self
            .slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("join completed but no result stored");
        stored.map_err(JoinError::Panicked)
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

/// Borrowed per-thread summary, from [`crate::Sim::threads_iter`].
///
/// The non-allocating counterpart of [`ThreadInfo`]: the name is a
/// borrow of the scheduler's own string, so iterating every thread of a
/// large world costs no heap traffic. Call [`ThreadView::to_info`] when
/// an owned snapshot is needed.
#[derive(Clone, Copy, Debug)]
pub struct ThreadView<'a> {
    /// Thread identity.
    pub tid: ThreadId,
    /// Name given at fork time.
    pub name: &'a str,
    /// Final priority.
    pub priority: Priority,
    /// Total virtual CPU time consumed.
    pub cpu: SimDuration,
    /// Whether the thread has exited.
    pub exited: bool,
    /// Whether it exited by panic.
    pub panicked: bool,
    /// Forking parent, if any.
    pub parent: Option<ThreadId>,
    /// Fork generation: roots are 0, their forks 1, and so on.
    pub generation: u32,
}

impl ThreadView<'_> {
    /// An owned [`ThreadInfo`] snapshot of this view.
    pub fn to_info(&self) -> ThreadInfo {
        ThreadInfo {
            tid: self.tid,
            name: self.name.to_string(),
            priority: self.priority,
            cpu: self.cpu,
            exited: self.exited,
            panicked: self.panicked,
            parent: self.parent,
            generation: self.generation,
        }
    }
}

/// Post-run summary of one simulated thread, from [`crate::Sim::threads`].
#[derive(Clone, Debug)]
pub struct ThreadInfo {
    /// Thread identity.
    pub tid: ThreadId,
    /// Name given at fork time.
    pub name: String,
    /// Final priority.
    pub priority: Priority,
    /// Total virtual CPU time consumed.
    pub cpu: SimDuration,
    /// Whether the thread has exited.
    pub exited: bool,
    /// Whether it exited by panic.
    pub panicked: bool,
    /// Forking parent, if any.
    pub parent: Option<ThreadId>,
    /// Fork generation: roots are 0, their forks 1, and so on. The paper
    /// observes that no benchmark produced generations greater than 2
    /// counted from a worker or long-lived thread.
    pub generation: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bounds() {
        assert!(Priority::new(0).is_none());
        assert!(Priority::new(8).is_none());
        assert_eq!(Priority::new(1), Some(Priority::MIN));
        assert_eq!(Priority::new(7), Some(Priority::MAX));
        assert_eq!(Priority::DEFAULT.get(), 4);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::MAX > Priority::DEFAULT);
        assert!(Priority::DEFAULT > Priority::MIN);
        assert_eq!(Priority::of(3).index(), 2);
    }

    #[test]
    #[should_panic(expected = "priority must be in 1..=7")]
    fn priority_of_panics_out_of_range() {
        let _ = Priority::of(9);
    }

    #[test]
    fn thread_id_formatting() {
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", Priority::of(6)), "P6");
    }
}
