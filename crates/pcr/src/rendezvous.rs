//! The baton protocol between simulated threads and the scheduler.
//!
//! Each simulated thread runs on its own OS thread, but exactly one is
//! ever unparked: the scheduler resumes a thread by sending it a
//! [`Reply`], then blocks until that thread sends its next [`Request`].
//! User code between two requests executes in zero virtual time; virtual
//! time advances only through explicit costs processed by the scheduler.
//! All scheduling state therefore lives on the scheduler's side and the
//! simulation is deterministic.

use std::sync::mpsc;

use crate::event::{CondId, WaitOutcome};
use crate::monitor::MonitorId;
use crate::thread::{Priority, ThreadId};
use crate::time::SimDuration;

/// A simulated thread body, already wrapped for result capture and panic
/// handling.
pub(crate) type BodyFn = Box<dyn FnOnce(&crate::ctx::ThreadCtx) + Send + 'static>;

/// Everything the scheduler needs to create a thread.
pub(crate) struct ForkSpec {
    pub name: String,
    pub priority: Option<Priority>,
    pub detached: bool,
    pub body: BodyFn,
}

impl std::fmt::Debug for ForkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkSpec")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("detached", &self.detached)
            .finish_non_exhaustive()
    }
}

/// A request from the running thread to the scheduler.
#[derive(Debug)]
pub(crate) enum Request {
    /// Create a thread.
    Fork(ForkSpec),
    /// Wait for a thread to exit.
    Join(ThreadId),
    /// Mark a thread as never-to-be-joined.
    Detach(ThreadId),
    /// Consume virtual CPU time (preemptible).
    Work(SimDuration),
    /// Sleep. `precise` sleeps wake exactly on time (modelling external
    /// device events delivered by the host OS); plain sleeps are quantized
    /// to the timer granularity like PCR timeouts.
    Sleep { d: SimDuration, precise: bool },
    /// Plain YIELD.
    Yield,
    /// `YieldButNotToMe` (§5.2).
    YieldButNotToMe,
    /// Directed yield: donate `slice` to `target` if it is ready.
    DirectedYield {
        target: ThreadId,
        slice: SimDuration,
    },
    /// Donate `slice` to a randomly chosen ready thread (SystemDaemon).
    DonateRandom { slice: SimDuration },
    /// Change own priority.
    SetPriority(Priority),
    /// Enter a monitor.
    MonitorEnter(MonitorId),
    /// Exit a monitor.
    MonitorExit(MonitorId),
    /// Atomically exit the CV's monitor and wait on the CV.
    CvWait { cv: CondId },
    /// Wake at most one waiter.
    Notify { cv: CondId },
    /// Wake all waiters.
    Broadcast { cv: CondId },
    /// Allocate a monitor id.
    NewMonitor { name: String },
    /// Allocate a condition-variable id.
    NewCondition {
        name: String,
        monitor: MonitorId,
        timeout: Option<SimDuration>,
    },
    /// Thread terminated (normally or by panic). No reply follows.
    Exit { panicked: bool },
}

/// The scheduler's reply that resumes a parked thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Reply {
    /// Generic completion.
    Ok,
    /// Fork succeeded.
    Forked(ThreadId),
    /// Fork failed under [`crate::ForkPolicy::Error`].
    ForkFailed,
    /// Join target has exited.
    Joined,
    /// A CV wait finished with this outcome.
    Wait(WaitOutcome),
    /// Fresh monitor id.
    MonitorId(MonitorId),
    /// Fresh condition id.
    CondId(CondId),
    /// The request was illegal (recursive monitor entry, exiting an
    /// unowned monitor, CV op without the lock...). The thread panics
    /// with this message; the simulation continues.
    Fault(String),
    /// The simulation is tearing down: unwind out of the thread body.
    Shutdown,
}

/// Panic payload used to unwind a simulated thread at shutdown.
pub(crate) struct ShutdownSignal;

/// The channel endpoints a simulated thread holds.
pub(crate) struct ThreadChannels {
    pub req_tx: mpsc::Sender<(ThreadId, Request)>,
    pub reply_rx: mpsc::Receiver<Reply>,
}

/// Creates the per-thread reply channel.
pub(crate) fn reply_channel() -> (mpsc::Sender<Reply>, mpsc::Receiver<Reply>) {
    mpsc::channel()
}
