//! A shared slab arena for scheduler queue nodes.
//!
//! The ready queues and condition-variable wait queues used to be
//! `VecDeque`s — fine asymptotically, but every queue owned a private
//! buffer that grew to its own high-water mark, exclusion-path removal
//! (`pop_ready_excluding`) shifted elements, and clearing a queue walked
//! and dropped them. [`NodeArena`] pools all queue nodes in one slab
//! with an intrusive free list: a [`QList`] is just `(head, tail, len)`
//! indices into the slab, so push/pop/unlink are O(1) pointer swings and
//! a steady-state sim performs no queue allocation at all. The slab
//! never shrinks; its high-water mark is the peak *total* queue
//! population, shared across every queue.
//!
//! Nodes carry the same `(tid, generation)` payload the `VecDeque`
//! entries did: the scheduler's tombstone scheme (a stale generation
//! means the entry was lazily cancelled) is unchanged, and list order is
//! strict FIFO, so scheduling decisions — including `DonateRandom`'s
//! index-into-live-entries scan — are byte-identical to the `VecDeque`
//! implementation.

use crate::thread::ThreadId;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    tid: ThreadId,
    gen: u64,
    prev: u32,
    next: u32,
}

/// One FIFO queue whose nodes live in a shared [`NodeArena`].
///
/// Deliberately not `Copy`/`Clone`: a duplicated head/tail pair would
/// silently desync from the arena. All operations go through the arena,
/// which owns the nodes.
pub(crate) struct QList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for QList {
    fn default() -> Self {
        QList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl QList {
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The shared node slab. See the module docs.
#[derive(Default)]
pub(crate) struct NodeArena {
    nodes: Vec<Node>,
    /// Head of the intrusive free list (threaded through `next`).
    free: u32,
    allocs: u64,
    reuses: u64,
}

impl NodeArena {
    pub fn new() -> Self {
        NodeArena {
            nodes: Vec::new(),
            free: NIL,
            allocs: 0,
            reuses: 0,
        }
    }

    /// `(slab allocations, node reuses)` so far.
    pub fn alloc_stats(&self) -> (u64, u64) {
        (self.allocs, self.reuses)
    }

    fn acquire(&mut self, tid: ThreadId, gen: u64) -> u32 {
        if self.free != NIL {
            let n = self.free;
            self.free = self.nodes[n as usize].next;
            self.nodes[n as usize] = Node {
                tid,
                gen,
                prev: NIL,
                next: NIL,
            };
            self.reuses += 1;
            n
        } else {
            self.nodes.push(Node {
                tid,
                gen,
                prev: NIL,
                next: NIL,
            });
            self.allocs += 1;
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, n: u32) {
        self.nodes[n as usize].next = self.free;
        self.free = n;
    }

    /// Appends `(tid, gen)` at the tail of `list`.
    pub fn push_back(&mut self, list: &mut QList, tid: ThreadId, gen: u64) {
        let n = self.acquire(tid, gen);
        self.nodes[n as usize].prev = list.tail;
        if list.tail == NIL {
            list.head = n;
        } else {
            self.nodes[list.tail as usize].next = n;
        }
        list.tail = n;
        list.len += 1;
    }

    /// Prepends `(tid, gen)` at the head of `list`.
    pub fn push_front(&mut self, list: &mut QList, tid: ThreadId, gen: u64) {
        let n = self.acquire(tid, gen);
        self.nodes[n as usize].next = list.head;
        if list.head == NIL {
            list.tail = n;
        } else {
            self.nodes[list.head as usize].prev = n;
        }
        list.head = n;
        list.len += 1;
    }

    /// Pops the head of `list`.
    pub fn pop_front(&mut self, list: &mut QList) -> Option<(ThreadId, u64)> {
        if list.head == NIL {
            return None;
        }
        let n = list.head;
        let node = self.nodes[n as usize];
        list.head = node.next;
        if list.head == NIL {
            list.tail = NIL;
        } else {
            self.nodes[list.head as usize].prev = NIL;
        }
        list.len -= 1;
        self.release(n);
        Some((node.tid, node.gen))
    }

    /// Unlinks an interior node previously found via [`Self::iter`].
    pub fn unlink(&mut self, list: &mut QList, n: u32) {
        let node = self.nodes[n as usize];
        if node.prev == NIL {
            list.head = node.next;
        } else {
            self.nodes[node.prev as usize].next = node.next;
        }
        if node.next == NIL {
            list.tail = node.prev;
        } else {
            self.nodes[node.next as usize].prev = node.prev;
        }
        list.len -= 1;
        self.release(n);
    }

    /// Frees every node of `list`, leaving it empty.
    pub fn clear(&mut self, list: &mut QList) {
        let mut n = list.head;
        while n != NIL {
            let next = self.nodes[n as usize].next;
            self.release(n);
            n = next;
        }
        *list = QList::new();
    }

    /// Iterates `list` head-to-tail, yielding `(node index, tid, gen)`.
    /// The node index stays valid until the node is unlinked or the list
    /// cleared, so a scan can collect an index and unlink it after.
    pub fn iter<'a>(&'a self, list: &QList) -> QIter<'a> {
        QIter {
            arena: self,
            cursor: list.head,
        }
    }
}

/// Head-to-tail iterator over a [`QList`].
pub(crate) struct QIter<'a> {
    arena: &'a NodeArena,
    cursor: u32,
}

impl Iterator for QIter<'_> {
    type Item = (u32, ThreadId, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let n = self.cursor;
        let node = self.arena.nodes[n as usize];
        self.cursor = node.next;
        Some((n, node.tid, node.gen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(arena: &mut NodeArena, list: &mut QList) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        while let Some((tid, gen)) = arena.pop_front(list) {
            out.push((tid.as_u32(), gen));
        }
        out
    }

    #[test]
    fn fifo_push_pop() {
        let mut arena = NodeArena::new();
        let mut list = QList::new();
        for i in 0..5u32 {
            arena.push_back(&mut list, ThreadId(i), i as u64);
        }
        assert_eq!(list.len(), 5);
        assert_eq!(
            drain(&mut arena, &mut list),
            vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]
        );
        assert!(list.is_empty());
    }

    #[test]
    fn push_front_prepends() {
        let mut arena = NodeArena::new();
        let mut list = QList::new();
        arena.push_back(&mut list, ThreadId(1), 0);
        arena.push_front(&mut list, ThreadId(0), 0);
        arena.push_back(&mut list, ThreadId(2), 0);
        let order: Vec<u32> = arena.iter(&list).map(|(_, t, _)| t.as_u32()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn unlink_interior_head_and_tail() {
        let mut arena = NodeArena::new();
        for victim in 0..3u32 {
            let mut list = QList::new();
            for i in 0..3u32 {
                arena.push_back(&mut list, ThreadId(i), 0);
            }
            let (n, _, _) = arena
                .iter(&list)
                .find(|&(_, t, _)| t == ThreadId(victim))
                .unwrap();
            arena.unlink(&mut list, n);
            let rest: Vec<u32> = arena.iter(&list).map(|(_, t, _)| t.as_u32()).collect();
            let expect: Vec<u32> = (0..3).filter(|&i| i != victim).collect();
            assert_eq!(rest, expect, "victim {victim}");
            assert_eq!(list.len(), 2);
            arena.clear(&mut list);
        }
    }

    #[test]
    fn nodes_are_recycled_across_lists() {
        let mut arena = NodeArena::new();
        let mut a = QList::new();
        let mut b = QList::new();
        for i in 0..4u32 {
            arena.push_back(&mut a, ThreadId(i), 0);
        }
        arena.clear(&mut a);
        for i in 0..4u32 {
            arena.push_back(&mut b, ThreadId(i), 0);
        }
        let (allocs, reuses) = arena.alloc_stats();
        assert_eq!(allocs, 4, "second list must reuse the freed nodes");
        assert_eq!(reuses, 4);
    }

    #[test]
    fn interleaved_lists_stay_independent() {
        let mut arena = NodeArena::new();
        let mut a = QList::new();
        let mut b = QList::new();
        for i in 0..6u32 {
            if i % 2 == 0 {
                arena.push_back(&mut a, ThreadId(i), 10 + i as u64);
            } else {
                arena.push_back(&mut b, ThreadId(i), 20 + i as u64);
            }
        }
        assert_eq!(drain(&mut arena, &mut a), vec![(0, 10), (2, 12), (4, 14)]);
        assert_eq!(drain(&mut arena, &mut b), vec![(1, 21), (3, 23), (5, 25)]);
    }
}
