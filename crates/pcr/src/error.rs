//! Error and report types for the simulated runtime.

use core::fmt;

use crate::hazard::HazardCounts;
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Why a [`crate::Sim::run`] call stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The requested virtual-time limit was reached.
    TimeLimit,
    /// Every simulated thread has exited.
    AllExited,
    /// No thread is runnable and no timer is pending: the remaining
    /// threads can never make progress.
    Deadlock(DeadlockReport),
}

/// Result of a [`crate::Sim::run`] call.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Virtual clock value when the run stopped.
    pub now: SimTime,
    /// Virtual time that elapsed during this `run` call.
    pub elapsed: SimDuration,
    /// Hazards detected so far, when
    /// [`crate::SimConfig::with_hazard_detection`] is enabled (all zero
    /// otherwise). Cumulative across successive `run` calls on one sim.
    pub hazards: HazardCounts,
}

impl RunReport {
    /// Returns true if the run ended in deadlock.
    pub fn deadlocked(&self) -> bool {
        matches!(self.reason, StopReason::Deadlock(_))
    }

    /// Returns true if any hazard was detected.
    pub fn hazardous(&self) -> bool {
        self.hazards.total() > 0
    }
}

/// A description of one blocked thread in a deadlock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedThread {
    /// The blocked thread.
    pub tid: ThreadId,
    /// Its name.
    pub name: String,
    /// Human-readable description of what it is waiting for.
    pub waiting_for: String,
    /// The thread it is transitively waiting on, when one is identifiable
    /// (a monitor owner or a join target).
    pub blocked_on: Option<ThreadId>,
}

/// A wait-for description of a deadlocked system.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// Every thread that is alive but can never run again.
    pub blocked: Vec<BlockedThread>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: {} thread(s) blocked forever",
            self.blocked.len()
        )?;
        for b in &self.blocked {
            write!(f, "  {:?} \"{}\": {}", b.tid, b.name, b.waiting_for)?;
            if let Some(on) = b.blocked_on {
                write!(f, " (held by {on:?})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error returned when a FORK cannot be satisfied.
///
/// Mirrors §5.4 of the paper: under the `Error` fork policy an exhausted
/// thread table raises an error the forker must handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForkError {
    /// The configured thread limit was reached.
    ResourcesExhausted,
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkError::ResourcesExhausted => write!(f, "fork failed: thread resources exhausted"),
        }
    }
}

impl std::error::Error for ForkError {}

/// Error returned by JOIN.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The joined thread panicked; the payload's message is included.
    Panicked(String),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Panicked(msg) => write!(f, "joined thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for JoinError {}
