//! The runtime's timer queue.
//!
//! Holds pending wakeups: sleeps and condition-variable timeouts.
//! Quantization to the timer granularity happens at insertion time, by
//! the caller; the wheel itself is an exact priority queue ordered by
//! (deadline, insertion sequence) so same-deadline timers fire FIFO.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::CondId;
use crate::thread::ThreadId;
use crate::time::SimTime;

/// What to do when a timer fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Wake a sleeping thread.
    Wake(ThreadId),
    /// Time out a CV wait. `seq` must match the thread's current wait
    /// sequence number or the timer is stale and ignored (lazy
    /// cancellation).
    CvTimeout { tid: ThreadId, cv: CondId, seq: u64 },
    /// Chaos: wake a CV waiter spuriously. Lazily cancelled by `seq`
    /// exactly like `CvTimeout`.
    ChaosSpuriousWake { tid: ThreadId, cv: CondId, seq: u64 },
    /// Chaos: begin the stall described by `ChaosConfig.stalls[spec]`.
    ChaosStallStart { spec: u32 },
    /// Chaos: the stalled thread becomes schedulable again.
    ChaosStallEnd(ThreadId),
}

#[derive(PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Pending timers, ordered by deadline.
#[derive(Default)]
pub(crate) struct TimerWheel {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl TimerWheel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, kind: TimerKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, kind }));
    }

    /// The earliest pending deadline. Called once per inner-loop
    /// iteration of [`crate::Sim::run`], so it must stay a branch and a
    /// heap peek.
    #[inline]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the next timer due at or before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: SimTime) -> Option<TimerKind> {
        if self.next_deadline()? <= now {
            self.heap.pop().map(|Reverse(e)| e.kind)
        } else {
            None
        }
    }

    /// Number of pending timers (including stale ones awaiting lazy
    /// cancellation).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no timers are pending.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::millis;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::ZERO + millis(30), TimerKind::Wake(ThreadId(3)));
        w.schedule(SimTime::ZERO + millis(10), TimerKind::Wake(ThreadId(1)));
        w.schedule(SimTime::ZERO + millis(20), TimerKind::Wake(ThreadId(2)));
        assert_eq!(w.next_deadline(), Some(SimTime::ZERO + millis(10)));
        let now = SimTime::ZERO + millis(25);
        assert_eq!(w.pop_due(now), Some(TimerKind::Wake(ThreadId(1))));
        assert_eq!(w.pop_due(now), Some(TimerKind::Wake(ThreadId(2))));
        assert_eq!(w.pop_due(now), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn same_deadline_fires_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::ZERO + millis(5);
        for i in 0..4 {
            w.schedule(t, TimerKind::Wake(ThreadId(i)));
        }
        for i in 0..4 {
            assert_eq!(w.pop_due(t), Some(TimerKind::Wake(ThreadId(i))));
        }
    }

    #[test]
    fn empty_wheel() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        assert_eq!(w.pop_due(SimTime::MAX), None);
    }
}
