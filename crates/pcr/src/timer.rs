//! The runtime's timer queue: the hierarchical timer wheel from
//! [`crate::wheel`], instantiated over the scheduler's [`TimerKind`].
//!
//! Holds pending wakeups: sleeps and condition-variable timeouts.
//! Quantization to the timer granularity happens at insertion time, by
//! the caller; the wheel behaves as an exact priority queue ordered by
//! (deadline, insertion sequence) so same-deadline timers fire FIFO —
//! byte-for-byte the order the previous `BinaryHeap` implementation
//! produced, which is what keeps traces replay-identical. The wheel
//! mechanics (layout, cascading, cancellation) live in [`crate::wheel`]
//! so workloads can reuse them for their own deadline bookkeeping.

use crate::event::CondId;
use crate::thread::ThreadId;

/// What to do when a timer fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Wake a sleeping thread.
    Wake(ThreadId),
    /// Time out a CV wait. `seq` must match the thread's current wait
    /// sequence number or the timer is stale and ignored (lazy
    /// cancellation).
    CvTimeout { tid: ThreadId, cv: CondId, seq: u64 },
    /// Chaos: wake a CV waiter spuriously. Lazily cancelled by `seq`
    /// exactly like `CvTimeout`.
    ChaosSpuriousWake { tid: ThreadId, cv: CondId, seq: u64 },
    /// Chaos: begin the stall described by `ChaosConfig.stalls[spec]`.
    ChaosStallStart { spec: u32 },
    /// Chaos: the stalled thread becomes schedulable again.
    ChaosStallEnd(ThreadId),
}

/// Pending runtime timers, ordered by `(deadline, insertion seq)`.
pub(crate) type TimerWheel = crate::wheel::Wheel<TimerKind>;

/// The `BinaryHeap` baseline the wheel replaced; microbench baseline.
pub(crate) type HeapTimers = crate::wheel::HeapWheel<TimerKind>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, SimTime};

    /// The runtime aliases stay drop-in: schedule discards its token at
    /// every scheduler call site, pop order is (deadline, seq).
    #[test]
    fn runtime_alias_round_trip() {
        let mut w = TimerWheel::new();
        let _ = w.schedule(SimTime::ZERO + millis(2), TimerKind::Wake(ThreadId(1)));
        let tok = w.schedule(
            SimTime::ZERO + millis(1),
            TimerKind::ChaosStallEnd(ThreadId(2)),
        );
        assert_eq!(w.next_deadline(), Some(SimTime::ZERO + millis(1)));
        assert!(w.cancel(tok));
        assert_eq!(
            w.pop_due(SimTime::ZERO + millis(5)),
            Some(TimerKind::Wake(ThreadId(1)))
        );
        assert!(w.is_empty());
    }
}
