//! Wait-for graph extraction: who is blocked on whom, and for how long.
//!
//! The global deadlock detector in [`crate::Sim::run`] only fires when
//! *nothing* can ever run again — but the paper's failure stories (§2.6,
//! §5.2, §5.4) are mostly *partial* wedges: a handful of threads stuck
//! behind an unresponsive holder or an exhausted fork queue while the
//! rest of the system limps on. [`crate::Sim::wait_for_graph`] snapshots
//! the blocking relationships of a *live* simulation so a supervisor can
//! spot those wedges, extract cycles, and pick a recovery lever.

use crate::thread::{Priority, ThreadId};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// What a blocked thread is waiting on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Waiting to enter a monitor (edge to its current owner).
    Monitor,
    /// Stalled behind a preempted metalock holder (§6.2).
    Metalock,
    /// Waiting on a condition variable. Not a wedge by itself — a
    /// timeout or a future notify can still rescue the waiter — so
    /// [`WaitForGraph::wedged`] excludes it.
    Condition {
        /// True if the CV has a timeout that will eventually fire.
        has_timeout: bool,
    },
    /// Joining another thread (edge to the join target).
    Join,
    /// Blocked in FORK waiting for a thread slot (§5.4).
    Fork,
}

impl BlockKind {
    /// Short stable tag, used in failure signatures and rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            BlockKind::Monitor => "monitor",
            BlockKind::Metalock => "metalock",
            BlockKind::Condition { .. } => "condition",
            BlockKind::Join => "join",
            BlockKind::Fork => "fork",
        }
    }
}

/// One blocked thread: a node of the wait-for graph, with its outgoing
/// edge (`blocked_on`) when the obstacle is another thread.
#[derive(Clone, Debug)]
pub struct WaitingThread {
    /// The blocked thread.
    pub tid: ThreadId,
    /// Its name.
    pub name: String,
    /// Its priority.
    pub priority: Priority,
    /// What it is blocked in.
    pub kind: BlockKind,
    /// Name of the resource (monitor, CV, join target, or "fork slot").
    pub resource: String,
    /// The thread holding the resource, when one is known.
    pub blocked_on: Option<ThreadId>,
    /// When this thread entered its current blocking state.
    pub since: SimTime,
}

/// A live thread that could run but currently is not: preempted (in the
/// ready queue) or chaos-stalled. These are the candidate *holders* of a
/// priority inversion — a blocked high-priority thread whose obstacle
/// sits here at a strictly lower priority is inverted (§6.2).
#[derive(Clone, Debug)]
pub struct RunnableThread {
    /// The runnable-but-not-running thread.
    pub tid: ThreadId,
    /// Its name.
    pub name: String,
    /// Its priority.
    pub priority: Priority,
    /// True if chaos-stalled rather than merely preempted.
    pub stalled: bool,
}

/// One detected priority inversion (§6.2): a high-priority thread
/// blocked on a monitor or metalock whose current holder is runnable at
/// a strictly lower priority — the holder would finish and release if
/// only it were scheduled, but middle-priority work keeps it off the
/// CPU. The paper's remedies are metalock cycle donation and a
/// SystemDaemon-style priority boost; see
/// `resilience`'s supervisor for the recovery ladder that applies them.
#[derive(Clone, Debug)]
pub struct Inversion {
    /// The blocked high-priority thread.
    pub victim: ThreadId,
    /// The victim's name.
    pub victim_name: String,
    /// The victim's priority.
    pub victim_priority: Priority,
    /// What the victim is blocked in (Monitor or Metalock).
    pub kind: BlockKind,
    /// Name of the contested resource.
    pub resource: String,
    /// The lower-priority thread holding the resource.
    pub holder: ThreadId,
    /// The holder's name.
    pub holder_name: String,
    /// The holder's (lower) priority.
    pub holder_priority: Priority,
    /// True if the holder is chaos-stalled (rejuvenation is the fix)
    /// rather than preempted (donation or a boost is the fix).
    pub holder_stalled: bool,
}

/// A snapshot of every blocking relationship in a live simulation.
#[derive(Clone, Debug)]
pub struct WaitForGraph {
    /// Virtual time of the snapshot.
    pub now: SimTime,
    /// Every blocked thread (CV waiters included, for rendering).
    pub threads: Vec<WaitingThread>,
    /// Chaos-stalled threads: `(tid, name)`. Not blocked on anything,
    /// but often the *root* other threads are blocked behind.
    pub stalled: Vec<(ThreadId, String)>,
    /// Live threads that could run but are not running (preempted or
    /// chaos-stalled), with their priorities: the candidate holders for
    /// [`WaitForGraph::inversions`].
    pub runnable: Vec<RunnableThread>,
}

impl WaitForGraph {
    /// Threads that look genuinely stuck: blocked for at least
    /// `threshold`, excluding CV waits (a timeout or a future notify can
    /// rescue those; the GVX worlds even park by-design eternal waiters
    /// on timeout-less CVs).
    pub fn wedged(&self, threshold: SimDuration) -> Vec<&WaitingThread> {
        self.threads
            .iter()
            .filter(|w| !matches!(w.kind, BlockKind::Condition { .. }))
            .filter(|w| self.now.saturating_since(w.since) >= threshold)
            .collect()
    }

    /// Detects priority inversions (§6.2): threads blocked on a monitor
    /// or metalock for at least `threshold` whose holder is runnable —
    /// preempted or chaos-stalled — at a *strictly lower* priority. CV
    /// and join waits carry no holder semantics and are never reported.
    pub fn inversions(&self, threshold: SimDuration) -> Vec<Inversion> {
        let mut out = Vec::new();
        for w in &self.threads {
            if !matches!(w.kind, BlockKind::Monitor | BlockKind::Metalock) {
                continue;
            }
            if self.now.saturating_since(w.since) < threshold {
                continue;
            }
            let Some(holder) = w.blocked_on else { continue };
            let Some(r) = self.runnable.iter().find(|r| r.tid == holder) else {
                continue;
            };
            if r.priority >= w.priority {
                continue;
            }
            out.push(Inversion {
                victim: w.tid,
                victim_name: w.name.clone(),
                victim_priority: w.priority,
                kind: w.kind.clone(),
                resource: w.resource.clone(),
                holder,
                holder_name: r.name.clone(),
                holder_priority: r.priority,
                holder_stalled: r.stalled,
            });
        }
        out
    }

    /// Follows `tid`'s wait-for edges to the thread ultimately obstructing
    /// it: the first thread on the chain with no outgoing edge (a holder
    /// that is runnable, stalled, or blocked on a resource with no owner).
    /// Returns `None` if `tid` is not blocked, or the chain is a cycle
    /// with no root.
    pub fn root_of(&self, tid: ThreadId) -> Option<ThreadId> {
        let edges: BTreeMap<ThreadId, Option<ThreadId>> =
            self.threads.iter().map(|w| (w.tid, w.blocked_on)).collect();
        let mut cur = tid;
        let mut seen = vec![cur];
        loop {
            match edges.get(&cur) {
                // Not blocked at all: only a root if we moved to it.
                None => return (cur != tid).then_some(cur),
                // Blocked, but on a resource with no owning thread.
                Some(None) => return Some(cur),
                Some(Some(next)) => {
                    if seen.contains(next) {
                        return None; // Cycle: no root to act on.
                    }
                    seen.push(*next);
                    cur = *next;
                }
            }
        }
    }

    /// Extracts every distinct wait-for cycle (each reported once, rotated
    /// to start at its smallest member). CV edges carry no `blocked_on`,
    /// so cycles here are true mutual-wait deadlocks: monitors, metalocks,
    /// and joins.
    pub fn cycles(&self) -> Vec<Vec<ThreadId>> {
        let edges: BTreeMap<ThreadId, Option<ThreadId>> =
            self.threads.iter().map(|w| (w.tid, w.blocked_on)).collect();
        let mut found: Vec<Vec<ThreadId>> = Vec::new();
        for &start in edges.keys() {
            let mut path = vec![start];
            let mut cur = start;
            while let Some(Some(next)) = edges.get(&cur) {
                if let Some(pos) = path.iter().position(|t| t == next) {
                    let mut cycle = path[pos..].to_vec();
                    // Canonical rotation: smallest tid first.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| t.as_u32())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if !found.contains(&cycle) {
                        found.push(cycle);
                    }
                    break;
                }
                path.push(*next);
                cur = *next;
            }
        }
        found
    }

    /// Human-readable rendering: one line per blocked thread, with wait
    /// age, plus any cycles and stalled roots.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "wait-for graph at t={}us:", self.now.as_micros());
        for w in &self.threads {
            let age = self.now.saturating_since(w.since);
            let on = match w.blocked_on {
                Some(t) => {
                    let name = self
                        .threads
                        .iter()
                        .find(|x| x.tid == t)
                        .map(|x| x.name.as_str())
                        .or_else(|| {
                            self.stalled
                                .iter()
                                .find(|(s, _)| *s == t)
                                .map(|(_, n)| n.as_str())
                        })
                        .unwrap_or("<running>");
                    format!(" <- held by {name} (t{})", t.as_u32())
                }
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {} (t{} p{}) {} on {} for {}us{}",
                w.name,
                w.tid.as_u32(),
                w.priority.get(),
                w.kind.tag(),
                w.resource,
                age.as_micros(),
                on,
            );
        }
        for (tid, name) in &self.stalled {
            let _ = writeln!(out, "  {} (t{}) chaos-stalled", name, tid.as_u32());
        }
        for cycle in self.cycles() {
            let names: Vec<String> = cycle
                .iter()
                .map(|t| {
                    self.threads
                        .iter()
                        .find(|w| w.tid == *t)
                        .map(|w| format!("{} (t{})", w.name, t.as_u32()))
                        .unwrap_or_else(|| format!("t{}", t.as_u32()))
                })
                .collect();
            let _ = writeln!(out, "  CYCLE: {}", names.join(" -> "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiting(tid: u32, name: &str, on: Option<u32>) -> WaitingThread {
        WaitingThread {
            tid: ThreadId::from_u32(tid),
            name: name.to_string(),
            priority: Priority::of(4),
            kind: BlockKind::Monitor,
            resource: "m".to_string(),
            blocked_on: on.map(ThreadId::from_u32),
            since: SimTime::ZERO,
        }
    }

    fn graph(threads: Vec<WaitingThread>) -> WaitForGraph {
        WaitForGraph {
            now: SimTime::from_micros(2_000_000),
            threads,
            stalled: Vec::new(),
            runnable: Vec::new(),
        }
    }

    fn runnable(tid: u32, name: &str, prio: u8, stalled: bool) -> RunnableThread {
        RunnableThread {
            tid: ThreadId::from_u32(tid),
            name: name.to_string(),
            priority: Priority::of(prio),
            stalled,
        }
    }

    #[test]
    fn root_follows_chain_to_unblocked_holder() {
        // a -> b -> c, where c is not in the blocked set (runnable).
        let g = graph(vec![waiting(0, "a", Some(1)), waiting(1, "b", Some(2))]);
        assert_eq!(
            g.root_of(ThreadId::from_u32(0)),
            Some(ThreadId::from_u32(2))
        );
        assert_eq!(
            g.root_of(ThreadId::from_u32(1)),
            Some(ThreadId::from_u32(2))
        );
        // c itself is not blocked: no root.
        assert_eq!(g.root_of(ThreadId::from_u32(2)), None);
    }

    #[test]
    fn cycles_are_found_once_in_canonical_rotation() {
        // 1 -> 2 -> 0 -> 1, plus a tail 3 -> 1 feeding into it.
        let g = graph(vec![
            waiting(1, "a", Some(2)),
            waiting(2, "b", Some(0)),
            waiting(0, "c", Some(1)),
            waiting(3, "d", Some(1)),
        ]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(
            cycles[0],
            vec![
                ThreadId::from_u32(0),
                ThreadId::from_u32(1),
                ThreadId::from_u32(2)
            ]
        );
        // A thread inside a cycle has no actionable root.
        assert_eq!(g.root_of(ThreadId::from_u32(1)), None);
        // The tail's chain dies in the cycle too.
        assert_eq!(g.root_of(ThreadId::from_u32(3)), None);
    }

    #[test]
    fn wedged_excludes_cv_waits_and_fresh_blocks() {
        let mut cv = waiting(0, "cv-waiter", None);
        cv.kind = BlockKind::Condition { has_timeout: false };
        let mut fresh = waiting(1, "fresh", None);
        fresh.since = SimTime::from_micros(1_999_000);
        let old = waiting(2, "old", None);
        let g = graph(vec![cv, fresh, old]);
        let wedged = g.wedged(SimDuration::from_micros(1_500_000));
        assert_eq!(wedged.len(), 1);
        assert_eq!(wedged[0].name, "old");
    }

    #[test]
    fn inversion_needs_lower_priority_runnable_holder() {
        let mut victim = waiting(0, "high", Some(1));
        victim.priority = Priority::of(6);
        let g = WaitForGraph {
            now: SimTime::from_micros(2_000_000),
            threads: vec![victim.clone()],
            stalled: Vec::new(),
            runnable: vec![runnable(1, "low-holder", 2, false)],
        };
        let invs = g.inversions(SimDuration::from_micros(1_000_000));
        assert_eq!(invs.len(), 1);
        let inv = &invs[0];
        assert_eq!(inv.victim_name, "high");
        assert_eq!(inv.holder_name, "low-holder");
        assert!(!inv.holder_stalled);
        assert_eq!(inv.kind, BlockKind::Monitor);

        // An equal-priority holder is contention, not inversion.
        let g2 = WaitForGraph {
            runnable: vec![runnable(1, "peer", 6, false)],
            ..g.clone()
        };
        assert!(g2
            .inversions(SimDuration::from_micros(1_000_000))
            .is_empty());

        // A holder that is itself blocked (not runnable) is a deadlock
        // question, not an inversion.
        let g3 = WaitForGraph {
            runnable: Vec::new(),
            ..g.clone()
        };
        assert!(g3
            .inversions(SimDuration::from_micros(1_000_000))
            .is_empty());

        // A fresh block has not aged into an inversion yet.
        assert!(g.inversions(SimDuration::from_micros(2_500_000)).is_empty());
    }

    #[test]
    fn inversion_reports_stalled_holders_as_such() {
        let mut victim = waiting(0, "high", Some(1));
        victim.priority = Priority::of(6);
        victim.kind = BlockKind::Metalock;
        let g = WaitForGraph {
            now: SimTime::from_micros(2_000_000),
            threads: vec![victim],
            stalled: vec![(ThreadId::from_u32(1), "low".to_string())],
            runnable: vec![runnable(1, "low", 2, true)],
        };
        let invs = g.inversions(SimDuration::ZERO);
        assert_eq!(invs.len(), 1);
        assert!(invs[0].holder_stalled);
        assert_eq!(invs[0].kind, BlockKind::Metalock);
    }

    #[test]
    fn property_cv_waiters_never_wedge_or_invert() {
        // Satellite property: across pseudo-random graphs, a thread
        // blocked in a CV wait — with or without timeout — never shows
        // up in `wedged` or `inversions`, no matter its age, priority,
        // or how the runnable set looks.
        let mut rng = crate::SplitMix64::new(0xC0FFEE);
        for round in 0..200 {
            let n = 1 + rng.next_below(8) as u32;
            let mut threads = Vec::new();
            let mut cv_tids = Vec::new();
            for tid in 0..n {
                let mut w = waiting(tid, &format!("t{tid}"), None);
                w.priority = Priority::of(1 + rng.next_below(7) as u8);
                // Age anywhere from 0 to the full 2s snapshot window.
                w.since = SimTime::from_micros(rng.next_below(2_000_001));
                w.blocked_on = (rng.next_below(2) == 0)
                    .then(|| ThreadId::from_u32(n + rng.next_below(3) as u32));
                if rng.next_below(2) == 0 {
                    w.kind = BlockKind::Condition {
                        has_timeout: rng.next_below(2) == 0,
                    };
                    cv_tids.push(w.tid);
                }
                threads.push(w);
            }
            let runnable: Vec<RunnableThread> = (0..rng.next_below(4))
                .map(|i| {
                    runnable(
                        n + i as u32,
                        &format!("r{i}"),
                        1 + rng.next_below(7) as u8,
                        rng.next_below(2) == 0,
                    )
                })
                .collect();
            let g = WaitForGraph {
                now: SimTime::from_micros(2_000_000),
                threads,
                stalled: Vec::new(),
                runnable,
            };
            for w in g.wedged(SimDuration::ZERO) {
                assert!(
                    !cv_tids.contains(&w.tid),
                    "round {round}: CV waiter {} reported wedged",
                    w.name
                );
            }
            for inv in g.inversions(SimDuration::ZERO) {
                assert!(
                    !cv_tids.contains(&inv.victim),
                    "round {round}: CV waiter {} reported inverted",
                    inv.victim_name
                );
            }
        }
    }

    #[test]
    fn render_names_holders_and_cycles() {
        let g = graph(vec![waiting(0, "a", Some(1)), waiting(1, "b", Some(0))]);
        let r = g.render();
        assert!(r.contains("CYCLE: a (t0) -> b (t1)"), "{r}");
        assert!(r.contains("held by b"), "{r}");
    }
}
