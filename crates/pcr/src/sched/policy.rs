//! Pluggable scheduling policies.
//!
//! The dispatch decision of [`Sim`](crate::Sim) sits behind the
//! [`Scheduler`] trait: the simulator owns thread state, timers, and the
//! rendezvous protocol, and delegates *which runnable thread goes next*
//! to the installed policy. The paper's scheduler — 7 strict priorities,
//! round-robin within a level, 50 ms quantum — is the default
//! ([`RoundRobin`]); three alternatives ship alongside it for the
//! scheduling study: [`Cfs`] (virtual-runtime fair queueing),
//! [`Lottery`] (ticket-proportional randomized selection), and [`Mlfq`]
//! (multi-level feedback with demotion on quantum expiry and boost on
//! wakeup). Select one with
//! [`SimConfig::with_policy`](crate::SimConfig::with_policy) or the
//! `--policy` flag of the `repro` CLI.
//!
//! # Contract
//!
//! Every policy must uphold the invariants that make a run replayable
//! (see `docs/SCHEDULING.md` for the long-form version):
//!
//! * **Determinism under a fixed seed.** A policy may consult *only* its
//!   own state, the [`PolicyCtx`] it is handed, and (if it needs
//!   randomness) a private RNG stream derived from the sim seed with a
//!   policy-specific salt. It must never read wall-clock time, addresses,
//!   or iteration order of unordered containers.
//! * **RNG stream discipline.** The simulator's main stream (daemon
//!   donation picks) and chaos stream (fault injection) are off limits:
//!   drawing from either would shift every later decision and break
//!   replay of recorded fault schedules. [`Lottery`] derives its own
//!   `SplitMix64` from `seed ^ LOTTERY_SEED_SALT`.
//! * **`in_ready` bookkeeping.** The simulator sets
//!   `in_ready`/`ready_gen` on a thread before calling
//!   [`Scheduler::on_ready`]; the policy must clear `in_ready` whenever
//!   it hands a thread back from [`Scheduler::next`] or drops it in
//!   [`Scheduler::remove`]. Policies that keep entries in the shared
//!   queue-node arena use the generation to tombstone stale entries in
//!   O(1) exactly as the pre-trait scheduler did.
//! * **No hidden ready threads.** After `on_ready(tid, ..)` and until
//!   `next`/`remove` returns it, `tid` must be reachable via `next`,
//!   counted by `ready_count_excluding`, and enumerated by
//!   `nth_ready_excluding` in a deterministic order.

use std::collections::BTreeSet;

use super::Tcb;
use crate::arena::{NodeArena, QList};
use crate::rng::SplitMix64;
use crate::thread::{Priority, ThreadId};
use crate::time::SimDuration;

/// Salt XOR-ed into the sim seed to derive the [`Lottery`] policy's
/// private RNG stream, keeping it independent from both the main and the
/// chaos streams.
pub const LOTTERY_SEED_SALT: u64 = 0x107E_21C7_ED5A_17ED;

/// Which scheduling policy a [`Sim`](crate::Sim) dispatches with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyKind {
    /// The paper's scheduler: 7 strict priorities, round-robin within a
    /// level, fixed quantum. The default, byte-identical to the
    /// pre-trait dispatcher.
    #[default]
    RoundRobin,
    /// CFS-style fair scheduling: lowest virtual runtime first, with
    /// priority acting as a weight on how fast virtual runtime advances.
    Cfs,
    /// Lottery scheduling: each dispatch draws a winner with
    /// priority-proportional tickets from a dedicated seeded RNG stream.
    Lottery,
    /// Multi-level feedback queue: demotion on quantum expiry, boost to
    /// the base priority on wakeup, shorter slices at higher levels.
    Mlfq,
}

impl PolicyKind {
    /// Every policy, in tournament display order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RoundRobin,
        PolicyKind::Cfs,
        PolicyKind::Lottery,
        PolicyKind::Mlfq,
    ];

    /// The CLI/JSON tag (`rr`, `cfs`, `lottery`, `mlfq`).
    pub const fn as_str(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "rr",
            PolicyKind::Cfs => "cfs",
            PolicyKind::Lottery => "lottery",
            PolicyKind::Mlfq => "mlfq",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rr" | "round-robin" | "roundrobin" => Ok(PolicyKind::RoundRobin),
            "cfs" | "fair" => Ok(PolicyKind::Cfs),
            "lottery" => Ok(PolicyKind::Lottery),
            "mlfq" => Ok(PolicyKind::Mlfq),
            other => Err(format!(
                "unknown policy {other:?} (expected rr, cfs, lottery, or mlfq)"
            )),
        }
    }
}

/// The simulator state a policy may touch: the shared queue-node arena
/// (ready-queue entries live next to CV-wait entries in one slab) and
/// the thread table. Constructed by the simulator around each policy
/// call; not constructible from outside the crate.
pub struct PolicyCtx<'a> {
    pub(super) arena: &'a mut NodeArena,
    pub(super) threads: &'a mut Vec<Tcb>,
}

impl PolicyCtx<'_> {
    /// The zero-based priority level of `tid` (0 = priority 1, lowest).
    fn prio_index(&self, tid: ThreadId) -> usize {
        self.threads[tid.0 as usize].priority.index()
    }

    /// The current ready-entry generation of `tid`.
    fn ready_gen(&self, tid: ThreadId) -> u64 {
        self.threads[tid.0 as usize].ready_gen as u64
    }

    /// True iff an arena entry `(tid, gen)` is live (not a tombstone).
    fn is_live(&self, tid: ThreadId, gen: u64) -> bool {
        let t = &self.threads[tid.0 as usize];
        t.in_ready && t.ready_gen as u64 == gen
    }

    /// Clears the live flag when the policy dequeues or removes `tid`.
    fn clear_in_ready(&mut self, tid: ThreadId) {
        self.threads[tid.0 as usize].in_ready = false;
    }

    /// True iff `tid` currently has a live ready entry.
    fn in_ready(&self, tid: ThreadId) -> bool {
        self.threads[tid.0 as usize].in_ready
    }
}

/// A scheduling policy: decides which ready thread runs next, when the
/// running thread is preempted, and how long its timeslice is.
///
/// The trait is public so policies can be named in configuration, but it
/// is not implementable outside this crate: every method exchanges a
/// [`PolicyCtx`] whose contents are crate-private. The four shipped
/// policies are constructed via [`make`] from a [`PolicyKind`].
pub trait Scheduler: Send {
    /// Which policy this is, for labels and config round-trips.
    fn kind(&self) -> PolicyKind;

    /// `tid` became runnable. `front` requests LIFO placement among
    /// equals (used when a preempted thread should resume first);
    /// `wakeup` is true when the thread was blocked (not merely
    /// preempted or yielding) — MLFQ boosts on it.
    fn on_ready(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, front: bool, wakeup: bool);

    /// Picks and dequeues the next thread to run, skipping `excluded`
    /// (the paper's `YieldButNotToMe`). Must clear the thread's
    /// `in_ready` flag via the context.
    fn next(&mut self, ctx: &mut PolicyCtx<'_>, excluded: Option<ThreadId>) -> Option<ThreadId>;

    /// Removes `tid` from the ready structure. The caller guarantees the
    /// thread currently has a live entry. Must clear `in_ready`.
    fn remove(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId);

    /// Should some ready thread preempt `running` right now? `excluded`
    /// is a donor shielded from preempting its beneficiary.
    fn preempts(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        running: ThreadId,
        excluded: Option<ThreadId>,
    ) -> bool;

    /// After `running`'s quantum expired: is there a ready thread that
    /// should get the CPU before `running` continues? `true` requeues
    /// the thread; `false` grants it a fresh slice immediately.
    fn has_competitor(&mut self, ctx: &mut PolicyCtx<'_>, running: ThreadId) -> bool;

    /// The quantum to grant `tid` on dispatch. `default` is the
    /// configured quantum; the paper's policy returns it unchanged.
    fn timeslice(&self, tid: ThreadId, priority: Priority, default: SimDuration) -> SimDuration {
        let _ = (tid, priority);
        default
    }

    /// `tid` consumed `d` of virtual CPU at `priority`. CFS advances its
    /// virtual runtime here; the accounting mirrors
    /// [`SimStats::cpu_by_priority`](crate::SimStats).
    fn on_cpu(&mut self, tid: ThreadId, priority: Priority, d: SimDuration) {
        let _ = (tid, priority, d);
    }

    /// `tid` ran through a full quantum without blocking. MLFQ demotes
    /// here, before the simulator decides whether to requeue.
    fn on_quantum_expired(&mut self, tid: ThreadId) {
        let _ = tid;
    }

    /// `tid` blocked (monitor, CV, sleep, join, …) and left the CPU
    /// without returning to the ready structure. Informational; no
    /// shipped policy keeps per-block state, but the hook completes the
    /// lifecycle for policies that would.
    fn on_block(&mut self, tid: ThreadId) {
        let _ = tid;
    }

    /// `tid`'s base priority changed while it was *not* in the ready
    /// structure (running or blocked); a ready thread is re-queued via
    /// [`Scheduler::remove`]/[`Scheduler::on_ready`] instead. MLFQ
    /// resets the thread's feedback level to the new base.
    fn on_priority_changed(&mut self, tid: ThreadId, priority: Priority) {
        let _ = (tid, priority);
    }

    /// How many ready threads there are, not counting `excluded` — the
    /// candidate count for the SystemDaemon's donation pick.
    fn ready_count_excluding(&self, ctx: &PolicyCtx<'_>, excluded: ThreadId) -> usize;

    /// The `n`-th ready thread (0-based) in this policy's deterministic
    /// enumeration order, skipping `excluded`. The daemon dispatches its
    /// donation to the thread the main RNG stream picked by index, so
    /// the order must be stable for a given ready-set state.
    fn nth_ready_excluding(
        &self,
        ctx: &PolicyCtx<'_>,
        n: usize,
        excluded: ThreadId,
    ) -> Option<ThreadId>;
}

/// Constructs the policy for `kind`. `seed` is the sim seed; policies
/// that need randomness derive a private stream from it.
pub fn make(kind: PolicyKind, seed: u64) -> Box<dyn Scheduler> {
    match kind {
        PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
        PolicyKind::Cfs => Box::new(Cfs::new()),
        PolicyKind::Lottery => Box::new(Lottery::new(seed)),
        PolicyKind::Mlfq => Box::new(Mlfq::new()),
    }
}

/// Grows `v` with `fill` so `v[tid]` is addressable.
fn ensure<T: Clone>(v: &mut Vec<T>, tid: ThreadId, fill: T) {
    let idx = tid.0 as usize;
    if v.len() <= idx {
        v.resize(idx + 1, fill);
    }
}

// ---- round-robin (the paper's scheduler) --------------------------------

/// The paper's dispatcher: 7 strict priorities, FIFO round-robin within
/// a level, fixed quantum. Per-level intrusive deques live in the shared
/// queue-node arena; a bitmask finds the highest nonempty level with one
/// leading-zeros instruction, and mid-queue removals are O(1)
/// generation-checked tombstones. Behavior (and arena allocation
/// pattern) is byte-identical to the pre-trait scheduler.
pub struct RoundRobin {
    /// Per-priority ready queues; entries are `(tid, ready_gen)`.
    queues: [QList; Priority::LEVELS],
    /// Live-entry count per priority level (tombstones excluded).
    live: [u32; Priority::LEVELS],
    /// Bit `i` set iff `live[i] > 0`.
    mask: u32,
}

impl RoundRobin {
    /// An empty ready structure.
    pub fn new() -> Self {
        RoundRobin {
            queues: Default::default(),
            live: [0; Priority::LEVELS],
            mask: 0,
        }
    }

    /// Marks a dequeued level slot dead and updates count and mask. The
    /// caller has already taken the entry out of (or tombstoned it in)
    /// the deque.
    fn mark_dequeued(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, lvl: usize) {
        ctx.clear_in_ready(tid);
        self.live[lvl] -= 1;
        if self.live[lvl] == 0 {
            self.mask &= !(1 << lvl);
            // Whatever remains in the list is tombstones.
            ctx.arena.clear(&mut self.queues[lvl]);
        }
    }

    /// Pops the frontmost *live* entry at `lvl`, dropping tombstones on
    /// the way. Returns `None` only if the level has no live entry.
    fn pop_at(&mut self, ctx: &mut PolicyCtx<'_>, lvl: usize) -> Option<ThreadId> {
        while let Some((tid, gen)) = ctx.arena.pop_front(&mut self.queues[lvl]) {
            if ctx.is_live(tid, gen) {
                self.mark_dequeued(ctx, tid, lvl);
                return Some(tid);
            }
        }
        None
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        RoundRobin::new()
    }
}

impl Scheduler for RoundRobin {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RoundRobin
    }

    fn on_ready(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, front: bool, _wakeup: bool) {
        let gen = ctx.ready_gen(tid);
        let lvl = ctx.prio_index(tid);
        if front {
            ctx.arena.push_front(&mut self.queues[lvl], tid, gen);
        } else {
            ctx.arena.push_back(&mut self.queues[lvl], tid, gen);
        }
        self.live[lvl] += 1;
        self.mask |= 1 << lvl;
    }

    fn next(&mut self, ctx: &mut PolicyCtx<'_>, excluded: Option<ThreadId>) -> Option<ThreadId> {
        let Some(ex) = excluded else {
            // Hot path: one leading-zeros instruction finds the highest
            // nonempty priority; the pop drops tombstones lazily.
            if self.mask == 0 {
                return None;
            }
            let lvl = (31 - self.mask.leading_zeros()) as usize;
            return self.pop_at(ctx, lvl);
        };
        // Exclusion path (YieldButNotToMe): scan for the first live
        // non-excluded entry, then unlink it in O(1). Skip levels whose
        // only live entry is the excluded thread itself.
        let mut mask = self.mask;
        while mask != 0 {
            let lvl = (31 - mask.leading_zeros()) as usize;
            mask &= !(1 << lvl);
            if ctx.in_ready(ex) && ctx.prio_index(ex) == lvl && self.live[lvl] == 1 {
                continue;
            }
            let hit = ctx
                .arena
                .iter(&self.queues[lvl])
                .find(|&(_, tid, gen)| tid != ex && ctx.is_live(tid, gen));
            if let Some((node, tid, _)) = hit {
                ctx.arena.unlink(&mut self.queues[lvl], node);
                self.mark_dequeued(ctx, tid, lvl);
                return Some(tid);
            }
        }
        None
    }

    fn remove(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId) {
        // O(1): the queue entry stays behind as a tombstone.
        let lvl = ctx.prio_index(tid);
        self.mark_dequeued(ctx, tid, lvl);
    }

    fn preempts(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        running: ThreadId,
        excluded: Option<ThreadId>,
    ) -> bool {
        let prio = ctx.prio_index(running);
        let above = self.mask & !((1u32 << (prio + 1)) - 1);
        let Some(ex) = excluded else {
            return above != 0;
        };
        if above == 0 {
            return false;
        }
        // The excluded thread occupies at most one level; discount it
        // when it is that level's only live entry.
        if ctx.in_ready(ex) {
            let lvl = ctx.prio_index(ex);
            if lvl > prio && self.live[lvl] == 1 {
                return above & !(1 << lvl) != 0;
            }
        }
        true
    }

    fn has_competitor(&mut self, ctx: &mut PolicyCtx<'_>, running: ThreadId) -> bool {
        self.mask >> ctx.prio_index(running) != 0
    }

    fn ready_count_excluding(&self, ctx: &PolicyCtx<'_>, excluded: ThreadId) -> usize {
        let mut n: usize = self.live.iter().map(|&c| c as usize).sum();
        if ctx.in_ready(excluded) {
            n -= 1;
        }
        n
    }

    fn nth_ready_excluding(
        &self,
        ctx: &PolicyCtx<'_>,
        n: usize,
        excluded: ThreadId,
    ) -> Option<ThreadId> {
        // Live entries in (level, FIFO) order — the same order the
        // pre-tombstone queues had, so the daemon's RNG pick lands on
        // the same thread.
        let mut seen = 0usize;
        for lvl in 0..Priority::LEVELS {
            for (_, t, gen) in ctx.arena.iter(&self.queues[lvl]) {
                if t != excluded && ctx.is_live(t, gen) {
                    if seen == n {
                        return Some(t);
                    }
                    seen += 1;
                }
            }
        }
        None
    }
}

// ---- CFS-style fair scheduling ------------------------------------------

/// Virtual-runtime resolution: one microsecond of CPU at the lowest
/// weight advances virtual runtime by this many units.
const CFS_SCALE: u64 = 1024;

/// A waking thread preempts the running one only when it trails by more
/// than this much virtual runtime (1 ms at weight 1), bounding switch
/// churn the way CFS's wakeup granularity does.
const CFS_WAKEUP_GRANULARITY: u64 = 1000 * CFS_SCALE;

/// CFS-style fair scheduling: the ready thread with the lowest virtual
/// runtime runs next. Priority is a *weight*, not a strict order —
/// each level doubles the weight (priority 7 earns 64× the CPU share of
/// priority 1 under contention), and virtual runtime advances as
/// `cpu / weight`, mirroring the per-priority accounting that
/// [`SimStats::cpu_by_priority`](crate::SimStats) already keeps. A
/// monotone watermark places wakers at the current fair position so
/// sleepers cannot hoard credit.
pub struct Cfs {
    /// Ready threads ordered by `(virtual runtime, tid)`.
    queue: BTreeSet<(u64, u32)>,
    /// Accumulated weighted virtual runtime per thread.
    vruntime: Vec<u64>,
    /// The key each in-queue thread was inserted under (needed for
    /// exact removal).
    key: Vec<u64>,
    /// Monotone floor: new arrivals start at least here.
    min_vruntime: u64,
}

/// The CPU-share weight of a priority level under [`Cfs`] and the
/// ticket count under [`Lottery`]: each of the paper's 7 levels doubles
/// it (1, 2, 4, … 64).
pub fn weight(priority: Priority) -> u64 {
    1 << priority.index()
}

impl Cfs {
    /// An empty fair-queueing structure.
    pub fn new() -> Self {
        Cfs {
            queue: BTreeSet::new(),
            vruntime: Vec::new(),
            key: Vec::new(),
            min_vruntime: 0,
        }
    }

    fn first_excluding(&self, excluded: Option<ThreadId>) -> Option<(u64, u32)> {
        self.queue
            .iter()
            .find(|&&(_, t)| excluded != Some(ThreadId(t)))
            .copied()
    }
}

impl Default for Cfs {
    fn default() -> Self {
        Cfs::new()
    }
}

impl Scheduler for Cfs {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Cfs
    }

    fn on_ready(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, _front: bool, _wakeup: bool) {
        ensure(&mut self.vruntime, tid, 0);
        ensure(&mut self.key, tid, 0);
        let idx = tid.0 as usize;
        // Place at the fair frontier: a thread that slept keeps no
        // banked credit below the watermark.
        let vr = self.vruntime[idx].max(self.min_vruntime);
        self.vruntime[idx] = vr;
        self.key[idx] = vr;
        self.queue.insert((vr, tid.0));
        let _ = ctx;
    }

    fn next(&mut self, ctx: &mut PolicyCtx<'_>, excluded: Option<ThreadId>) -> Option<ThreadId> {
        let (key, raw) = self.first_excluding(excluded)?;
        self.queue.remove(&(key, raw));
        self.min_vruntime = self.min_vruntime.max(key);
        let tid = ThreadId(raw);
        ctx.clear_in_ready(tid);
        Some(tid)
    }

    fn remove(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId) {
        let removed = self.queue.remove(&(self.key[tid.0 as usize], tid.0));
        debug_assert!(removed, "CFS removal of a thread not in the queue");
        ctx.clear_in_ready(tid);
    }

    fn preempts(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        running: ThreadId,
        excluded: Option<ThreadId>,
    ) -> bool {
        ensure(&mut self.vruntime, running, 0);
        let Some((key, _)) = self.first_excluding(excluded) else {
            return false;
        };
        let _ = ctx;
        key.saturating_add(CFS_WAKEUP_GRANULARITY) < self.vruntime[running.0 as usize]
    }

    fn has_competitor(&mut self, _ctx: &mut PolicyCtx<'_>, _running: ThreadId) -> bool {
        !self.queue.is_empty()
    }

    fn on_cpu(&mut self, tid: ThreadId, priority: Priority, d: SimDuration) {
        ensure(&mut self.vruntime, tid, 0);
        self.vruntime[tid.0 as usize] += d.as_micros() * CFS_SCALE / weight(priority);
    }

    fn ready_count_excluding(&self, _ctx: &PolicyCtx<'_>, excluded: ThreadId) -> usize {
        self.queue.iter().filter(|&&(_, t)| t != excluded.0).count()
    }

    fn nth_ready_excluding(
        &self,
        _ctx: &PolicyCtx<'_>,
        n: usize,
        excluded: ThreadId,
    ) -> Option<ThreadId> {
        self.queue
            .iter()
            .filter(|&&(_, t)| t != excluded.0)
            .nth(n)
            .map(|&(_, t)| ThreadId(t))
    }
}

// ---- lottery scheduling -------------------------------------------------

/// Lottery scheduling: every pick draws a ticket from a dedicated RNG
/// stream (`seed ^ LOTTERY_SEED_SALT`) and walks the ready list
/// accumulating priority-proportional ticket counts ([`weight`]) until
/// the draw lands. There is no preemption on wakeup — probabilistic
/// fairness replaces strict priority — so a compute-bound thread runs
/// out its quantum even when a higher-priority thread wakes. Starvation
/// is impossible in expectation: every ready thread holds at least one
/// ticket.
pub struct Lottery {
    /// Ready threads in enqueue order (swap-removed on dequeue).
    entries: Vec<ThreadId>,
    /// Position of each thread in `entries` (`NO_POS` when absent).
    pos: Vec<u32>,
    /// The policy's private RNG stream.
    rng: SplitMix64,
}

/// Sentinel for "not in the entries vector".
const NO_POS: u32 = u32::MAX;

impl Lottery {
    /// An empty lottery with its RNG derived from the sim seed.
    pub fn new(seed: u64) -> Self {
        Lottery {
            entries: Vec::new(),
            pos: Vec::new(),
            rng: SplitMix64::new(seed ^ LOTTERY_SEED_SALT),
        }
    }

    fn take_at(&mut self, ctx: &mut PolicyCtx<'_>, i: usize) -> ThreadId {
        let tid = self.entries.swap_remove(i);
        self.pos[tid.0 as usize] = NO_POS;
        if let Some(&moved) = self.entries.get(i) {
            self.pos[moved.0 as usize] = i as u32;
        }
        ctx.clear_in_ready(tid);
        tid
    }
}

impl Scheduler for Lottery {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lottery
    }

    fn on_ready(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, _front: bool, _wakeup: bool) {
        ensure(&mut self.pos, tid, NO_POS);
        self.pos[tid.0 as usize] = self.entries.len() as u32;
        self.entries.push(tid);
        let _ = ctx;
    }

    fn next(&mut self, ctx: &mut PolicyCtx<'_>, excluded: Option<ThreadId>) -> Option<ThreadId> {
        let total: u64 = self
            .entries
            .iter()
            .filter(|&&t| excluded != Some(t))
            .map(|&t| weight(ctx.threads[t.0 as usize].priority))
            .sum();
        if total == 0 {
            return None;
        }
        let mut draw = self.rng.next_below(total);
        for i in 0..self.entries.len() {
            let t = self.entries[i];
            if excluded == Some(t) {
                continue;
            }
            let tickets = weight(ctx.threads[t.0 as usize].priority);
            if draw < tickets {
                return Some(self.take_at(ctx, i));
            }
            draw -= tickets;
        }
        unreachable!("lottery draw exceeded total tickets");
    }

    fn remove(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId) {
        let i = self.pos[tid.0 as usize];
        debug_assert_ne!(i, NO_POS, "lottery removal of an absent thread");
        self.take_at(ctx, i as usize);
    }

    fn preempts(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _running: ThreadId,
        _excluded: Option<ThreadId>,
    ) -> bool {
        // Fairness comes from the draw, not from priority preemption.
        false
    }

    fn has_competitor(&mut self, _ctx: &mut PolicyCtx<'_>, _running: ThreadId) -> bool {
        !self.entries.is_empty()
    }

    fn ready_count_excluding(&self, _ctx: &PolicyCtx<'_>, excluded: ThreadId) -> usize {
        self.entries.iter().filter(|&&t| t != excluded).count()
    }

    fn nth_ready_excluding(
        &self,
        _ctx: &PolicyCtx<'_>,
        n: usize,
        excluded: ThreadId,
    ) -> Option<ThreadId> {
        self.entries
            .iter()
            .filter(|&&t| t != excluded)
            .nth(n)
            .copied()
    }
}

// ---- multi-level feedback queue -----------------------------------------

/// Multi-level feedback queue over the same 7 levels: a thread *starts*
/// at its base priority's level, is demoted one level (floor 0) each
/// time it burns a full quantum, and is boosted back to its base level
/// whenever it wakes from blocking — so interactive threads hover near
/// the top while compute-bound spinners sink. Higher levels run with
/// shorter timeslices (`default / (1 + level)`), the classic MLFQ
/// interactivity trade. Queue mechanics (intrusive per-level deques,
/// tombstone removal) match [`RoundRobin`], indexed by the *effective*
/// level instead of the base priority.
pub struct Mlfq {
    /// Per-level ready queues; entries are `(tid, ready_gen)`.
    queues: [QList; Priority::LEVELS],
    /// Live-entry count per level.
    live: [u32; Priority::LEVELS],
    /// Bit `i` set iff `live[i] > 0`.
    mask: u32,
    /// Effective feedback level per thread (`NO_LEVEL` until first seen).
    level: Vec<u8>,
}

/// Sentinel for "feedback level not yet assigned".
const NO_LEVEL: u8 = u8::MAX;

impl Mlfq {
    /// An empty feedback queue.
    pub fn new() -> Self {
        Mlfq {
            queues: Default::default(),
            live: [0; Priority::LEVELS],
            mask: 0,
            level: Vec::new(),
        }
    }

    /// The thread's effective level, initialized to its base priority's
    /// level on first contact.
    fn level_of(&mut self, ctx: &PolicyCtx<'_>, tid: ThreadId) -> usize {
        ensure(&mut self.level, tid, NO_LEVEL);
        let idx = tid.0 as usize;
        if self.level[idx] == NO_LEVEL {
            self.level[idx] = ctx.prio_index(tid) as u8;
        }
        self.level[idx] as usize
    }

    fn mark_dequeued(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, lvl: usize) {
        ctx.clear_in_ready(tid);
        self.live[lvl] -= 1;
        if self.live[lvl] == 0 {
            self.mask &= !(1 << lvl);
            ctx.arena.clear(&mut self.queues[lvl]);
        }
    }

    fn pop_at(&mut self, ctx: &mut PolicyCtx<'_>, lvl: usize) -> Option<ThreadId> {
        while let Some((tid, gen)) = ctx.arena.pop_front(&mut self.queues[lvl]) {
            if ctx.is_live(tid, gen) {
                self.mark_dequeued(ctx, tid, lvl);
                return Some(tid);
            }
        }
        None
    }
}

impl Default for Mlfq {
    fn default() -> Self {
        Mlfq::new()
    }
}

impl Scheduler for Mlfq {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Mlfq
    }

    fn on_ready(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId, front: bool, wakeup: bool) {
        let lvl = if wakeup {
            // Boost: a thread that blocked (slept, waited, joined) was
            // interactive — restart it at its base priority's level.
            ensure(&mut self.level, tid, NO_LEVEL);
            let base = ctx.prio_index(tid) as u8;
            self.level[tid.0 as usize] = base;
            base as usize
        } else {
            self.level_of(ctx, tid)
        };
        let gen = ctx.ready_gen(tid);
        if front {
            ctx.arena.push_front(&mut self.queues[lvl], tid, gen);
        } else {
            ctx.arena.push_back(&mut self.queues[lvl], tid, gen);
        }
        self.live[lvl] += 1;
        self.mask |= 1 << lvl;
    }

    fn next(&mut self, ctx: &mut PolicyCtx<'_>, excluded: Option<ThreadId>) -> Option<ThreadId> {
        let Some(ex) = excluded else {
            if self.mask == 0 {
                return None;
            }
            let lvl = (31 - self.mask.leading_zeros()) as usize;
            return self.pop_at(ctx, lvl);
        };
        let ex_lvl = self.level_of(ctx, ex);
        let mut mask = self.mask;
        while mask != 0 {
            let lvl = (31 - mask.leading_zeros()) as usize;
            mask &= !(1 << lvl);
            if ctx.in_ready(ex) && ex_lvl == lvl && self.live[lvl] == 1 {
                continue;
            }
            let hit = ctx
                .arena
                .iter(&self.queues[lvl])
                .find(|&(_, tid, gen)| tid != ex && ctx.is_live(tid, gen));
            if let Some((node, tid, _)) = hit {
                ctx.arena.unlink(&mut self.queues[lvl], node);
                self.mark_dequeued(ctx, tid, lvl);
                return Some(tid);
            }
        }
        None
    }

    fn remove(&mut self, ctx: &mut PolicyCtx<'_>, tid: ThreadId) {
        let lvl = self.level_of(ctx, tid);
        self.mark_dequeued(ctx, tid, lvl);
    }

    fn preempts(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        running: ThreadId,
        excluded: Option<ThreadId>,
    ) -> bool {
        let lvl = self.level_of(ctx, running);
        let above = self.mask & !((1u32 << (lvl + 1)) - 1);
        let Some(ex) = excluded else {
            return above != 0;
        };
        if above == 0 {
            return false;
        }
        if ctx.in_ready(ex) {
            let ex_lvl = self.level_of(ctx, ex);
            if ex_lvl > lvl && self.live[ex_lvl] == 1 {
                return above & !(1 << ex_lvl) != 0;
            }
        }
        true
    }

    fn has_competitor(&mut self, ctx: &mut PolicyCtx<'_>, running: ThreadId) -> bool {
        self.mask >> self.level_of(ctx, running) != 0
    }

    fn timeslice(&self, tid: ThreadId, _priority: Priority, default: SimDuration) -> SimDuration {
        let lvl = self
            .level
            .get(tid.0 as usize)
            .copied()
            .filter(|&l| l != NO_LEVEL)
            .unwrap_or(0) as u64;
        SimDuration::from_micros(default.as_micros() / (1 + lvl))
    }

    fn on_quantum_expired(&mut self, tid: ThreadId) {
        ensure(&mut self.level, tid, NO_LEVEL);
        let l = &mut self.level[tid.0 as usize];
        if *l != NO_LEVEL {
            *l = l.saturating_sub(1);
        } else {
            *l = 0;
        }
    }

    fn on_priority_changed(&mut self, tid: ThreadId, priority: Priority) {
        ensure(&mut self.level, tid, NO_LEVEL);
        self.level[tid.0 as usize] = priority.index() as u8;
    }

    fn ready_count_excluding(&self, ctx: &PolicyCtx<'_>, excluded: ThreadId) -> usize {
        let mut n: usize = self.live.iter().map(|&c| c as usize).sum();
        if ctx.in_ready(excluded) {
            n -= 1;
        }
        n
    }

    fn nth_ready_excluding(
        &self,
        ctx: &PolicyCtx<'_>,
        n: usize,
        excluded: ThreadId,
    ) -> Option<ThreadId> {
        let mut seen = 0usize;
        for lvl in 0..Priority::LEVELS {
            for (_, t, gen) in ctx.arena.iter(&self.queues[lvl]) {
                if t != excluded && ctx.is_live(t, gen) {
                    if seen == n {
                        return Some(t);
                    }
                    seen += 1;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_round_trips_through_str() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.as_str().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("nope".parse::<PolicyKind>().is_err());
        assert_eq!("RR".parse::<PolicyKind>().unwrap(), PolicyKind::RoundRobin);
        assert_eq!("fair".parse::<PolicyKind>().unwrap(), PolicyKind::Cfs);
    }

    #[test]
    fn default_policy_is_the_papers() {
        assert_eq!(PolicyKind::default(), PolicyKind::RoundRobin);
        assert_eq!(
            make(PolicyKind::default(), 7).kind(),
            PolicyKind::RoundRobin
        );
    }

    #[test]
    fn weights_double_per_level() {
        assert_eq!(weight(Priority::MIN), 1);
        assert_eq!(weight(Priority::of(2)), 2);
        assert_eq!(weight(Priority::MAX), 64);
    }
}
