//! Runtime configuration.
//!
//! Defaults reproduce the constants the paper reports for PCR on a
//! SPARCstation-2: a 50 ms timeslice, condition-variable timeout
//! granularity equal to the timeslice, and a sub-50 µs thread switch.

use crate::chaos::ChaosConfig;
use crate::hazard::HazardConfig;
use crate::sched::policy::PolicyKind;
use crate::time::{micros, millis, SimDuration};

/// How NOTIFY schedules the awakened thread (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotifyMode {
    /// The notified thread becomes runnable immediately. On a uniprocessor
    /// this produces a *spurious lock conflict* whenever the notified
    /// thread has higher priority than the notifier: it preempts, fails to
    /// acquire the still-held monitor, and blocks again — a useless trip
    /// through the scheduler.
    Immediate,
    /// The paper's fix: the notification is recorded, but processor
    /// rescheduling is deferred until the notifier exits the monitor, at
    /// which point the awakened thread competes for the now-free mutex.
    DeferredReschedule,
}

/// What FORK does when thread resources are exhausted (§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForkPolicy {
    /// Raise an error the caller must handle ("the machinery for catching
    /// the error is always set up even though ... nobody really knows what
    /// to do about it").
    Error,
    /// The paper's later approach: block inside FORK until resources free
    /// up, producing unexplained delays instead of errors.
    WaitForResources,
}

/// Configuration of the built-in SystemDaemon (§6.2).
///
/// The SystemDaemon is a high-priority sleeper that periodically donates a
/// small timeslice, via directed yield, to a randomly chosen ready thread,
/// ensuring every ready thread gets some CPU regardless of priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemDaemonConfig {
    /// How often the daemon wakes.
    pub period: SimDuration,
    /// The timeslice it donates on each wake.
    pub slice: SimDuration,
}

impl Default for SystemDaemonConfig {
    fn default() -> Self {
        SystemDaemonConfig {
            period: millis(100),
            slice: millis(5),
        }
    }
}

/// Full configuration for a [`crate::Sim`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Scheduler timeslice (paper: 50 ms).
    pub quantum: SimDuration,
    /// Timer granularity for CV timeouts and sleeps. `None` couples it to
    /// the quantum, as in PCR where both were 50 ms — this coupling is what
    /// makes §6.3's quantum-sweep experiment behave as described.
    pub timer_granularity: Option<SimDuration>,
    /// Cost of a thread switch (paper: "less than 50 microseconds ... on a
    /// Sparcstation-2").
    pub switch_cost: SimDuration,
    /// Cost charged inside each monitor/CV primitive.
    pub primitive_cost: SimDuration,
    /// Cost of creating a thread ("the modest cost of creating a thread").
    pub fork_cost: SimDuration,
    /// Length of the short critical section that manipulates a monitor's
    /// queue of waiting threads (the per-monitor *metalock*).
    pub metalock_cost: SimDuration,
    /// Whether a thread blocked on a metalock donates its cycles to the
    /// holder (PCR did; disabling it exposes metalock priority inversion).
    pub metalock_donation: bool,
    /// NOTIFY scheduling mode (§6.1).
    pub notify_mode: NotifyMode,
    /// FORK behavior at the thread limit (§5.4).
    pub fork_policy: ForkPolicy,
    /// Maximum number of live threads.
    pub max_threads: usize,
    /// Spawn the SystemDaemon at startup.
    pub system_daemon: Option<SystemDaemonConfig>,
    /// Seed for all randomized decisions (daemon donation targets and any
    /// workload jitter derived through [`crate::ThreadCtx::rng`]).
    pub seed: u64,
    /// Fault injection (default: inject nothing). Chaos draws come from a
    /// dedicated stream derived from `seed`, so enabling injection does
    /// not perturb the scheduler's own random decisions and a given
    /// `(seed, chaos)` pair replays byte-identically.
    pub chaos: ChaosConfig,
    /// Run an online [`crate::HazardMonitor`] over the event stream and
    /// carry its tallies on [`crate::RunReport`]. `None` disables
    /// detection (the default; it costs a shadow bookkeeping pass per
    /// event).
    pub hazard_detection: Option<HazardConfig>,
    /// Which scheduling policy dispatches threads
    /// ([`crate::policy::Scheduler`]). The default is the paper's
    /// 7-priority round-robin; the alternatives exist for the policy
    /// tournament (`docs/SCHEDULING.md`).
    pub policy: PolicyKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: millis(50),
            timer_granularity: None,
            switch_cost: micros(40),
            primitive_cost: micros(1),
            fork_cost: micros(100),
            metalock_cost: micros(2),
            metalock_donation: true,
            notify_mode: NotifyMode::DeferredReschedule,
            fork_policy: ForkPolicy::WaitForResources,
            max_threads: 4096,
            system_daemon: None,
            seed: 0x5EED_CEDA,
            chaos: ChaosConfig::default(),
            hazard_detection: None,
            policy: PolicyKind::default(),
        }
    }
}

impl SimConfig {
    /// The effective timer granularity (defaults to the quantum).
    pub fn granularity(&self) -> SimDuration {
        self.timer_granularity.unwrap_or(self.quantum)
    }

    /// Sets the scheduler quantum.
    pub fn with_quantum(mut self, q: SimDuration) -> Self {
        self.quantum = q;
        self
    }

    /// Decouples the timer granularity from the quantum.
    pub fn with_timer_granularity(mut self, g: SimDuration) -> Self {
        self.timer_granularity = Some(g);
        self
    }

    /// Sets the NOTIFY mode.
    pub fn with_notify_mode(mut self, m: NotifyMode) -> Self {
        self.notify_mode = m;
        self
    }

    /// Sets the fork policy.
    pub fn with_fork_policy(mut self, p: ForkPolicy) -> Self {
        self.fork_policy = p;
        self
    }

    /// Sets the live-thread limit.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Enables the SystemDaemon.
    pub fn with_system_daemon(mut self, d: SystemDaemonConfig) -> Self {
        self.system_daemon = Some(d);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the metalock cost (experiments magnify it to make the window
    /// observable).
    pub fn with_metalock_cost(mut self, c: SimDuration) -> Self {
        self.metalock_cost = c;
        self
    }

    /// Enables or disables metalock cycle donation.
    pub fn with_metalock_donation(mut self, on: bool) -> Self {
        self.metalock_donation = on;
        self
    }

    /// Sets the thread-switch cost.
    pub fn with_switch_cost(mut self, c: SimDuration) -> Self {
        self.switch_cost = c;
        self
    }

    /// Enables fault injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Enables online hazard detection with the given thresholds.
    pub fn with_hazard_detection(mut self, cfg: HazardConfig) -> Self {
        self.hazard_detection = Some(cfg);
        self
    }

    /// Selects the scheduling policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SimConfig::default();
        assert_eq!(c.quantum, millis(50));
        assert_eq!(c.granularity(), millis(50));
        assert!(c.switch_cost < micros(50));
        assert_eq!(c.notify_mode, NotifyMode::DeferredReschedule);
    }

    #[test]
    fn granularity_decouples() {
        let c = SimConfig::default()
            .with_quantum(millis(20))
            .with_timer_granularity(millis(5));
        assert_eq!(c.quantum, millis(20));
        assert_eq!(c.granularity(), millis(5));
    }

    #[test]
    fn granularity_follows_quantum_by_default() {
        let c = SimConfig::default().with_quantum(millis(20));
        assert_eq!(c.granularity(), millis(20));
    }

    #[test]
    fn default_policy_is_round_robin() {
        assert_eq!(SimConfig::default().policy, PolicyKind::RoundRobin);
        let c = SimConfig::default().with_policy(PolicyKind::Mlfq);
        assert_eq!(c.policy, PolicyKind::Mlfq);
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_max_threads(10)
            .with_fork_policy(ForkPolicy::Error)
            .with_notify_mode(NotifyMode::Immediate)
            .with_system_daemon(SystemDaemonConfig::default())
            .with_chaos(ChaosConfig::default().spurious_wakeups(0.25))
            .with_hazard_detection(HazardConfig::default());
        assert_eq!(c.seed, 7);
        assert!(c.chaos.is_active());
        assert!(c.hazard_detection.is_some());
        assert_eq!(c.max_threads, 10);
        assert_eq!(c.fork_policy, ForkPolicy::Error);
        assert_eq!(c.notify_mode, NotifyMode::Immediate);
        assert!(c.system_daemon.is_some());
    }
}
