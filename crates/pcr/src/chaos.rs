//! Fault injection: deterministic chaos for the simulated runtime.
//!
//! The paper's engineering sections are a catalogue of ways threaded
//! interactive systems go wrong: monitor-discipline mistakes (§5.3),
//! fork failure (§5.4), components that stop responding (§5.2's slow X
//! server), spurious lock conflicts (§6.1), and priority inversions
//! (§6.2). A [`ChaosConfig`] attached to [`crate::SimConfig`] provokes
//! those failure modes on purpose:
//!
//! * **FORK failure** — probabilistic failures and resource-exhaustion
//!   windows beyond the static [`crate::ForkPolicy`] (§5.4);
//! * **condition-variable abuse** — spurious wakeups, dropped notifies,
//!   and duplicated notifies, stressing the "WAIT only in a loop"
//!   discipline of §5.3;
//! * **thread stalls** — a named thread stops being scheduled for a
//!   while, modelling the unresponsive X server of §5.2 or a preempted
//!   metalock holder of §6.2;
//! * **timer perturbation** — extra delay on timeout firings, widening
//!   the timeout races of §6.3.
//!
//! Every injection decision is drawn from a dedicated [`crate::SplitMix64`]
//! stream derived from the run seed, at deterministic scheduler points,
//! so a given `(SimConfig, ChaosConfig)` replays **byte-identically**:
//! chaos runs are as reproducible as clean ones. The
//! [`crate::HazardMonitor`] is the matching detection half.

use crate::time::{millis, SimDuration, SimTime};

/// A scheduled stall of one named thread: from `at`, the first thread
/// whose name matches stops being scheduled for `duration` of virtual
/// time. If the thread is running or blocked when the stall fires, it is
/// stalled at the next point it would have become ready.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// Name of the thread to stall (first live match wins).
    pub thread: String,
    /// Virtual time at which the stall begins.
    pub at: SimTime,
    /// How long the thread stays unschedulable.
    pub duration: SimDuration,
}

/// Fault-injection configuration. The default injects nothing.
///
/// Attach with [`crate::SimConfig::with_chaos`]; all decisions are
/// deterministic in the run seed (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Probability that any FORK fails with
    /// [`crate::ForkError::ResourcesExhausted`], regardless of the
    /// thread-table state or [`crate::ForkPolicy`] (§5.4).
    pub fork_fail_prob: f64,
    /// A window of virtual time during which *every* FORK fails, as if
    /// thread resources were exhausted (§5.4's "scarce resource").
    pub fork_outage: Option<(SimTime, SimTime)>,
    /// Probability that a CV wait additionally receives one spurious
    /// wakeup: the waiter resumes with [`crate::WaitOutcome::Spurious`]
    /// although nobody notified and no timeout fired (§5.3).
    pub spurious_wakeup_prob: f64,
    /// Upper bound on the (uniform, seeded) delay between a wait's start
    /// and its injected spurious wakeup.
    pub spurious_delay: SimDuration,
    /// Probability that a NOTIFY with at least one waiter is silently
    /// dropped: no waiter wakes, and the waiter must be rescued by its
    /// timeout — or deadlock, if the CV has none (§5.3's lost wakeup).
    pub drop_notify_prob: f64,
    /// Probability that a NOTIFY wakes a *second* waiter as well,
    /// violating "exactly one waiter wakens"; correct Mesa code survives
    /// because the extra waiter re-checks its predicate (§5.3).
    pub duplicate_notify_prob: f64,
    /// Upper bound on extra (uniform, seeded) delay added to each CV
    /// timeout deadline and sleep wakeup, widening timeout races (§6.3).
    pub timer_jitter: SimDuration,
    /// Scheduled stalls of named threads (§5.2, §6.2).
    pub stalls: Vec<StallSpec>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fork_fail_prob: 0.0,
            fork_outage: None,
            spurious_wakeup_prob: 0.0,
            spurious_delay: millis(5),
            drop_notify_prob: 0.0,
            duplicate_notify_prob: 0.0,
            timer_jitter: SimDuration::ZERO,
            stalls: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// A configuration that injects nothing (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any injection is enabled.
    pub fn is_active(&self) -> bool {
        self.fork_fail_prob > 0.0
            || self.fork_outage.is_some()
            || self.spurious_wakeup_prob > 0.0
            || self.drop_notify_prob > 0.0
            || self.duplicate_notify_prob > 0.0
            || !self.timer_jitter.is_zero()
            || !self.stalls.is_empty()
    }

    /// Sets the probabilistic FORK failure rate (§5.4).
    pub fn fail_forks(mut self, prob: f64) -> Self {
        self.fork_fail_prob = check_prob(prob);
        self
    }

    /// Sets a window during which every FORK fails (§5.4).
    pub fn fork_outage(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fork_outage: empty window");
        self.fork_outage = Some((from, until));
        self
    }

    /// Sets the spurious-wakeup rate (§5.3).
    pub fn spurious_wakeups(mut self, prob: f64) -> Self {
        self.spurious_wakeup_prob = check_prob(prob);
        self
    }

    /// Sets the maximum delay before an injected spurious wakeup.
    pub fn spurious_delay(mut self, d: SimDuration) -> Self {
        assert!(!d.is_zero(), "spurious_delay must be positive");
        self.spurious_delay = d;
        self
    }

    /// Sets the dropped-notify rate (§5.3).
    pub fn drop_notifies(mut self, prob: f64) -> Self {
        self.drop_notify_prob = check_prob(prob);
        self
    }

    /// Sets the duplicated-notify rate (§5.3).
    pub fn duplicate_notifies(mut self, prob: f64) -> Self {
        self.duplicate_notify_prob = check_prob(prob);
        self
    }

    /// Sets the maximum jitter added to timer firings (§6.3).
    pub fn jitter_timers(mut self, max: SimDuration) -> Self {
        self.timer_jitter = max;
        self
    }

    /// Schedules a stall of the named thread (§5.2, §6.2).
    pub fn stall(mut self, thread: &str, at: SimTime, duration: SimDuration) -> Self {
        assert!(!duration.is_zero(), "stall duration must be positive");
        self.stalls.push(StallSpec {
            thread: thread.to_string(),
            at,
            duration,
        });
        self
    }
}

fn check_prob(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!ChaosConfig::default().is_active());
        assert!(!ChaosConfig::none().is_active());
    }

    #[test]
    fn each_knob_activates() {
        let t0 = SimTime::ZERO;
        let cases = [
            ChaosConfig::default().fail_forks(0.1),
            ChaosConfig::default().fork_outage(t0, t0 + millis(10)),
            ChaosConfig::default().spurious_wakeups(0.5),
            ChaosConfig::default().drop_notifies(0.5),
            ChaosConfig::default().duplicate_notifies(0.5),
            ChaosConfig::default().jitter_timers(millis(3)),
            ChaosConfig::default().stall("x", t0, millis(1)),
        ];
        for c in cases {
            assert!(c.is_active(), "{c:?} should be active");
        }
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn probability_out_of_range_panics() {
        let _ = ChaosConfig::default().fail_forks(1.5);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_outage_window_panics() {
        let t = SimTime::from_micros(5);
        let _ = ChaosConfig::default().fork_outage(t, t);
    }
}
