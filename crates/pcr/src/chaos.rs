//! Fault injection: deterministic chaos for the simulated runtime.
//!
//! The paper's engineering sections are a catalogue of ways threaded
//! interactive systems go wrong: monitor-discipline mistakes (§5.3),
//! fork failure (§5.4), components that stop responding (§5.2's slow X
//! server), spurious lock conflicts (§6.1), and priority inversions
//! (§6.2). A [`ChaosConfig`] attached to [`crate::SimConfig`] provokes
//! those failure modes on purpose:
//!
//! * **FORK failure** — probabilistic failures and resource-exhaustion
//!   windows beyond the static [`crate::ForkPolicy`] (§5.4);
//! * **condition-variable abuse** — spurious wakeups, dropped notifies,
//!   and duplicated notifies, stressing the "WAIT only in a loop"
//!   discipline of §5.3;
//! * **thread stalls** — a named thread stops being scheduled for a
//!   while, modelling the unresponsive X server of §5.2 or a preempted
//!   metalock holder of §6.2;
//! * **timer perturbation** — extra delay on timeout firings, widening
//!   the timeout races of §6.3.
//!
//! Every injection decision is drawn from a dedicated [`crate::SplitMix64`]
//! stream derived from the run seed, at deterministic scheduler points,
//! so a given `(SimConfig, ChaosConfig)` replays **byte-identically**:
//! chaos runs are as reproducible as clean ones. The
//! [`crate::HazardMonitor`] is the matching detection half.

use crate::time::{millis, SimDuration, SimTime};
use std::collections::VecDeque;

/// A scheduled stall of one named thread: from `at`, the first thread
/// whose name matches stops being scheduled for `duration` of virtual
/// time. If the thread is running or blocked when the stall fires, it is
/// stalled at the next point it would have become ready.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// Name of the thread to stall (first live match wins).
    pub thread: String,
    /// Virtual time at which the stall begins.
    pub at: SimTime,
    /// How long the thread stays unschedulable.
    pub duration: SimDuration,
    /// If set, the stall only fires while the target holds the named
    /// monitor: from `at` onwards the trigger re-arms every millisecond
    /// until it catches the thread inside that monitor, then stalls it
    /// on the spot — §6.2's "preempted while holding a lock" made
    /// deterministic.
    pub while_holding: Option<String>,
}

/// One kind of chaos decision point. Each kind has its own monotonically
/// increasing *site counter* that ticks at every decision point of that
/// kind (whether or not a fault is injected), so a `(kind, site)` pair
/// names one exact decision in a deterministic run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSiteKind {
    /// A FORK that chaos failed with `ResourcesExhausted` (§5.4).
    ForkFail,
    /// A CV wait that received an injected spurious wakeup (§5.3).
    SpuriousWakeup,
    /// A NOTIFY that was silently dropped (§5.3's lost wakeup).
    DropNotify,
    /// A NOTIFY that woke a second waiter as well (§5.3).
    DuplicateNotify,
    /// A timer deadline that received extra delay (§6.3).
    TimerJitter,
    /// A dispatch at which the running thread's priority was changed to
    /// a random level — the PCT-style scheduler perturbation. `param_us`
    /// carries the new priority level (1..=7), not a duration.
    PriorityChange,
}

impl FaultSiteKind {
    /// All kinds, in site-counter index order.
    pub const ALL: [FaultSiteKind; 6] = [
        FaultSiteKind::ForkFail,
        FaultSiteKind::SpuriousWakeup,
        FaultSiteKind::DropNotify,
        FaultSiteKind::DuplicateNotify,
        FaultSiteKind::TimerJitter,
        FaultSiteKind::PriorityChange,
    ];

    /// Stable index into per-kind site-counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSiteKind::ForkFail => 0,
            FaultSiteKind::SpuriousWakeup => 1,
            FaultSiteKind::DropNotify => 2,
            FaultSiteKind::DuplicateNotify => 3,
            FaultSiteKind::TimerJitter => 4,
            FaultSiteKind::PriorityChange => 5,
        }
    }

    /// Stable serialization tag.
    pub fn tag(self) -> &'static str {
        match self {
            FaultSiteKind::ForkFail => "fork_fail",
            FaultSiteKind::SpuriousWakeup => "spurious_wakeup",
            FaultSiteKind::DropNotify => "drop_notify",
            FaultSiteKind::DuplicateNotify => "duplicate_notify",
            FaultSiteKind::TimerJitter => "timer_jitter",
            FaultSiteKind::PriorityChange => "priority_change",
        }
    }

    /// Parses a serialization tag back into a kind.
    pub fn from_tag(tag: &str) -> Option<FaultSiteKind> {
        FaultSiteKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One positive injection decision: at the `site`-th decision point of
/// `kind`, inject a fault with parameter `param_us` (a delay in
/// microseconds for [`FaultSiteKind::SpuriousWakeup`] and
/// [`FaultSiteKind::TimerJitter`]; ignored for the others).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// The decision-point kind.
    pub kind: FaultSiteKind,
    /// Ordinal of the decision point within its kind (0-based).
    pub site: u64,
    /// Fault parameter in microseconds (delay for spurious wakeups and
    /// timer jitter; 0 otherwise).
    pub param_us: u64,
}

/// A complete, replayable record of every fault a chaos run injected:
/// the explicit per-site decisions plus the stall specs in force. Feed
/// it back via [`ChaosConfig::scripted`] and the run replays exactly —
/// no probabilities, no RNG, byte-identical injected faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Positive injection decisions, in chronological order.
    pub decisions: Vec<FaultDecision>,
    /// Thread stalls in force during the recorded run.
    pub stalls: Vec<StallSpec>,
}

impl FaultSchedule {
    /// True if the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty() && self.stalls.is_empty()
    }

    /// Per-kind cursors of `(site, param_us)` pairs sorted by site, for
    /// O(1) lookup at each decision point during scripted replay.
    pub(crate) fn cursors(&self) -> [VecDeque<(u64, u64)>; 6] {
        let mut sorted: [Vec<(u64, u64)>; 6] = Default::default();
        for d in &self.decisions {
            sorted[d.kind.index()].push((d.site, d.param_us));
        }
        sorted.map(|mut v| {
            v.sort_unstable();
            v.into_iter().collect()
        })
    }
}

/// PCT-style priority perturbation (after Burckhardt et al.'s
/// probabilistic concurrency testing): `changes` dispatch points are
/// pre-drawn uniformly from the first `horizon` dispatches, and at each
/// chosen point the thread being dispatched has its priority set to a
/// random level. The draw comes from the same chaos RNG stream as every
/// other fault, so recording and scripted replay stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PctConfig {
    /// Number of priority-change points per run (PCT's *k* - 1 knob).
    pub changes: u32,
    /// Dispatch-count horizon the change points are drawn from (PCT's
    /// *n* knob). Points past the run's actual dispatch count are lost.
    pub horizon: u64,
}

impl PctConfig {
    /// A light default: 3 change points over the first 4096 dispatches.
    pub fn light() -> Self {
        PctConfig {
            changes: 3,
            horizon: 4096,
        }
    }
}

/// Fault-injection configuration. The default injects nothing.
///
/// Attach with [`crate::SimConfig::with_chaos`]; all decisions are
/// deterministic in the run seed (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Probability that any FORK fails with
    /// [`crate::ForkError::ResourcesExhausted`], regardless of the
    /// thread-table state or [`crate::ForkPolicy`] (§5.4).
    pub fork_fail_prob: f64,
    /// A window of virtual time during which *every* FORK fails, as if
    /// thread resources were exhausted (§5.4's "scarce resource").
    pub fork_outage: Option<(SimTime, SimTime)>,
    /// Probability that a CV wait additionally receives one spurious
    /// wakeup: the waiter resumes with [`crate::WaitOutcome::Spurious`]
    /// although nobody notified and no timeout fired (§5.3).
    pub spurious_wakeup_prob: f64,
    /// Upper bound on the (uniform, seeded) delay between a wait's start
    /// and its injected spurious wakeup.
    pub spurious_delay: SimDuration,
    /// Probability that a NOTIFY with at least one waiter is silently
    /// dropped: no waiter wakes, and the waiter must be rescued by its
    /// timeout — or deadlock, if the CV has none (§5.3's lost wakeup).
    pub drop_notify_prob: f64,
    /// Probability that a NOTIFY wakes a *second* waiter as well,
    /// violating "exactly one waiter wakens"; correct Mesa code survives
    /// because the extra waiter re-checks its predicate (§5.3).
    pub duplicate_notify_prob: f64,
    /// Upper bound on extra (uniform, seeded) delay added to each CV
    /// timeout deadline and sleep wakeup, widening timeout races (§6.3).
    pub timer_jitter: SimDuration,
    /// Scheduled stalls of named threads (§5.2, §6.2).
    pub stalls: Vec<StallSpec>,
    /// PCT-style priority perturbation: random priority-change points
    /// sprinkled over the run's dispatches (§6.2's "priorities are
    /// problematic" made into a fuzz dimension).
    pub pct: Option<PctConfig>,
    /// A recorded [`FaultSchedule`] to replay instead of drawing from
    /// the chaos RNG: every decision point consults the script, and the
    /// probability knobs above are ignored.
    pub script: Option<FaultSchedule>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fork_fail_prob: 0.0,
            fork_outage: None,
            spurious_wakeup_prob: 0.0,
            spurious_delay: millis(5),
            drop_notify_prob: 0.0,
            duplicate_notify_prob: 0.0,
            timer_jitter: SimDuration::ZERO,
            stalls: Vec::new(),
            pct: None,
            script: None,
        }
    }
}

impl ChaosConfig {
    /// A configuration that injects nothing (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any injection is enabled.
    pub fn is_active(&self) -> bool {
        self.fork_fail_prob > 0.0
            || self.fork_outage.is_some()
            || self.spurious_wakeup_prob > 0.0
            || self.drop_notify_prob > 0.0
            || self.duplicate_notify_prob > 0.0
            || !self.timer_jitter.is_zero()
            || !self.stalls.is_empty()
            || self.pct.is_some()
            || self.script.is_some()
    }

    /// Replays a recorded [`FaultSchedule`] exactly: the schedule's
    /// stalls replace this config's stalls, every probability knob is
    /// ignored, and each decision point injects iff the script says so.
    pub fn scripted(mut self, schedule: FaultSchedule) -> Self {
        self.stalls = schedule.stalls.clone();
        self.script = Some(schedule);
        self
    }

    /// Sets the probabilistic FORK failure rate (§5.4).
    pub fn fail_forks(mut self, prob: f64) -> Self {
        self.fork_fail_prob = check_prob(prob);
        self
    }

    /// Sets a window during which every FORK fails (§5.4).
    pub fn fork_outage(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fork_outage: empty window");
        self.fork_outage = Some((from, until));
        self
    }

    /// Sets the spurious-wakeup rate (§5.3).
    pub fn spurious_wakeups(mut self, prob: f64) -> Self {
        self.spurious_wakeup_prob = check_prob(prob);
        self
    }

    /// Sets the maximum delay before an injected spurious wakeup.
    pub fn spurious_delay(mut self, d: SimDuration) -> Self {
        assert!(!d.is_zero(), "spurious_delay must be positive");
        self.spurious_delay = d;
        self
    }

    /// Sets the dropped-notify rate (§5.3).
    pub fn drop_notifies(mut self, prob: f64) -> Self {
        self.drop_notify_prob = check_prob(prob);
        self
    }

    /// Sets the duplicated-notify rate (§5.3).
    pub fn duplicate_notifies(mut self, prob: f64) -> Self {
        self.duplicate_notify_prob = check_prob(prob);
        self
    }

    /// Sets the maximum jitter added to timer firings (§6.3).
    pub fn jitter_timers(mut self, max: SimDuration) -> Self {
        self.timer_jitter = max;
        self
    }

    /// Enables PCT-style priority perturbation: `changes` random
    /// priority-change points over the first `horizon` dispatches.
    pub fn pct(mut self, changes: u32, horizon: u64) -> Self {
        assert!(horizon > 0, "pct horizon must be positive");
        self.pct = Some(PctConfig { changes, horizon });
        self
    }

    /// Schedules a stall of the named thread (§5.2, §6.2).
    pub fn stall(mut self, thread: &str, at: SimTime, duration: SimDuration) -> Self {
        assert!(!duration.is_zero(), "stall duration must be positive");
        self.stalls.push(StallSpec {
            thread: thread.to_string(),
            at,
            duration,
            while_holding: None,
        });
        self
    }

    /// Schedules a stall of the named thread that only fires while it
    /// holds the named monitor: the trigger re-arms every millisecond
    /// from `at` until it catches the thread inside the monitor, then
    /// stalls it mid-critical-section (§6.2's preempted lock holder).
    pub fn stall_while_holding(
        mut self,
        thread: &str,
        monitor: &str,
        at: SimTime,
        duration: SimDuration,
    ) -> Self {
        assert!(!duration.is_zero(), "stall duration must be positive");
        self.stalls.push(StallSpec {
            thread: thread.to_string(),
            at,
            duration,
            while_holding: Some(monitor.to_string()),
        });
        self
    }
}

fn check_prob(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!ChaosConfig::default().is_active());
        assert!(!ChaosConfig::none().is_active());
    }

    #[test]
    fn each_knob_activates() {
        let t0 = SimTime::ZERO;
        let cases = [
            ChaosConfig::default().fail_forks(0.1),
            ChaosConfig::default().fork_outage(t0, t0 + millis(10)),
            ChaosConfig::default().spurious_wakeups(0.5),
            ChaosConfig::default().drop_notifies(0.5),
            ChaosConfig::default().duplicate_notifies(0.5),
            ChaosConfig::default().jitter_timers(millis(3)),
            ChaosConfig::default().pct(3, 1024),
            ChaosConfig::default().stall("x", t0, millis(1)),
            ChaosConfig::default().stall_while_holding("x", "m", t0, millis(1)),
            ChaosConfig::default().scripted(FaultSchedule::default()),
        ];
        for c in cases {
            assert!(c.is_active(), "{c:?} should be active");
        }
    }

    #[test]
    fn fault_site_kind_tags_round_trip() {
        for k in FaultSiteKind::ALL {
            assert_eq!(FaultSiteKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(FaultSiteKind::from_tag("nope"), None);
    }

    #[test]
    fn schedule_cursors_sort_per_kind() {
        let sched = FaultSchedule {
            decisions: vec![
                FaultDecision {
                    kind: FaultSiteKind::DropNotify,
                    site: 7,
                    param_us: 0,
                },
                FaultDecision {
                    kind: FaultSiteKind::DropNotify,
                    site: 2,
                    param_us: 0,
                },
                FaultDecision {
                    kind: FaultSiteKind::TimerJitter,
                    site: 0,
                    param_us: 450,
                },
            ],
            stalls: Vec::new(),
        };
        let cursors = sched.cursors();
        assert_eq!(
            cursors[FaultSiteKind::DropNotify.index()],
            VecDeque::from([(2, 0), (7, 0)])
        );
        assert_eq!(
            cursors[FaultSiteKind::TimerJitter.index()],
            VecDeque::from([(0, 450)])
        );
        assert!(cursors[FaultSiteKind::ForkFail.index()].is_empty());
    }

    #[test]
    fn scripted_adopts_schedule_stalls() {
        let sched = FaultSchedule {
            decisions: Vec::new(),
            stalls: vec![StallSpec {
                thread: "x".into(),
                at: SimTime::ZERO,
                duration: millis(2),
                while_holding: Some("m".into()),
            }],
        };
        let cfg = ChaosConfig::default()
            .stall("old", SimTime::ZERO, millis(1))
            .scripted(sched.clone());
        assert_eq!(cfg.stalls, sched.stalls);
        assert!(cfg.is_active());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn probability_out_of_range_panics() {
        let _ = ChaosConfig::default().fail_forks(1.5);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_outage_window_panics() {
        let t = SimTime::from_micros(5);
        let _ = ChaosConfig::default().fork_outage(t, t);
    }
}
