//! The runtime's event stream.
//!
//! Every scheduling-relevant action emits an [`Event`] to the installed
//! [`TraceSink`], mirroring the microsecond-resolution thread-event traces
//! the paper's authors collected from their instrumented PCR. The
//! `threadstudy-trace` crate provides collectors (rate counters, interval
//! histograms, genealogy) built on this stream.

use crate::monitor::MonitorId;
use crate::thread::{Priority, ThreadId};
use crate::time::{SimDuration, SimTime};

/// Identifier of a condition variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CondId(pub(crate) u32);

impl CondId {
    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw index — for trace tooling that works
    /// with exported (flattened) event records.
    pub const fn from_u32(v: u32) -> CondId {
        CondId(v)
    }
}

/// How a condition-variable WAIT completed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitOutcome {
    /// A NOTIFY or BROADCAST woke the waiter.
    Notified,
    /// The CV's timeout expired first. Table 2 shows 48–82 % of Cedar
    /// waits and 42–99 % of GVX waits ended this way.
    TimedOut,
    /// The waiter resumed although nobody notified and no timeout fired —
    /// only produced by chaos injection
    /// ([`crate::ChaosConfig::spurious_wakeups`], §5.3). Correct Mesa
    /// code treats this exactly like `Notified`: re-check the predicate.
    Spurious,
}

/// Which yield primitive a thread invoked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YieldKind {
    /// Plain YIELD: run the scheduler.
    Normal,
    /// `YieldButNotToMe` (§5.2): give the processor to the highest
    /// priority ready thread other than the caller.
    ButNotToMe,
    /// A directed yield donating a slice to a specific thread.
    Directed(ThreadId),
}

/// One runtime event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Virtual time of the event.
    pub t: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// A set of [`EventKind`]s, one bit per kind.
///
/// Sinks advertise the kinds they consume through
/// [`TraceSink::subscriptions`]; the scheduler skips event construction
/// and dynamic dispatch entirely for kinds nobody subscribed to, which
/// is what makes an un-instrumented run (no sink, no hazard monitor)
/// pay only for its counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventMask(u32);

impl EventMask {
    /// No kinds.
    pub const EMPTY: EventMask = EventMask(0);
    /// Every kind, including any added later.
    pub const ALL: EventMask = EventMask(u32::MAX);

    /// The mask containing exactly `kind`.
    pub const fn of(kind: &EventKind) -> EventMask {
        EventMask(1 << kind.ord())
    }

    /// True if `kind` is in the mask.
    pub const fn contains(&self, kind: &EventKind) -> bool {
        self.0 & (1 << kind.ord()) != 0
    }

    /// The union of two masks.
    pub const fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// This mask with `kind` removed.
    pub const fn without(self, kind: &EventKind) -> EventMask {
        EventMask(self.0 & !(1 << kind.ord()))
    }

    /// True if no kind is in the mask.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// The kinds of thread events the instrumented runtime reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A thread was created.
    Fork {
        /// Forking thread (`None` for roots created before the run).
        parent: Option<ThreadId>,
        /// The new thread.
        child: ThreadId,
        /// Its initial priority.
        priority: Priority,
        /// Fork generation (roots are 0).
        generation: u32,
    },
    /// A thread terminated.
    Exit {
        /// The exiting thread.
        tid: ThreadId,
        /// True if it terminated by panic.
        panicked: bool,
    },
    /// A JOIN completed.
    Join {
        /// The joining thread.
        joiner: ThreadId,
        /// The joined (now exited) thread.
        target: ThreadId,
    },
    /// A thread was detached.
    Detach {
        /// The detaching thread.
        tid: ThreadId,
        /// The detached thread.
        target: ThreadId,
    },
    /// The scheduler dispatched a different thread.
    Switch {
        /// Previously running thread, if any.
        from: Option<ThreadId>,
        /// Newly running thread.
        to: ThreadId,
        /// Its priority at dispatch.
        to_priority: Priority,
        /// How long `to` sat in the ready queue before this dispatch —
        /// the wakeup-to-run scheduler latency of §6.2/§6.3. Feeds
        /// [`crate::SchedLatency`] and the trace exporters.
        ready_for: SimDuration,
    },
    /// A running thread exhausted its timeslice.
    QuantumExpired {
        /// The thread whose quantum ended.
        tid: ThreadId,
    },
    /// A thread entered a monitor.
    MlEnter {
        /// The entering thread.
        tid: ThreadId,
        /// The monitor.
        monitor: MonitorId,
        /// True if the mutex was held and the thread had to queue.
        contended: bool,
    },
    /// A queued thread was granted a monitor it had been waiting for:
    /// either its contended [`EventKind::MlEnter`] finally succeeded, or
    /// a notified CV waiter reacquired the monitor on its way out of a
    /// wait. The grant happens when the previous owner releases; the
    /// grantee may only *run* later, so the gap between this event and
    /// the next [`EventKind::Switch`] to the grantee is scheduler
    /// latency, not lock hold time. Hold spans in the exporters run from
    /// an uncontended `MlEnter` *or* an `MlAcquired` to the matching
    /// [`EventKind::MlExit`].
    MlAcquired {
        /// The thread that now owns the monitor.
        tid: ThreadId,
        /// The monitor.
        monitor: MonitorId,
    },
    /// A thread exited a monitor.
    MlExit {
        /// The exiting thread.
        tid: ThreadId,
        /// The monitor.
        monitor: MonitorId,
    },
    /// A thread began waiting on a condition variable.
    CvWait {
        /// The waiting thread.
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
    },
    /// A waiting thread resumed (inside the monitor again).
    CvWake {
        /// The awakened thread.
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
        /// How the wait ended.
        outcome: WaitOutcome,
    },
    /// NOTIFY was invoked.
    Notify {
        /// The notifying thread.
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
        /// The single waiter awakened, if any.
        woken: Option<ThreadId>,
    },
    /// BROADCAST was invoked.
    Broadcast {
        /// The broadcasting thread.
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
        /// Number of waiters awakened.
        woken: u32,
    },
    /// A notified thread was dispatched only to block on the still-held
    /// monitor mutex — the useless scheduler trip of §6.1.
    SpuriousLockConflict {
        /// The thread that wasted the dispatch.
        tid: ThreadId,
        /// The contended monitor.
        monitor: MonitorId,
    },
    /// A yield primitive ran.
    Yield {
        /// The yielding thread.
        tid: ThreadId,
        /// Which primitive.
        kind: YieldKind,
    },
    /// A thread changed its own priority.
    SetPriority {
        /// The thread.
        tid: ThreadId,
        /// Its new priority.
        priority: Priority,
    },
    /// A thread went to sleep until the given wake time.
    Sleep {
        /// The sleeping thread.
        tid: ThreadId,
        /// Absolute wake time (already rounded to timer granularity for
        /// non-precise sleeps).
        until: SimTime,
    },
    /// The SystemDaemon donated a slice to a thread.
    DaemonDonation {
        /// The recipient.
        target: ThreadId,
    },
    /// A FORK blocked waiting for thread resources (§5.4).
    ForkBlocked {
        /// The blocked forker.
        tid: ThreadId,
    },
    /// A FORK failed with an error (§5.4).
    ForkFailed {
        /// The failed forker.
        tid: ThreadId,
    },
    /// A thread stalled on a monitor's metalock while its holder was
    /// preempted (only possible with metalock donation disabled).
    MetalockStall {
        /// The stalled thread.
        tid: ThreadId,
        /// The monitor whose metalock is held.
        monitor: MonitorId,
        /// The preempted holder.
        holder: ThreadId,
    },
    /// Chaos injection woke a waiter spuriously (§5.3); the waiter's
    /// subsequent [`EventKind::CvWake`] carries
    /// [`WaitOutcome::Spurious`].
    SpuriousWakeup {
        /// The spuriously awakened waiter.
        tid: ThreadId,
        /// The condition it was waiting on.
        cv: CondId,
    },
    /// Chaos injection silently discarded a NOTIFY that had at least one
    /// waiter — a synthetic §5.3 lost wakeup.
    NotifyDropped {
        /// The notifying thread (which believes the notify happened).
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
    },
    /// Chaos injection made a NOTIFY wake a second waiter (§5.3's
    /// "exactly one" guarantee violated on purpose).
    NotifyDuplicated {
        /// The notifying thread.
        tid: ThreadId,
        /// The condition variable.
        cv: CondId,
        /// The extra waiter awakened beyond the legitimate one.
        extra: ThreadId,
    },
    /// Chaos injection stalled a thread: it cannot be scheduled until
    /// `until` (models §5.2's unresponsive server / §6.2's preempted
    /// holder).
    ChaosStall {
        /// The stalled thread.
        tid: ThreadId,
        /// When it becomes schedulable again.
        until: SimTime,
    },
    /// Chaos injection failed a FORK (§5.4) that policy alone would have
    /// allowed.
    ChaosForkFail {
        /// The forking thread that received the error.
        tid: ThreadId,
    },
    /// A JOIN blocked because the target had not yet exited. The
    /// matching [`EventKind::Join`] is emitted when it completes.
    JoinBlocked {
        /// The blocked joining thread.
        joiner: ThreadId,
        /// The thread being joined.
        target: ThreadId,
    },
}

impl EventKind {
    /// Stable ordinal of the kind, used as its [`EventMask`] bit.
    const fn ord(&self) -> u32 {
        match self {
            EventKind::Fork { .. } => 0,
            EventKind::Exit { .. } => 1,
            EventKind::Join { .. } => 2,
            EventKind::Detach { .. } => 3,
            EventKind::Switch { .. } => 4,
            EventKind::QuantumExpired { .. } => 5,
            EventKind::MlEnter { .. } => 6,
            EventKind::MlExit { .. } => 7,
            EventKind::CvWait { .. } => 8,
            EventKind::CvWake { .. } => 9,
            EventKind::Notify { .. } => 10,
            EventKind::Broadcast { .. } => 11,
            EventKind::SpuriousLockConflict { .. } => 12,
            EventKind::Yield { .. } => 13,
            EventKind::SetPriority { .. } => 14,
            EventKind::Sleep { .. } => 15,
            EventKind::DaemonDonation { .. } => 16,
            EventKind::ForkBlocked { .. } => 17,
            EventKind::ForkFailed { .. } => 18,
            EventKind::MetalockStall { .. } => 19,
            EventKind::SpuriousWakeup { .. } => 20,
            EventKind::NotifyDropped { .. } => 21,
            EventKind::NotifyDuplicated { .. } => 22,
            EventKind::ChaosStall { .. } => 23,
            EventKind::ChaosForkFail { .. } => 24,
            EventKind::JoinBlocked { .. } => 25,
            EventKind::MlAcquired { .. } => 26,
        }
    }
}

/// Receiver for the runtime's event stream.
pub trait TraceSink: Send + 'static {
    /// Records one event. Called synchronously from the scheduler; keep it
    /// cheap.
    fn record(&mut self, ev: &Event);

    /// The event kinds this sink consumes. The scheduler caches the mask
    /// at installation time ([`crate::Sim::set_sink`]) and never calls
    /// [`TraceSink::record`] for a kind outside it, so a selective sink
    /// skips the dynamic dispatch for everything else. The default is
    /// every kind.
    fn subscriptions(&self) -> EventMask {
        EventMask::ALL
    }

    /// Converts the boxed sink into `Any`, so a concrete collector can be
    /// recovered after [`crate::Sim::take_sink`]. Implementations are
    /// one line: `fn into_any(self: Box<Self>) -> Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// A sink that discards everything.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &Event) {}

    fn subscriptions(&self) -> EventMask {
        EventMask::EMPTY
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A sink that stores every event in order.
#[derive(Default, Debug)]
pub struct VecSink {
    /// The recorded events.
    pub events: Vec<Event>,
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A sink that fans events out to several sinks.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl MultiSink {
    /// Creates an empty fan-out sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Returns the downstream sinks.
    pub fn into_inner(self) -> Vec<Box<dyn TraceSink>> {
        self.sinks
    }
}

impl TraceSink for MultiSink {
    fn record(&mut self, ev: &Event) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }

    fn subscriptions(&self) -> EventMask {
        self.sinks
            .iter()
            .fold(EventMask::EMPTY, |m, s| m.union(s.subscriptions()))
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::default();
        for i in 0..3 {
            sink.record(&Event {
                t: SimTime::from_micros(i),
                kind: EventKind::QuantumExpired { tid: ThreadId(0) },
            });
        }
        assert_eq!(sink.events.len(), 3);
        assert!(sink.events.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn multi_sink_fans_out() {
        let mut multi = MultiSink::new();
        multi.push(Box::new(VecSink::default()));
        multi.push(Box::new(VecSink::default()));
        multi.record(&Event {
            t: SimTime::ZERO,
            kind: EventKind::Yield {
                tid: ThreadId(1),
                kind: YieldKind::Normal,
            },
        });
        for sink in multi.into_inner() {
            // Each downstream sink saw the event; we can't downcast through
            // the trait object here, so just ensure the structure held.
            drop(sink);
        }
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.record(&Event {
            t: SimTime::ZERO,
            kind: EventKind::Exit {
                tid: ThreadId(9),
                panicked: false,
            },
        });
    }
}
