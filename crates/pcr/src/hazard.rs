//! Runtime hazard detection over the event stream.
//!
//! The failure modes the paper describes — missed wakeups from naked
//! NOTIFYs (§5.3), waiters that skip the predicate re-check (§5.3),
//! priority inversion and starvation (§6.2), yield-loop livelock (§5.2),
//! and spurious lock-conflict storms (§6.1) — all leave fingerprints in
//! the scheduler's event stream. A [`HazardMonitor`] is a [`TraceSink`]
//! that reconstructs a shadow of each thread's state from those events
//! and raises structured [`Hazard`] reports as the run executes. It
//! pairs with [`crate::ChaosConfig`], which *provokes* the same failure
//! modes on purpose.
//!
//! The detectors are heuristics over observable events, not proofs: they
//! are tuned so that a well-behaved run under the default configuration
//! reports nothing, while each injected fault (or genuine discipline
//! violation) trips exactly the matching detector. The known
//! approximation is [`HazardKind::WaitWithoutRecheck`]: the monitor
//! cannot observe predicate evaluation, so a waiter whose predicate
//! happened to become true during an injected spurious wakeup is
//! indistinguishable from one that never re-checked.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::event::{Event, EventKind, EventMask, TraceSink, WaitOutcome};
use crate::thread::{Priority, ThreadId};
use crate::time::{millis, SimDuration, SimTime};

/// Thresholds for the hazard detectors. `Default` gives values that are
/// quiet on well-behaved workloads (no report in a clean run) while
/// still catching the injected faults in the test suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HazardConfig {
    /// A runnable thread unscheduled this long while lower-priority
    /// threads run is reported as starved (default 500 ms ≈ 10 quanta).
    pub starvation_threshold: SimDuration,
    /// Consecutive YIELDs with no other progress event before a livelock
    /// is reported (default 50).
    pub livelock_yields: u32,
    /// Sliding window for counting spurious lock conflicts (§6.1).
    pub storm_window: SimDuration,
    /// Spurious conflicts within [`HazardConfig::storm_window`] that
    /// constitute a storm (default 10).
    pub storm_threshold: u32,
    /// A WAIT started this soon after a waiter-less NOTIFY on the same
    /// condition is watched for a missed wakeup (default 10 ms).
    pub naked_window: SimDuration,
}

impl Default for HazardConfig {
    fn default() -> Self {
        HazardConfig {
            starvation_threshold: millis(500),
            livelock_yields: 50,
            storm_window: millis(100),
            storm_threshold: 10,
            naked_window: millis(10),
        }
    }
}

/// One detected hazard: what, and when it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hazard {
    /// Virtual time at which the detector fired (detection lags the
    /// root cause by construction — e.g. a starvation is visible only
    /// after the threshold has elapsed).
    pub t: SimTime,
    /// What was detected.
    pub kind: HazardKind,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.t, self.kind)
    }
}

/// The kinds of hazard the monitor can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// A NOTIFY found no waiter, and a thread that began waiting on the
    /// same condition just afterwards timed out: the classic §5.3 missed
    /// wakeup, where the notify raced ahead of the wait.
    NakedNotify {
        /// The notifying thread.
        tid: ThreadId,
        /// The condition notified (raw id).
        cv: u32,
    },
    /// A waiter resumed spuriously and left its monitor without waiting
    /// again — it may have skipped the §5.3 "re-check the predicate in a
    /// loop" discipline (see the module docs for the approximation).
    WaitWithoutRecheck {
        /// The waiter in question.
        tid: ThreadId,
    },
    /// A runnable thread went unscheduled beyond the threshold while a
    /// strictly lower-priority thread ran: starvation or a stable
    /// priority inversion (§6.2).
    Starvation {
        /// The starved runnable thread.
        victim: ThreadId,
        /// Its priority.
        victim_priority: Priority,
        /// The lower-priority thread observed running instead.
        running: ThreadId,
        /// That thread's priority.
        running_priority: Priority,
        /// How long the victim had been runnable but unscheduled.
        waited: SimDuration,
    },
    /// A run of consecutive YIELDs with no other progress event: threads
    /// are spending the CPU handing it to each other (§5.2's busy-wait
    /// pathology).
    Livelock {
        /// Length of the yield run when the detector fired.
        yields: u32,
        /// When the run of yields began.
        since: SimTime,
    },
    /// Spurious lock conflicts (§6.1) above the configured rate — the
    /// symptom the authors traced to unrelated data sharing monitor
    /// locks.
    SpuriousConflictStorm {
        /// Conflicts observed inside the window.
        count: u32,
        /// The window width used.
        window: SimDuration,
    },
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardKind::NakedNotify { tid, cv } => {
                write!(f, "naked notify: t{} notified cv{cv} with no waiter; a subsequent waiter timed out", tid.as_u32())
            }
            HazardKind::WaitWithoutRecheck { tid } => {
                write!(f, "wait without re-check: t{} left its monitor after a spurious wakeup without waiting again", tid.as_u32())
            }
            HazardKind::Starvation {
                victim,
                victim_priority,
                running,
                running_priority,
                waited,
            } => write!(
                f,
                "starvation: t{} (prio {victim_priority}) runnable {waited} while t{} (prio {running_priority}) runs",
                victim.as_u32(),
                running.as_u32()
            ),
            HazardKind::Livelock { yields, since } => {
                write!(f, "livelock: {yields} consecutive yields with no progress since {since}")
            }
            HazardKind::SpuriousConflictStorm { count, window } => {
                write!(f, "spurious-conflict storm: {count} conflicts within {window}")
            }
        }
    }
}

impl HazardKind {
    /// Short machine-friendly tag (used in tables and JSON export).
    pub fn tag(&self) -> &'static str {
        match self {
            HazardKind::NakedNotify { .. } => "naked_notify",
            HazardKind::WaitWithoutRecheck { .. } => "wait_without_recheck",
            HazardKind::Starvation { .. } => "starvation",
            HazardKind::Livelock { .. } => "livelock",
            HazardKind::SpuriousConflictStorm { .. } => "spurious_conflict_storm",
        }
    }
}

/// Per-kind tallies of detected hazards, carried on
/// [`crate::RunReport`] and summarized in trace tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HazardCounts {
    /// Missed-wakeup races from waiter-less NOTIFYs (§5.3).
    pub naked_notifies: u64,
    /// Spurious wakeups possibly handled without a predicate re-check.
    pub wait_without_recheck: u64,
    /// Starvation / stable priority-inversion episodes (§6.2).
    pub starvations: u64,
    /// Yield-storm livelock episodes (§5.2).
    pub livelocks: u64,
    /// Spurious lock-conflict storms (§6.1).
    pub spurious_conflict_storms: u64,
}

impl HazardCounts {
    /// Total hazards across all kinds.
    pub fn total(&self) -> u64 {
        self.naked_notifies
            + self.wait_without_recheck
            + self.starvations
            + self.livelocks
            + self.spurious_conflict_storms
    }

    fn bump(&mut self, kind: &HazardKind) {
        match kind {
            HazardKind::NakedNotify { .. } => self.naked_notifies += 1,
            HazardKind::WaitWithoutRecheck { .. } => self.wait_without_recheck += 1,
            HazardKind::Starvation { .. } => self.starvations += 1,
            HazardKind::Livelock { .. } => self.livelocks += 1,
            HazardKind::SpuriousConflictStorm { .. } => self.spurious_conflict_storms += 1,
        }
    }
}

/// Shadow scheduler state for one live thread, reconstructed purely
/// from the event stream.
#[derive(Clone, Debug)]
struct Shadow {
    priority: Priority,
    /// True while the last observed transition left the thread unable to
    /// run (waiting, sleeping, stalled...). Cleared when it is switched
    /// to or explicitly woken.
    blocked: bool,
    /// When the thread last became runnable-but-not-running, if it still
    /// is. `None` while running, blocked, or freshly scheduled.
    runnable_since: Option<SimTime>,
    /// One starvation report per runnable episode.
    starvation_reported: bool,
    /// `Some((cv, notifier))` while this thread's current wait is being
    /// watched for a naked-notify miss.
    naked_watch: Option<(u32, ThreadId)>,
    /// Set after a spurious wakeup until the thread waits again.
    pending_recheck: bool,
}

impl Shadow {
    fn new(priority: Priority) -> Self {
        Shadow {
            priority,
            blocked: false,
            runnable_since: None,
            starvation_reported: false,
            naked_watch: None,
            pending_recheck: false,
        }
    }

    fn block(&mut self) {
        self.blocked = true;
        self.runnable_since = None;
        self.starvation_reported = false;
    }
}

/// Online hazard detector; install via
/// [`crate::SimConfig::with_hazard_detection`] (the scheduler then feeds
/// it every event before the user sink), or drive it manually as a
/// [`TraceSink`] over a recorded stream.
#[derive(Debug, Default)]
pub struct HazardMonitor {
    cfg: HazardConfig,
    hazards: Vec<Hazard>,
    counts: HazardCounts,
    threads: HashMap<ThreadId, Shadow>,
    /// cv id → (notifier, time) of the most recent waiter-less NOTIFY.
    naked_notifies: HashMap<u32, (ThreadId, SimTime)>,
    /// Consecutive YIELD events with no intervening progress.
    yield_streak: u32,
    yield_streak_start: Option<SimTime>,
    livelock_reported: bool,
    /// Timestamps of recent spurious lock conflicts (§6.1).
    conflict_times: VecDeque<SimTime>,
}

impl HazardMonitor {
    /// The event kinds the detectors actually consume. The scheduler
    /// consults this so kinds outside the mask (quantum expiries, daemon
    /// donations, fork failures, chaos notify faults) skip the shadow
    /// bookkeeping pass entirely.
    pub fn subscriptions() -> EventMask {
        let t = crate::thread::ThreadId(0);
        EventMask::ALL
            .without(&EventKind::QuantumExpired { tid: t })
            .without(&EventKind::DaemonDonation { target: t })
            .without(&EventKind::ForkFailed { tid: t })
            .without(&EventKind::ChaosForkFail { tid: t })
            .without(&EventKind::NotifyDropped {
                tid: t,
                cv: crate::event::CondId(0),
            })
            .without(&EventKind::NotifyDuplicated {
                tid: t,
                cv: crate::event::CondId(0),
                extra: t,
            })
    }

    /// Creates a monitor with the given thresholds.
    pub fn new(cfg: HazardConfig) -> Self {
        HazardMonitor {
            cfg,
            ..Default::default()
        }
    }

    /// All hazards detected so far, in detection order.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// Per-kind tallies.
    pub fn counts(&self) -> HazardCounts {
        self.counts
    }

    /// Consumes the monitor, returning the detected hazards.
    pub fn into_hazards(self) -> Vec<Hazard> {
        self.hazards
    }

    fn report(&mut self, t: SimTime, kind: HazardKind) {
        self.counts.bump(&kind);
        self.hazards.push(Hazard { t, kind });
    }

    fn shadow(&mut self, tid: ThreadId) -> &mut Shadow {
        self.threads
            .entry(tid)
            .or_insert_with(|| Shadow::new(Priority::DEFAULT))
    }

    /// Any event that demonstrates forward progress ends a yield streak.
    fn progress(&mut self) {
        self.yield_streak = 0;
        self.yield_streak_start = None;
        self.livelock_reported = false;
    }

    fn observe(&mut self, ev: &Event) {
        let t = ev.t;
        match ev.kind {
            EventKind::Fork {
                child, priority, ..
            } => {
                let mut s = Shadow::new(priority);
                s.runnable_since = Some(t);
                self.threads.insert(child, s);
                self.progress();
            }
            EventKind::Exit { tid, .. } => {
                self.threads.remove(&tid);
                self.progress();
            }
            EventKind::Join { .. } | EventKind::Detach { .. } => self.progress(),
            EventKind::JoinBlocked { joiner, .. } => self.shadow(joiner).block(),
            EventKind::SetPriority { tid, priority } => {
                self.shadow(tid).priority = priority;
            }
            EventKind::Switch {
                from,
                to,
                to_priority,
                ..
            } => {
                {
                    let s = self.shadow(to);
                    s.priority = to_priority;
                    s.blocked = false;
                    s.runnable_since = None;
                    s.starvation_reported = false;
                }
                if let Some(from) = from {
                    if let Some(s) = self.threads.get_mut(&from) {
                        if !s.blocked && s.runnable_since.is_none() {
                            s.runnable_since = Some(t);
                        }
                    }
                }
                self.scan_starvation(t, to, to_priority);
            }
            EventKind::CvWait { tid, cv } => {
                let window = self.cfg.naked_window;
                let watch = match self.naked_notifies.get(&cv.as_u32()) {
                    Some(&(notifier, tn)) if t.saturating_since(tn) <= window => {
                        Some((cv.as_u32(), notifier))
                    }
                    _ => None,
                };
                let s = self.shadow(tid);
                s.block();
                s.pending_recheck = false;
                s.naked_watch = watch;
                self.progress();
            }
            EventKind::CvWake {
                tid,
                cv: _,
                outcome,
            } => {
                let s = self.shadow(tid);
                s.blocked = false;
                s.runnable_since = None;
                let watch = s.naked_watch.take();
                match outcome {
                    WaitOutcome::TimedOut => {
                        if let Some((cv, notifier)) = watch {
                            self.report(t, HazardKind::NakedNotify { tid: notifier, cv });
                        }
                    }
                    WaitOutcome::Spurious => self.shadow(tid).pending_recheck = true,
                    WaitOutcome::Notified => {}
                }
                self.progress();
            }
            EventKind::Notify { tid, cv, woken } => {
                match woken {
                    None => {
                        self.naked_notifies.insert(cv.as_u32(), (tid, t));
                    }
                    Some(_) => {
                        self.naked_notifies.remove(&cv.as_u32());
                    }
                }
                self.progress();
            }
            EventKind::Broadcast { .. } => self.progress(),
            EventKind::MlEnter { tid, contended, .. } => {
                if contended {
                    self.shadow(tid).block();
                }
            }
            EventKind::MlAcquired { tid, .. } => {
                // The grantee is ready again (dispatch comes later).
                let s = self.shadow(tid);
                s.blocked = false;
                s.runnable_since = Some(t);
            }
            EventKind::MlExit { tid, .. } => {
                let s = self.shadow(tid);
                if s.pending_recheck {
                    s.pending_recheck = false;
                    self.report(t, HazardKind::WaitWithoutRecheck { tid });
                }
            }
            EventKind::Sleep { tid, .. } => {
                self.shadow(tid).block();
                self.progress();
            }
            EventKind::ForkBlocked { tid } => self.shadow(tid).block(),
            EventKind::MetalockStall { tid, .. } => self.shadow(tid).block(),
            EventKind::ChaosStall { tid, .. } => self.shadow(tid).block(),
            EventKind::SpuriousWakeup { tid, .. } => {
                // The waiter is ready again; the Spurious CvWake follows
                // when it is dispatched.
                self.shadow(tid).runnable_since = Some(t);
            }
            EventKind::SpuriousLockConflict { .. } => {
                let window = self.cfg.storm_window;
                self.conflict_times.push_back(t);
                while let Some(&front) = self.conflict_times.front() {
                    if t.saturating_since(front) > window {
                        self.conflict_times.pop_front();
                    } else {
                        break;
                    }
                }
                if self.conflict_times.len() >= self.cfg.storm_threshold as usize {
                    let count = self.conflict_times.len() as u32;
                    // Start a fresh accumulation so one sustained storm
                    // yields roughly one report per window, not per event.
                    self.conflict_times.clear();
                    self.report(t, HazardKind::SpuriousConflictStorm { count, window });
                }
            }
            EventKind::Yield { .. } => {
                self.yield_streak += 1;
                if self.yield_streak_start.is_none() {
                    self.yield_streak_start = Some(t);
                }
                if !self.livelock_reported && self.yield_streak >= self.cfg.livelock_yields {
                    self.livelock_reported = true;
                    let since = self.yield_streak_start.unwrap_or(t);
                    let yields = self.yield_streak;
                    self.report(t, HazardKind::Livelock { yields, since });
                }
            }
            EventKind::QuantumExpired { .. }
            | EventKind::DaemonDonation { .. }
            | EventKind::ForkFailed { .. }
            | EventKind::ChaosForkFail { .. }
            | EventKind::NotifyDropped { .. }
            | EventKind::NotifyDuplicated { .. } => {}
        }
    }

    fn scan_starvation(&mut self, t: SimTime, running: ThreadId, running_priority: Priority) {
        let threshold = self.cfg.starvation_threshold;
        let mut found = Vec::new();
        for (&tid, s) in &mut self.threads {
            if tid == running || s.blocked || s.starvation_reported {
                continue;
            }
            let Some(since) = s.runnable_since else {
                continue;
            };
            let waited = t.saturating_since(since);
            if s.priority > running_priority && waited >= threshold {
                s.starvation_reported = true;
                found.push(HazardKind::Starvation {
                    victim: tid,
                    victim_priority: s.priority,
                    running,
                    running_priority,
                    waited,
                });
            }
        }
        // Deterministic report order even though HashMap iteration is not.
        found.sort_by_key(|k| match k {
            HazardKind::Starvation { victim, .. } => victim.as_u32(),
            _ => u32::MAX,
        });
        for kind in found {
            self.report(t, kind);
        }
    }
}

impl TraceSink for HazardMonitor {
    fn record(&mut self, ev: &Event) {
        self.observe(ev);
    }

    fn subscriptions(&self) -> EventMask {
        HazardMonitor::subscriptions()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CondId;

    fn ev(t_us: u64, kind: EventKind) -> Event {
        Event {
            t: SimTime::from_micros(t_us),
            kind,
        }
    }

    fn tid(n: u32) -> ThreadId {
        ThreadId::from_u32(n)
    }

    #[test]
    fn naked_notify_detected_on_timed_out_follower() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let cv = CondId(7);
        m.record(&ev(
            1_000,
            EventKind::Notify {
                tid: tid(1),
                cv,
                woken: None,
            },
        ));
        m.record(&ev(2_000, EventKind::CvWait { tid: tid(2), cv }));
        m.record(&ev(
            60_000,
            EventKind::CvWake {
                tid: tid(2),
                cv,
                outcome: WaitOutcome::TimedOut,
            },
        ));
        assert_eq!(m.counts().naked_notifies, 1);
        assert!(matches!(
            m.hazards()[0].kind,
            HazardKind::NakedNotify { tid: t, cv: 7 } if t == tid(1)
        ));
    }

    #[test]
    fn notified_wake_is_not_a_naked_notify() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let cv = CondId(7);
        m.record(&ev(
            1_000,
            EventKind::Notify {
                tid: tid(1),
                cv,
                woken: None,
            },
        ));
        m.record(&ev(2_000, EventKind::CvWait { tid: tid(2), cv }));
        m.record(&ev(
            3_000,
            EventKind::CvWake {
                tid: tid(2),
                cv,
                outcome: WaitOutcome::Notified,
            },
        ));
        assert_eq!(m.counts().total(), 0);
    }

    #[test]
    fn wait_outside_naked_window_not_watched() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let cv = CondId(3);
        m.record(&ev(
            0,
            EventKind::Notify {
                tid: tid(1),
                cv,
                woken: None,
            },
        ));
        // 50 ms later: far outside the 10 ms window.
        m.record(&ev(50_000, EventKind::CvWait { tid: tid(2), cv }));
        m.record(&ev(
            99_000,
            EventKind::CvWake {
                tid: tid(2),
                cv,
                outcome: WaitOutcome::TimedOut,
            },
        ));
        assert_eq!(m.counts().total(), 0);
    }

    #[test]
    fn spurious_then_exit_without_rewait_flags_recheck() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let cv = CondId(1);
        let mon = crate::monitor::MonitorId(1);
        m.record(&ev(1_000, EventKind::CvWait { tid: tid(4), cv }));
        m.record(&ev(
            2_000,
            EventKind::CvWake {
                tid: tid(4),
                cv,
                outcome: WaitOutcome::Spurious,
            },
        ));
        m.record(&ev(
            3_000,
            EventKind::MlExit {
                tid: tid(4),
                monitor: mon,
            },
        ));
        assert_eq!(m.counts().wait_without_recheck, 1);
    }

    #[test]
    fn spurious_then_rewait_is_clean() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let cv = CondId(1);
        let mon = crate::monitor::MonitorId(1);
        m.record(&ev(1_000, EventKind::CvWait { tid: tid(4), cv }));
        m.record(&ev(
            2_000,
            EventKind::CvWake {
                tid: tid(4),
                cv,
                outcome: WaitOutcome::Spurious,
            },
        ));
        m.record(&ev(2_500, EventKind::CvWait { tid: tid(4), cv }));
        m.record(&ev(
            3_000,
            EventKind::MlExit {
                tid: tid(4),
                monitor: mon,
            },
        ));
        assert_eq!(m.counts().total(), 0);
    }

    #[test]
    fn starvation_detected_after_threshold() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        // t1 (high prio) forked, preempted at t=0; t2 (low) then runs
        // past the threshold.
        m.record(&ev(
            0,
            EventKind::Fork {
                parent: None,
                child: tid(1),
                priority: Priority::of(6),
                generation: 0,
            },
        ));
        m.record(&ev(
            0,
            EventKind::Fork {
                parent: None,
                child: tid(2),
                priority: Priority::of(2),
                generation: 0,
            },
        ));
        m.record(&ev(
            1_000,
            EventKind::Switch {
                from: None,
                to: tid(2),
                to_priority: Priority::of(2),
                ready_for: SimDuration::ZERO,
            },
        ));
        // Far past the 500 ms threshold, t2 is switched to again.
        m.record(&ev(
            700_000,
            EventKind::Switch {
                from: Some(tid(2)),
                to: tid(2),
                to_priority: Priority::of(2),
                ready_for: SimDuration::ZERO,
            },
        ));
        assert_eq!(m.counts().starvations, 1);
        match &m.hazards()[0].kind {
            HazardKind::Starvation {
                victim,
                running,
                waited,
                ..
            } => {
                assert_eq!(*victim, tid(1));
                assert_eq!(*running, tid(2));
                assert!(*waited >= millis(500));
            }
            other => panic!("unexpected hazard {other:?}"),
        }
        // Only one report per episode.
        m.record(&ev(
            900_000,
            EventKind::Switch {
                from: Some(tid(2)),
                to: tid(2),
                to_priority: Priority::of(2),
                ready_for: SimDuration::ZERO,
            },
        ));
        assert_eq!(m.counts().starvations, 1);
    }

    #[test]
    fn blocked_high_priority_thread_is_not_starved() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        m.record(&ev(
            0,
            EventKind::Fork {
                parent: None,
                child: tid(1),
                priority: Priority::of(6),
                generation: 0,
            },
        ));
        m.record(&ev(
            100,
            EventKind::CvWait {
                tid: tid(1),
                cv: CondId(9),
            },
        ));
        m.record(&ev(
            700_000,
            EventKind::Switch {
                from: None,
                to: tid(2),
                to_priority: Priority::of(2),
                ready_for: SimDuration::ZERO,
            },
        ));
        assert_eq!(m.counts().total(), 0);
    }

    #[test]
    fn livelock_reported_once_per_streak() {
        let cfg = HazardConfig {
            livelock_yields: 5,
            ..Default::default()
        };
        let mut m = HazardMonitor::new(cfg);
        for i in 0..20 {
            m.record(&ev(
                i * 10,
                EventKind::Yield {
                    tid: tid(1),
                    kind: crate::event::YieldKind::Normal,
                },
            ));
        }
        assert_eq!(m.counts().livelocks, 1);
        // Progress resets the streak; a new storm reports again.
        m.record(&ev(
            300,
            EventKind::Notify {
                tid: tid(1),
                cv: CondId(1),
                woken: None,
            },
        ));
        for i in 0..6 {
            m.record(&ev(
                400 + i * 10,
                EventKind::Yield {
                    tid: tid(1),
                    kind: crate::event::YieldKind::Normal,
                },
            ));
        }
        assert_eq!(m.counts().livelocks, 2);
    }

    #[test]
    fn conflict_storm_threshold() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let mon = crate::monitor::MonitorId(2);
        for i in 0..9 {
            m.record(&ev(
                i * 1_000,
                EventKind::SpuriousLockConflict {
                    tid: tid(1),
                    monitor: mon,
                },
            ));
        }
        assert_eq!(m.counts().spurious_conflict_storms, 0);
        m.record(&ev(
            9_000,
            EventKind::SpuriousLockConflict {
                tid: tid(1),
                monitor: mon,
            },
        ));
        assert_eq!(m.counts().spurious_conflict_storms, 1);
    }

    #[test]
    fn spread_out_conflicts_do_not_storm() {
        let mut m = HazardMonitor::new(HazardConfig::default());
        let mon = crate::monitor::MonitorId(2);
        for i in 0..30 {
            // One conflict every 50 ms: never 10 within a 100 ms window.
            m.record(&ev(
                i * 50_000,
                EventKind::SpuriousLockConflict {
                    tid: tid(1),
                    monitor: mon,
                },
            ));
        }
        assert_eq!(m.counts().total(), 0);
    }

    #[test]
    fn counts_total_sums_all_kinds() {
        let c = HazardCounts {
            naked_notifies: 1,
            wait_without_recheck: 2,
            starvations: 3,
            livelocks: 4,
            spurious_conflict_storms: 5,
        };
        assert_eq!(c.total(), 15);
    }
}
