//! A small deterministic PRNG for scheduler decisions and workload jitter.
//!
//! The simulator must replay identically from a seed across library
//! versions, so it uses its own SplitMix64 instead of an external crate
//! whose stream might change between releases. SplitMix64 is the seeding
//! generator from Vigna's xoshiro family; its output quality is more than
//! adequate for picking donation targets and jittering arrival times.

/// Deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Debiased multiply-shift (Lemire). The retry loop rejects the
        // small biased region; it terminates quickly with overwhelming
        // probability.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an exponentially distributed value with the given mean.
    ///
    /// Used to model Poisson arrival processes (keystrokes, mouse events,
    /// transient-fork inter-arrival times) in the synthetic workloads.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0) by nudging the uniform sample away from zero.
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }

    /// Picks a random element index for a slice of length `len`, or `None`
    /// for an empty slice.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.next_below(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SplitMix64::new(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.next_exp(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() < 0.25,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn pick_index_handles_empty() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.pick_index(0), None);
        assert!(r.pick_index(3).is_some());
    }
}
