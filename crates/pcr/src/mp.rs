//! A multiprocessor variant of the scheduler (§4.7's context).
//!
//! The paper's measurements are from a uniprocessor SPARCstation and
//! [`crate::Sim`] models exactly that. But "these systems do run on
//! multiprocessors", concurrency exploiters are "threads created
//! specifically to make use of multiple processors", and Birrell's
//! original spurious-lock-conflict scenario (§6.1) *requires* two
//! processors: the notifier keeps running on one while the notified
//! thread starts on another and trips over the still-held monitor.
//!
//! [`MpSim`] schedules onto `cpus` virtual processors with global strict
//! priority (no runnable thread is outranked by a waiting one across all
//! CPUs), per-CPU timeslices, and the same monitors/CVs — and it speaks
//! the same rendezvous protocol, so thread bodies, [`crate::ThreadCtx`],
//! and everything built on them (the entire `paradigms` crate) run
//! unchanged.
//!
//! Scope restrictions relative to the uniprocessor model, documented
//! rather than silently diverging:
//!
//! * `YieldButNotToMe`, directed yields, and `donate_random` degrade to
//!   plain YIELD (they are uniprocessor hacks; on an MP the other thread
//!   simply runs on another CPU);
//! * the metalock window is not modelled (enter/exit are atomic);
//! * thread-switch cost is not charged (virtual time advances only
//!   through `work` and timers).
//!
//! User code between rendezvous still executes one thread at a time in
//! real time — only *virtual* time overlaps — so the simulation stays
//! deterministic. The linearization order of same-instant operations is
//! CPU-index order.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::condition::Condition;
use crate::config::{NotifyMode, SimConfig};
use crate::ctx::{wrap_body, ThreadCtx};
use crate::error::{RunReport, StopReason};
use crate::event::{CondId, Event, EventKind, TraceSink, WaitOutcome, YieldKind};
use crate::monitor::{Monitor, MonitorId};
use crate::rendezvous::{reply_channel, ForkSpec, Reply, Request, ThreadChannels};
use crate::sched::SimStats;
use crate::thread::{JoinHandle, Priority, ResultSlot, ThreadId};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerKind, TimerWheel};
use crate::RunLimit;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Ready,
    Running(usize),
    MutexWait(MonitorId),
    CvWait(CondId),
    Sleeping,
    JoinWait(ThreadId),
    Exited,
}

struct Tcb {
    name: String,
    priority: Priority,
    state: TState,
    pending_reply: Option<Reply>,
    debt: SimDuration,
    reply_tx: mpsc::Sender<Reply>,
    os_join: Option<std::thread::JoinHandle<()>>,
    joiner: Option<ThreadId>,
    exited: bool,
    panicked: bool,
    wait_seq: u64,
    acquire_on_dispatch: Option<MonitorId>,
    reacquire_outcome: Option<WaitOutcome>,
    reacquire_cv: Option<CondId>,
    ready_since: SimTime,
}

struct MonState {
    name: String,
    owner: Option<ThreadId>,
    queue: VecDeque<ThreadId>,
    deferred: Vec<(ThreadId, WaitOutcome, CondId)>,
}

struct CvState {
    name: String,
    monitor: MonitorId,
    timeout: Option<SimDuration>,
    queue: VecDeque<ThreadId>,
}

/// The multiprocessor simulator.
///
/// # Examples
///
/// ```
/// use pcr::{millis, MpSim, Priority, RunLimit, SimConfig};
///
/// let mut sim = MpSim::new(SimConfig::default(), 4);
/// let hs: Vec<_> = (0..4)
///     .map(|i| {
///         sim.fork_root(&format!("w{i}"), Priority::DEFAULT, |ctx| {
///             ctx.work(millis(100));
///         })
///     })
///     .collect();
/// let report = sim.run(RunLimit::ToCompletion);
/// // 400ms of work over 4 virtual CPUs: ~100ms of virtual time.
/// assert!(report.now.as_micros() < 120_000);
/// drop(hs);
/// ```
pub struct MpSim {
    cfg: SimConfig,
    cpus: usize,
    clock: SimTime,
    clock_mirror: Arc<AtomicU64>,
    threads: Vec<Tcb>,
    ready: [VecDeque<ThreadId>; Priority::LEVELS],
    running: Vec<Option<ThreadId>>,
    quantum_left: Vec<SimDuration>,
    timers: TimerWheel,
    monitors: Vec<MonState>,
    conds: Vec<CvState>,
    req_tx: mpsc::Sender<(ThreadId, Request)>,
    req_rx: mpsc::Receiver<(ThreadId, Request)>,
    sink: Option<Box<dyn TraceSink>>,
    stats: SimStats,
    live: usize,
}

impl MpSim {
    /// Creates a multiprocessor runtime with `cpus` virtual processors.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cfg: SimConfig, cpus: usize) -> MpSim {
        assert!(cpus >= 1, "need at least one CPU");
        crate::install_panic_silencer();
        let (req_tx, req_rx) = mpsc::channel();
        MpSim {
            cpus,
            clock: SimTime::ZERO,
            clock_mirror: Arc::new(AtomicU64::new(0)),
            threads: Vec::new(),
            ready: Default::default(),
            running: vec![None; cpus],
            quantum_left: vec![SimDuration::ZERO; cpus],
            timers: TimerWheel::new(),
            monitors: Vec::new(),
            conds: Vec::new(),
            req_tx,
            req_rx,
            sink: None,
            stats: SimStats::default(),
            live: 0,
            cfg,
        }
    }

    /// Number of virtual processors.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runtime counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Installs a trace sink.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Creates a monitor before the run.
    pub fn monitor<T: Send + 'static>(&mut self, name: &str, data: T) -> Monitor<T> {
        let id = MonitorId(self.monitors.len() as u32);
        self.monitors.push(MonState {
            name: name.to_string(),
            owner: None,
            queue: VecDeque::new(),
            deferred: Vec::new(),
        });
        Monitor::new(id, name, data)
    }

    /// Creates a condition variable before the run.
    pub fn condition<T: Send + 'static>(
        &mut self,
        m: &Monitor<T>,
        name: &str,
        timeout: Option<SimDuration>,
    ) -> Condition {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(CvState {
            name: name.to_string(),
            monitor: m.id(),
            timeout,
            queue: VecDeque::new(),
        });
        Condition {
            id,
            monitor: m.id(),
            name: name.to_string(),
            timeout,
        }
    }

    /// Forks a root thread.
    pub fn fork_root<T, F>(&mut self, name: &str, priority: Priority, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
        let body = wrap_body(f, Arc::clone(&slot));
        let tid = self.create_thread(
            ForkSpec {
                name: name.to_string(),
                priority: Some(priority),
                detached: false,
                body,
            },
            None,
        );
        JoinHandle { tid, slot }
    }

    fn create_thread(&mut self, spec: ForkSpec, parent: Option<ThreadId>) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let priority = spec.priority.unwrap_or_else(|| {
            parent
                .map(|p| self.threads[p.0 as usize].priority)
                .unwrap_or(Priority::DEFAULT)
        });
        let (reply_tx, reply_rx) = reply_channel();
        let ctx = ThreadCtx {
            tid,
            name: spec.name.clone(),
            channels: ThreadChannels {
                req_tx: self.req_tx.clone(),
                reply_rx,
            },
            clock: Arc::clone(&self.clock_mirror),
            shutting_down: std::cell::Cell::new(false),
            priority: std::cell::Cell::new(priority),
            seed: self.cfg.seed,
        };
        let body = spec.body;
        let os_join = std::thread::Builder::new()
            .name(format!("mp-{}", spec.name))
            .stack_size(128 * 1024)
            .spawn(move || {
                if let Ok(Reply::Ok) = ctx.channels.reply_rx.recv() {
                    body(&ctx)
                }
            })
            .expect("spawn OS thread");
        self.threads.push(Tcb {
            name: spec.name,
            priority,
            state: TState::Ready,
            pending_reply: Some(Reply::Ok),
            debt: SimDuration::ZERO,
            reply_tx,
            os_join: Some(os_join),
            joiner: None,
            exited: false,
            panicked: false,
            wait_seq: 0,
            acquire_on_dispatch: None,
            reacquire_outcome: None,
            reacquire_cv: None,
            ready_since: self.clock,
        });
        self.live += 1;
        self.stats.forks += 1;
        self.stats.max_live_threads = self.stats.max_live_threads.max(self.live);
        self.emit(EventKind::Fork {
            parent,
            child: tid,
            priority,
            generation: 0,
        });
        self.ready[priority.index()].push_back(tid);
        tid
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(s) = &mut self.sink {
            s.record(&Event {
                t: self.clock,
                kind,
            });
        }
    }

    fn set_clock(&mut self, t: SimTime) {
        debug_assert!(t >= self.clock);
        self.clock = t;
        self.clock_mirror
            .store(t.as_micros(), std::sync::atomic::Ordering::Relaxed);
    }

    fn push_ready(&mut self, tid: ThreadId) {
        let p = self.threads[tid.0 as usize].priority;
        self.threads[tid.0 as usize].state = TState::Ready;
        self.threads[tid.0 as usize].ready_since = self.clock;
        self.ready[p.index()].push_back(tid);
    }

    fn pop_ready(&mut self) -> Option<ThreadId> {
        self.ready.iter_mut().rev().find_map(VecDeque::pop_front)
    }

    fn highest_ready_prio(&self) -> Option<Priority> {
        (0..Priority::LEVELS)
            .rev()
            .find(|&i| !self.ready[i].is_empty())
            .map(|i| Priority::of(i as u8 + 1))
    }

    /// Global strict priority: preempt the lowest-priority running
    /// thread whenever a strictly higher-priority thread is ready.
    fn rebalance(&mut self) {
        loop {
            let Some(cand) = self.highest_ready_prio() else {
                return;
            };
            // Find the weakest CPU: idle beats any running thread.
            let mut weakest: Option<(usize, Option<Priority>)> = None;
            for (cpu, slot) in self.running.iter().enumerate() {
                let prio = slot.map(|t| self.threads[t.0 as usize].priority);
                let beats = match (&weakest, prio) {
                    (None, _) => true,
                    (Some((_, None)), _) => false, // Already found an idle CPU.
                    (Some((_, Some(_))), None) => true,
                    (Some((_, Some(w))), Some(p)) => p < *w,
                };
                if beats {
                    weakest = Some((cpu, prio));
                }
            }
            match weakest {
                Some((cpu, None)) => {
                    // Idle CPU: dispatch.
                    let tid = self.pop_ready().expect("candidate exists");
                    self.dispatch_on(cpu, tid);
                }
                Some((cpu, Some(w))) if cand > w => {
                    // Preempt the weakest running thread.
                    let victim = self.running[cpu].take().expect("running");
                    let p = self.threads[victim.0 as usize].priority;
                    self.threads[victim.0 as usize].state = TState::Ready;
                    self.threads[victim.0 as usize].ready_since = self.clock;
                    self.ready[p.index()].push_front(victim);
                    let tid = self.pop_ready().expect("candidate exists");
                    self.dispatch_on(cpu, tid);
                }
                _ => return,
            }
        }
    }

    fn dispatch_on(&mut self, cpu: usize, tid: ThreadId) {
        self.stats.switches += 1;
        let prio = self.threads[tid.0 as usize].priority;
        let ready_for = self
            .clock
            .saturating_since(self.threads[tid.0 as usize].ready_since);
        self.stats.sched_latency.record(prio, ready_for);
        self.emit(EventKind::Switch {
            from: self.running[cpu],
            to: tid,
            to_priority: prio,
            ready_for,
        });
        self.running[cpu] = Some(tid);
        self.quantum_left[cpu] = self.cfg.quantum;
        self.threads[tid.0 as usize].state = TState::Running(cpu);
        // CV wake / immediate-notify reacquire happens at dispatch.
        if let Some(mid) = self.threads[tid.0 as usize].acquire_on_dispatch.take() {
            if !self.try_acquire_now(tid, mid) {
                self.running[cpu] = None;
            }
        }
    }

    /// Attempts a dispatch-time acquire; false if the thread blocked.
    fn try_acquire_now(&mut self, tid: ThreadId, mid: MonitorId) -> bool {
        let outcome = self.threads[tid.0 as usize].reacquire_outcome;
        if self.monitors[mid.0 as usize].owner.is_none() {
            self.monitors[mid.0 as usize].owner = Some(tid);
            self.stats.ml_enters += 1;
            self.stats.distinct_monitors.insert(mid.0);
            self.emit(EventKind::MlEnter {
                tid,
                monitor: mid,
                contended: false,
            });
            let reply = self.grant_reply(tid);
            self.threads[tid.0 as usize].pending_reply = Some(reply);
            true
        } else {
            if outcome == Some(WaitOutcome::Notified) {
                self.stats.spurious_conflicts += 1;
                self.emit(EventKind::SpuriousLockConflict { tid, monitor: mid });
            }
            self.stats.ml_enters += 1;
            self.stats.ml_contended += 1;
            self.stats.distinct_monitors.insert(mid.0);
            self.emit(EventKind::MlEnter {
                tid,
                monitor: mid,
                contended: true,
            });
            self.monitors[mid.0 as usize].queue.push_back(tid);
            self.threads[tid.0 as usize].state = TState::MutexWait(mid);
            false
        }
    }

    fn grant_reply(&mut self, tid: ThreadId) -> Reply {
        let t = &mut self.threads[tid.0 as usize];
        match t.reacquire_outcome.take() {
            Some(outcome) => {
                let cv = t.reacquire_cv.take().expect("cv recorded");
                self.emit(EventKind::CvWake { tid, cv, outcome });
                Reply::Wait(outcome)
            }
            None => Reply::Ok,
        }
    }

    fn fire_due_timers(&mut self) {
        while let Some(kind) = self.timers.pop_due(self.clock) {
            match kind {
                TimerKind::Wake(tid) => {
                    if self.threads[tid.0 as usize].state == TState::Sleeping {
                        self.push_ready(tid);
                    }
                }
                TimerKind::CvTimeout { tid, cv, seq } => {
                    let idx = tid.0 as usize;
                    let live = self.threads[idx].wait_seq == seq
                        && self.threads[idx].state == TState::CvWait(cv);
                    if live {
                        self.threads[idx].wait_seq += 1;
                        let mid = self.conds[cv.0 as usize].monitor;
                        self.conds[cv.0 as usize].queue.retain(|&w| w != tid);
                        self.stats.cv_timeouts += 1;
                        let t = &mut self.threads[idx];
                        t.acquire_on_dispatch = Some(mid);
                        t.reacquire_outcome = Some(WaitOutcome::TimedOut);
                        t.reacquire_cv = Some(cv);
                        self.push_ready(tid);
                    }
                }
                // MpSim never schedules chaos timers (no injection support).
                TimerKind::ChaosSpuriousWake { .. }
                | TimerKind::ChaosStallStart { .. }
                | TimerKind::ChaosStallEnd(_) => {}
            }
        }
    }

    /// Services every CPU whose thread is at a rendezvous point (zero
    /// debt): replies, receives the next request, handles it; repeats —
    /// re-balancing between rounds so freshly dispatched threads get
    /// their rendezvous too — until every busy CPU carries debt.
    fn service_cpus(&mut self, _limit: SimTime) {
        loop {
            self.rebalance();
            let mut progressed = false;
            for cpu in 0..self.cpus {
                while let Some(tid) = self.running[cpu] {
                    let t = &mut self.threads[tid.0 as usize];
                    if !t.debt.is_zero() {
                        break;
                    }
                    let Some(reply) = t.pending_reply.take() else {
                        unreachable!("running thread with no debt and no reply");
                    };
                    t.reply_tx.send(reply).expect("thread alive");
                    let (rtid, req) = self.req_rx.recv().expect("request");
                    debug_assert_eq!(rtid, tid);
                    self.handle_request(tid, cpu, req);
                    progressed = true;
                    if self.running[cpu] != Some(tid)
                        || self.threads[tid.0 as usize].state != TState::Running(cpu)
                    {
                        if self.running[cpu] == Some(tid) {
                            self.running[cpu] = None;
                        }
                        break;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn handle_request(&mut self, tid: ThreadId, cpu: usize, req: Request) {
        match req {
            Request::Fork(spec) => {
                let child = self.create_thread(spec, Some(tid));
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Forked(child));
                self.threads[tid.0 as usize].debt = self.cfg.fork_cost;
            }
            Request::Join(target) => {
                if self.threads[target.0 as usize].exited {
                    self.emit(EventKind::Join {
                        joiner: tid,
                        target,
                    });
                    self.threads[tid.0 as usize].pending_reply = Some(Reply::Joined);
                } else {
                    self.threads[target.0 as usize].joiner = Some(tid);
                    self.threads[tid.0 as usize].state = TState::JoinWait(target);
                }
            }
            Request::Detach(_) => {
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
            }
            Request::Work(d) => {
                let t = &mut self.threads[tid.0 as usize];
                t.debt = d;
                t.pending_reply = Some(Reply::Ok);
            }
            Request::Sleep { d, precise } => {
                let mut until = self.clock + d;
                if !precise {
                    until = until.round_up_to(self.cfg.granularity());
                }
                self.timers.schedule(until, TimerKind::Wake(tid));
                let t = &mut self.threads[tid.0 as usize];
                t.state = TState::Sleeping;
                t.pending_reply = Some(Reply::Ok);
            }
            // On a multiprocessor the uniprocessor yield hacks reduce to
            // plain YIELD (see module docs).
            Request::Yield
            | Request::YieldButNotToMe
            | Request::DirectedYield { .. }
            | Request::DonateRandom { .. } => {
                self.stats.yields += 1;
                self.emit(EventKind::Yield {
                    tid,
                    kind: YieldKind::Normal,
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
                self.push_ready(tid);
            }
            Request::SetPriority(p) => {
                self.threads[tid.0 as usize].priority = p;
                self.emit(EventKind::SetPriority { tid, priority: p });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::Ok);
            }
            Request::MonitorEnter(mid) => match self.monitors[mid.0 as usize].owner {
                None => {
                    self.monitors[mid.0 as usize].owner = Some(tid);
                    self.stats.ml_enters += 1;
                    self.stats.distinct_monitors.insert(mid.0);
                    self.emit(EventKind::MlEnter {
                        tid,
                        monitor: mid,
                        contended: false,
                    });
                    let t = &mut self.threads[tid.0 as usize];
                    t.pending_reply = Some(Reply::Ok);
                    t.debt = self.cfg.primitive_cost;
                }
                Some(owner) if owner == tid => {
                    self.threads[tid.0 as usize].pending_reply = Some(Reply::Fault(
                        "recursive monitor entry; Mesa monitors are not re-entrant".to_string(),
                    ));
                }
                Some(_) => {
                    self.stats.ml_enters += 1;
                    self.stats.ml_contended += 1;
                    self.stats.distinct_monitors.insert(mid.0);
                    self.emit(EventKind::MlEnter {
                        tid,
                        monitor: mid,
                        contended: true,
                    });
                    self.monitors[mid.0 as usize].queue.push_back(tid);
                    self.threads[tid.0 as usize].state = TState::MutexWait(mid);
                }
            },
            Request::MonitorExit(mid) => {
                if self.monitors[mid.0 as usize].owner != Some(tid) {
                    self.threads[tid.0 as usize].pending_reply =
                        Some(Reply::Fault("monitor exit by non-owner".to_string()));
                    return;
                }
                self.emit(EventKind::MlExit { tid, monitor: mid });
                self.release_monitor(mid);
                let t = &mut self.threads[tid.0 as usize];
                t.pending_reply = Some(Reply::Ok);
                t.debt = self.cfg.primitive_cost;
            }
            Request::CvWait { cv } => {
                let mid = self.conds[cv.0 as usize].monitor;
                if self.monitors[mid.0 as usize].owner != Some(tid) {
                    self.threads[tid.0 as usize].pending_reply =
                        Some(Reply::Fault("WAIT without holding the monitor".to_string()));
                    return;
                }
                self.stats.cv_waits += 1;
                self.stats.distinct_conditions.insert(cv.0);
                self.emit(EventKind::CvWait { tid, cv });
                let t = &mut self.threads[tid.0 as usize];
                t.wait_seq += 1;
                let seq = t.wait_seq;
                t.state = TState::CvWait(cv);
                if let Some(timeout) = self.conds[cv.0 as usize].timeout {
                    let deadline = (self.clock + timeout).round_up_to(self.cfg.granularity());
                    self.timers
                        .schedule(deadline, TimerKind::CvTimeout { tid, cv, seq });
                }
                self.conds[cv.0 as usize].queue.push_back(tid);
                self.emit(EventKind::MlExit { tid, monitor: mid });
                self.release_monitor(mid);
            }
            Request::Notify { cv } | Request::Broadcast { cv } => {
                let broadcast = matches!(req_kind(&req), ReqKind::Broadcast);
                let mid = self.conds[cv.0 as usize].monitor;
                if self.monitors[mid.0 as usize].owner != Some(tid) {
                    self.threads[tid.0 as usize].pending_reply = Some(Reply::Fault(
                        "NOTIFY/BROADCAST without holding the monitor".to_string(),
                    ));
                    return;
                }
                let mut woken = 0u32;
                let mut first = None;
                while let Some(w) = self.conds[cv.0 as usize].queue.pop_front() {
                    woken += 1;
                    first.get_or_insert(w);
                    let wt = &mut self.threads[w.0 as usize];
                    wt.wait_seq += 1;
                    match self.cfg.notify_mode {
                        NotifyMode::Immediate => {
                            wt.acquire_on_dispatch = Some(mid);
                            wt.reacquire_outcome = Some(WaitOutcome::Notified);
                            wt.reacquire_cv = Some(cv);
                            self.push_ready(w);
                        }
                        NotifyMode::DeferredReschedule => {
                            self.monitors[mid.0 as usize].deferred.push((
                                w,
                                WaitOutcome::Notified,
                                cv,
                            ));
                        }
                    }
                    if !broadcast {
                        break;
                    }
                }
                if broadcast {
                    self.stats.cv_broadcasts += 1;
                    self.emit(EventKind::Broadcast { tid, cv, woken });
                } else {
                    self.stats.cv_notifies += 1;
                    self.emit(EventKind::Notify {
                        tid,
                        cv,
                        woken: first,
                    });
                }
                let t = &mut self.threads[tid.0 as usize];
                t.pending_reply = Some(Reply::Ok);
                t.debt = self.cfg.primitive_cost;
            }
            Request::NewMonitor { name } => {
                let id = MonitorId(self.monitors.len() as u32);
                self.monitors.push(MonState {
                    name,
                    owner: None,
                    queue: VecDeque::new(),
                    deferred: Vec::new(),
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::MonitorId(id));
            }
            Request::NewCondition {
                name,
                monitor,
                timeout,
            } => {
                let id = CondId(self.conds.len() as u32);
                self.conds.push(CvState {
                    name,
                    monitor,
                    timeout,
                    queue: VecDeque::new(),
                });
                self.threads[tid.0 as usize].pending_reply = Some(Reply::CondId(id));
            }
            Request::Exit { panicked } => {
                self.emit(EventKind::Exit { tid, panicked });
                self.stats.exits += 1;
                if panicked {
                    self.stats.panics += 1;
                }
                let t = &mut self.threads[tid.0 as usize];
                t.exited = true;
                t.panicked = panicked;
                t.state = TState::Exited;
                t.pending_reply = None;
                self.live -= 1;
                if let Some(h) = self.threads[tid.0 as usize].os_join.take() {
                    let _ = h.join();
                }
                if let Some(j) = self.threads[tid.0 as usize].joiner.take() {
                    self.emit(EventKind::Join {
                        joiner: j,
                        target: tid,
                    });
                    self.threads[j.0 as usize].pending_reply = Some(Reply::Joined);
                    self.push_ready(j);
                }
                self.running[cpu] = None;
            }
        }
    }

    fn release_monitor(&mut self, mid: MonitorId) {
        let deferred: Vec<(ThreadId, WaitOutcome, CondId)> =
            self.monitors[mid.0 as usize].deferred.drain(..).collect();
        for (wtid, outcome, cv) in deferred {
            let w = &mut self.threads[wtid.0 as usize];
            w.state = TState::MutexWait(mid);
            w.reacquire_outcome = Some(outcome);
            w.reacquire_cv = Some(cv);
            self.monitors[mid.0 as usize].queue.push_back(wtid);
        }
        self.monitors[mid.0 as usize].owner = None;
        if let Some(next) = self.monitors[mid.0 as usize].queue.pop_front() {
            self.monitors[mid.0 as usize].owner = Some(next);
            let reply = self.grant_reply(next);
            self.threads[next.0 as usize].pending_reply = Some(reply);
            self.push_ready(next);
        }
    }

    /// Advances virtual time across all busy CPUs by the largest step
    /// that hits no timer, no debt completion, and no quantum expiry.
    fn advance(&mut self, limit: SimTime) {
        let mut dt = limit.saturating_since(self.clock);
        if let Some(t) = self.timers.next_deadline() {
            dt = dt.min(t.saturating_since(self.clock));
        }
        let mut any_busy = false;
        for cpu in 0..self.cpus {
            if let Some(tid) = self.running[cpu] {
                let debt = self.threads[tid.0 as usize].debt;
                if !debt.is_zero() {
                    any_busy = true;
                    dt = dt.min(debt).min(self.quantum_left[cpu]);
                }
            }
        }
        if !any_busy {
            // All idle: jump to the next timer (or the limit).
            let target = self
                .timers
                .next_deadline()
                .map(|t| t.min(limit))
                .unwrap_or(limit);
            self.set_clock(target);
            return;
        }
        if dt.is_zero() {
            // A quantum expired exactly now: rotate that CPU.
            for cpu in 0..self.cpus {
                if self.quantum_left[cpu].is_zero() {
                    if let Some(tid) = self.running[cpu].take() {
                        self.stats.quantum_expiries += 1;
                        self.emit(EventKind::QuantumExpired { tid });
                        self.push_ready(tid);
                    }
                    self.quantum_left[cpu] = self.cfg.quantum;
                }
            }
            self.rebalance();
            return;
        }
        self.set_clock(self.clock + dt);
        for cpu in 0..self.cpus {
            if let Some(tid) = self.running[cpu] {
                let t = &mut self.threads[tid.0 as usize];
                if !t.debt.is_zero() {
                    t.debt -= dt;
                    self.quantum_left[cpu] -= dt;
                    let idx = t.priority.index();
                    self.stats.cpu_by_priority[idx] += dt;
                    self.stats.total_cpu += dt;
                }
            }
        }
    }

    /// Runs until the limit, completion, or deadlock.
    pub fn run(&mut self, limit: RunLimit) -> RunReport {
        let start = self.clock;
        let end = match limit {
            RunLimit::For(d) => self.clock.saturating_add(d),
            RunLimit::Until(t) => t,
            RunLimit::ToCompletion => SimTime::MAX,
        };
        let reason = loop {
            self.fire_due_timers();
            if self.live == 0 {
                break StopReason::AllExited;
            }
            if self.clock >= end {
                break StopReason::TimeLimit;
            }
            self.service_cpus(end);
            if self.live == 0 {
                break StopReason::AllExited;
            }
            let idle = self.running.iter().all(Option::is_none);
            if idle && self.timers.next_deadline().is_none() {
                break StopReason::Deadlock(self.deadlock_report());
            }
            self.advance(end);
        };
        if reason == StopReason::TimeLimit && end != SimTime::MAX {
            self.set_clock(end);
        }
        RunReport {
            reason,
            now: self.clock,
            elapsed: self.clock.saturating_since(start),
            // MpSim does not support chaos/hazard detection (yet).
            hazards: crate::HazardCounts::default(),
        }
    }

    fn deadlock_report(&self) -> crate::DeadlockReport {
        let mut blocked = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if t.exited {
                continue;
            }
            let (waiting_for, on) = match t.state {
                TState::MutexWait(m) => {
                    let slot = &self.monitors[m.0 as usize];
                    (format!("monitor {}", slot.name), slot.owner)
                }
                TState::CvWait(cv) => (
                    format!("condition {}", self.conds[cv.0 as usize].name),
                    None,
                ),
                TState::JoinWait(j) => (format!("join of {j:?}"), Some(j)),
                _ => continue,
            };
            blocked.push(crate::BlockedThread {
                tid: ThreadId(i as u32),
                name: t.name.clone(),
                waiting_for,
                blocked_on: on,
            });
        }
        crate::DeadlockReport { blocked }
    }

    fn shutdown(&mut self) {
        for t in &self.threads {
            if !t.exited {
                let _ = t.reply_tx.send(Reply::Shutdown);
            }
        }
        for t in &mut self.threads {
            if let Some(h) = t.os_join.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for MpSim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum ReqKind {
    Notify,
    Broadcast,
}

fn req_kind(req: &Request) -> ReqKind {
    match req {
        Request::Broadcast { .. } => ReqKind::Broadcast,
        _ => ReqKind::Notify,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{millis, secs};

    fn hogs(sim: &mut MpSim, n: usize, work: SimDuration) -> Vec<JoinHandle<SimTime>> {
        (0..n)
            .map(|i| {
                sim.fork_root(&format!("hog{i}"), Priority::DEFAULT, move |ctx| {
                    ctx.work(work);
                    ctx.now()
                })
            })
            .collect()
    }

    #[test]
    fn two_cpus_halve_makespan() {
        // 4 × 100ms of work: 400ms on one CPU, ~200ms on two.
        let t_for = |cpus: usize| {
            let mut sim = MpSim::new(SimConfig::default(), cpus);
            let hs = hogs(&mut sim, 4, millis(100));
            let r = sim.run(RunLimit::ToCompletion);
            assert_eq!(r.reason, StopReason::AllExited);
            drop(hs);
            r.now.as_micros()
        };
        let one = t_for(1);
        let two = t_for(2);
        let four = t_for(4);
        assert!((380_000..=430_000).contains(&one), "1cpu {one}");
        assert!((190_000..=230_000).contains(&two), "2cpu {two}");
        assert!((95_000..=130_000).contains(&four), "4cpu {four}");
    }

    #[test]
    fn strict_priority_across_cpus() {
        // 2 CPUs, three threads: the two highest always run.
        let mut sim = MpSim::new(SimConfig::default(), 2);
        let lo = sim.fork_root("lo", Priority::of(2), |ctx| {
            ctx.work(millis(10));
            ctx.now()
        });
        let _m1 = sim.fork_root("m1", Priority::of(5), |ctx| {
            ctx.work(millis(50));
            ctx.now()
        });
        let _m2 = sim.fork_root("m2", Priority::of(5), |ctx| {
            ctx.work(millis(50));
            ctx.now()
        });
        sim.run(RunLimit::ToCompletion);
        let lo_end = lo.into_result().unwrap().unwrap();
        // The low thread only starts after a mid finishes: ends ~60ms.
        assert!(lo_end >= SimTime::from_micros(58_000), "lo ended {lo_end}");
    }

    #[test]
    fn monitors_are_globally_exclusive_across_cpus() {
        // A driver forks 4 workers hammering one monitor from 4 CPUs,
        // joins them, then reads the count (a low-priority sibling probe
        // would run immediately here — a free CPU always exists).
        let mut sim = MpSim::new(SimConfig::default(), 4);
        let m = sim.monitor("m", (0u64, false));
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let m = m.clone();
                    ctx.fork_prio(&format!("t{i}"), Priority::DEFAULT, move |ctx| {
                        for _ in 0..20 {
                            let mut g = ctx.enter(&m);
                            g.with_mut(|(_, inside)| {
                                assert!(!*inside, "two threads inside");
                                *inside = true;
                            });
                            ctx.work(crate::micros(200));
                            g.with_mut(|(v, inside)| {
                                *v += 1;
                                *inside = false;
                            });
                        }
                    })
                    .unwrap()
                })
                .collect();
            for w in workers {
                ctx.join(w).unwrap();
            }
            let g = ctx.enter(&m);
            g.with(|(v, _)| *v)
        });
        let r = sim.run(RunLimit::For(secs(30)));
        assert_eq!(r.reason, StopReason::AllExited);
        assert_eq!(h.into_result().unwrap().unwrap(), 80);
        // Real cross-CPU contention happened.
        assert!(sim.stats().ml_contended > 0);
    }

    #[test]
    fn birrells_multiprocessor_spurious_conflict() {
        // §6.1's original scenario needs two processors: the notifier
        // keeps running (same priority as the waiter!) while the waiter
        // starts on the other CPU and hits the still-held monitor.
        let run = |mode: NotifyMode| {
            let mut sim = MpSim::new(SimConfig::default().with_notify_mode(mode), 2);
            let m = sim.monitor("m", 0u32);
            let cv = sim.condition(&m, "cv", None);
            let (m2, cv2) = (m.clone(), cv.clone());
            let _ = sim.fork_root("waiter", Priority::DEFAULT, move |ctx| {
                let mut g = ctx.enter(&m2);
                g.wait_until(&cv2, |&v| v >= 50);
            });
            let _ = sim.fork_root("notifier", Priority::DEFAULT, move |ctx| {
                for _ in 0..50 {
                    let mut g = ctx.enter(&m);
                    g.with_mut(|v| *v += 1);
                    g.notify(&cv);
                    ctx.work(crate::micros(100)); // Still holding.
                    drop(g);
                    ctx.work(crate::micros(100));
                }
            });
            let r = sim.run(RunLimit::For(secs(10)));
            assert!(!r.deadlocked());
            sim.stats().spurious_conflicts
        };
        assert!(
            run(NotifyMode::Immediate) >= 40,
            "immediate mode must conflict on an MP even between equal priorities"
        );
        assert_eq!(run(NotifyMode::DeferredReschedule), 0);
    }

    #[test]
    fn paradigms_run_unchanged_on_the_mp_scheduler() {
        // The exploit helpers from the paradigms crate work as-is and
        // actually exploit the processors (we check wall-clock virtual
        // speedup through plain fork/join here to avoid a dev-dependency
        // cycle; the full parallel_map test lives in the root tests).
        let mut sim = MpSim::new(SimConfig::default(), 4);
        let h = sim.fork_root("driver", Priority::DEFAULT, |ctx| {
            let t0 = ctx.now();
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    ctx.fork(&format!("w{i}"), |ctx| {
                        ctx.work(millis(50));
                    })
                    .unwrap()
                })
                .collect();
            for h in hs {
                ctx.join(h).unwrap();
            }
            ctx.now().since(t0)
        });
        sim.run(RunLimit::ToCompletion);
        let elapsed = h.into_result().unwrap().unwrap();
        // 200ms of work over (almost) 4 CPUs — the driver occupies one
        // only while forking/joining.
        assert!(
            elapsed < millis(120),
            "4-way fork/join took {elapsed}, no speedup?"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = MpSim::new(SimConfig::default().with_seed(5), 3);
            let m = sim.monitor("m", 0u64);
            for i in 0..5 {
                let m = m.clone();
                let _ = sim.fork_root(
                    &format!("t{i}"),
                    Priority::of(3 + (i % 3) as u8),
                    move |ctx| {
                        let mut rng = ctx.rng();
                        for _ in 0..30 {
                            ctx.work(crate::micros(rng.next_below(2000)));
                            let mut g = ctx.enter(&m);
                            g.with_mut(|v| *v += 1);
                        }
                    },
                );
            }
            sim.run(RunLimit::ToCompletion);
            (
                sim.now().as_micros(),
                sim.stats().switches,
                sim.stats().ml_contended,
            )
        };
        assert_eq!(run(), run());
    }
}
