//! A generic hierarchical timer wheel with O(1) arm and cancel.
//!
//! This is the engine behind the runtime's internal timer queue
//! (`pcr::timer`), exported so workloads can reuse it for their own
//! deadline bookkeeping — the server world arms and cancels one
//! per-request input-to-echo deadline per in-flight request, a churn
//! pattern where a sorted sleeper list (the naive baseline) would cost
//! O(n) per arm.
//!
//! The wheel behaves as an exact priority queue ordered by
//! `(deadline, insertion sequence)` so same-deadline timers fire FIFO —
//! byte-for-byte the order a `BinaryHeap` implementation produces,
//! which is what keeps traces replay-identical.
//!
//! ## Layout
//!
//! Seven levels of 64 slots each, 6 bits per level (Varghese–Lauck
//! hashed wheels, anchored form): a pending deadline `at` lives at the
//! smallest level `L` whose *parent frame* matches the wheel's anchor,
//! `(at >> 6(L+1)) == (current >> 6(L+1))`, in slot `(at >> 6L) & 63`.
//! Level 0 slots therefore hold one exact microsecond deadline each;
//! level `L` slots hold a `64^L`-µs range. The anchored rule (rather
//! than a delta-based `level_of(at - current)`) means a slot can never
//! alias entries one wrap ahead, so the bottom-up occupancy-bitmap scan
//! yields the exact global minimum and every cascade strictly descends.
//!
//! Arming is O(1): compute the level, push onto an intrusive free-list
//! slab node, set an occupancy bit. Firing pops from the level-0 slot of
//! the minimum deadline; the anchor only advances when timers fire, and
//! advancing to the minimum `e` only ever needs to cascade `e`'s own
//! slot on its level (everything else provably stays correctly placed).
//! Deadlines beyond the 2⁴²-µs horizon (~52 days) go to an overflow
//! list that drains when the anchor crosses the top-level frame.
//!
//! Cancellation is a physical unlink: [`Wheel::schedule`] returns a
//! [`WheelToken`] naming the entry's `(deadline, seq)`, and
//! [`Wheel::cancel`] walks the (short) slot list the deadline hashes to
//! under the current anchor, unlinks the node, and repairs the cached
//! minimum — no tombstones, so `len` counts only live timers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS; // 64
pub(crate) const LEVELS: usize = 7; // horizon: 2^(6*7) µs ≈ 52 days
const NIL: u32 = u32::MAX;

struct Node<K> {
    at: SimTime,
    seq: u64,
    kind: K,
    next: u32,
}

/// Names one scheduled entry, for [`Wheel::cancel`] /
/// [`HeapWheel::cancel`]. Sequence numbers are never reused, so a stale
/// token (already fired or already cancelled) safely cancels nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WheelToken {
    at: SimTime,
    seq: u64,
}

impl WheelToken {
    /// The deadline this token's entry was armed for.
    pub fn deadline(&self) -> SimTime {
        self.at
    }
}

/// Pending timers over payload `K`, ordered by `(deadline, insertion
/// seq)`.
pub struct Wheel<K: Copy> {
    /// Slab of timer nodes; `free` heads an intrusive free list through
    /// `Node::next`, so a steady-state sim stops allocating entirely.
    nodes: Vec<Node<K>>,
    free: u32,
    /// `slots[level][idx]` heads a singly-linked list of nodes. List
    /// order is arbitrary: level-0 lists share one exact deadline, and
    /// the pop scans for the minimum `seq`, so FIFO falls out exactly.
    slots: [[u32; SLOTS]; LEVELS],
    /// Bit `i` of `occupied[level]` set iff `slots[level][i]` is nonempty.
    occupied: [u64; LEVELS],
    /// The anchor, in µs. Advances only when timers fire; always ≤ the
    /// sim clock and ≤ every pending deadline.
    current: u64,
    /// Deadlines beyond the top-level frame of `current`.
    overflow: Vec<(SimTime, u64, K)>,
    /// The exact earliest pending `(at)`, kept valid across every
    /// mutation so [`Wheel::next_deadline`] is a field read.
    cached_next: Option<SimTime>,
    next_seq: u64,
    len: usize,
    allocs: u64,
    reuses: u64,
}

impl<K: Copy> Default for Wheel<K> {
    fn default() -> Self {
        Wheel {
            nodes: Vec::new(),
            free: NIL,
            slots: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            current: 0,
            overflow: Vec::new(),
            cached_next: None,
            next_seq: 0,
            len: 0,
            allocs: 0,
            reuses: 0,
        }
    }
}

impl<K: Copy> Wheel<K> {
    /// An empty wheel anchored at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The level `at` belongs to under the current anchor: the smallest
    /// `L` whose parent frame contains both. Caller guarantees `at` is
    /// inside the top-level frame (not overflow).
    #[inline]
    fn level_of(&self, at_us: u64) -> usize {
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * (level as u32 + 1);
            if at_us >> shift == self.current >> shift {
                return level;
            }
        }
        unreachable!("overflow deadlines never reach level_of");
    }

    #[inline]
    fn slot_of(at_us: u64, level: usize) -> usize {
        ((at_us >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Links a node for `(at, seq, kind)` into its slot, counting slab
    /// traffic (overflow pushes count as neither alloc nor reuse).
    fn insert(&mut self, at: SimTime, seq: u64, kind: K) {
        let at_us = at.as_micros();
        debug_assert!(at_us >= self.current, "timer armed in the past");
        if at_us >> (LEVEL_BITS * LEVELS as u32) != self.current >> (LEVEL_BITS * LEVELS as u32) {
            self.overflow.push((at, seq, kind));
            return;
        }
        let level = self.level_of(at_us);
        let idx = Self::slot_of(at_us, level);
        let head = self.slots[level][idx];
        let n = if self.free != NIL {
            let n = self.free;
            self.free = self.nodes[n as usize].next;
            self.nodes[n as usize] = Node {
                at,
                seq,
                kind,
                next: head,
            };
            self.reuses += 1;
            n
        } else {
            self.nodes.push(Node {
                at,
                seq,
                kind,
                next: head,
            });
            self.allocs += 1;
            (self.nodes.len() - 1) as u32
        };
        self.slots[level][idx] = n;
        self.occupied[level] |= 1 << idx;
    }

    /// Schedules `kind` to fire at `at`. The returned token can cancel
    /// the entry later; discarding it is free.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, kind: K) -> WheelToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, kind);
        self.len += 1;
        if self.cached_next.is_none_or(|n| at < n) {
            self.cached_next = Some(at);
        }
        WheelToken { at, seq }
    }

    /// Cancels the entry named by `token`, physically unlinking its
    /// node. Returns `false` if the entry already fired or was already
    /// cancelled (sequence numbers are unique, so a stale token can
    /// never remove a different timer).
    pub fn cancel(&mut self, token: WheelToken) -> bool {
        let at_us = token.at.as_micros();
        let top = LEVEL_BITS * LEVELS as u32;
        if at_us >> top != self.current >> top {
            // The entry, if still pending, lives on the overflow list.
            let Some(pos) = self
                .overflow
                .iter()
                .position(|&(at, seq, _)| at == token.at && seq == token.seq)
            else {
                return false;
            };
            self.overflow.remove(pos);
            self.len -= 1;
            if self.cached_next == Some(token.at) {
                self.cached_next = self.recompute_next();
            }
            return true;
        }
        if at_us < self.current {
            return false; // a deadline behind the anchor has fired
        }
        let level = self.level_of(at_us);
        let idx = Self::slot_of(at_us, level);
        let mut prev = NIL;
        let mut n = self.slots[level][idx];
        while n != NIL {
            let node = &self.nodes[n as usize];
            let next = node.next;
            if node.at == token.at && node.seq == token.seq {
                if prev == NIL {
                    self.slots[level][idx] = next;
                } else {
                    self.nodes[prev as usize].next = next;
                }
                if self.slots[level][idx] == NIL {
                    self.occupied[level] &= !(1 << idx);
                }
                self.nodes[n as usize].next = self.free;
                self.free = n;
                self.len -= 1;
                if self.cached_next == Some(token.at) {
                    self.cached_next = self.recompute_next();
                }
                return true;
            }
            prev = n;
            n = next;
        }
        false
    }

    /// `(slab allocations, slab reuses)` so far.
    pub fn alloc_stats(&self) -> (u64, u64) {
        (self.allocs, self.reuses)
    }

    /// The earliest pending deadline. Called once per inner-loop
    /// iteration of [`crate::Sim::run`], so it must stay a field read.
    #[inline]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.cached_next
    }

    /// Advances the anchor to the pending minimum `e`, cascading the one
    /// slot that can hold entries now misfiled: `e`'s own slot on `e`'s
    /// level. (Every other slot provably keeps its entries correctly
    /// placed: `e` is the global minimum, so all levels below `e`'s are
    /// empty, and `e`'s level matching its parent frame pins the anchor's
    /// coarser frames in place.)
    fn advance_to(&mut self, e: SimTime) {
        let e_us = e.as_micros();
        let top = LEVEL_BITS * LEVELS as u32;
        if e_us >> top != self.current >> top {
            // Crossing the top-level frame: everything in-wheel has
            // already fired (e is the minimum), so only overflow entries
            // remain. Re-home them under the new anchor.
            self.current = e_us;
            let pending = std::mem::take(&mut self.overflow);
            for (at, seq, kind) in pending {
                self.insert(at, seq, kind);
            }
            return;
        }
        let level = self.level_of(e_us);
        self.current = e_us;
        if level == 0 {
            return;
        }
        let idx = Self::slot_of(e_us, level);
        let mut n = self.slots[level][idx];
        self.slots[level][idx] = NIL;
        self.occupied[level] &= !(1 << idx);
        while n != NIL {
            let next = self.nodes[n as usize].next;
            let node = &self.nodes[n as usize];
            let (at, seq, kind) = (node.at, node.seq, node.kind);
            // Re-link the existing node rather than round-tripping it
            // through the free list: compute its new home directly.
            let new_level = self.level_of(at.as_micros());
            debug_assert!(new_level < level, "cascade must strictly descend");
            let new_idx = Self::slot_of(at.as_micros(), new_level);
            self.nodes[n as usize] = Node {
                at,
                seq,
                kind,
                next: self.slots[new_level][new_idx],
            };
            self.slots[new_level][new_idx] = n;
            self.occupied[new_level] |= 1 << new_idx;
            n = next;
        }
    }

    /// Recomputes the exact global minimum from the occupancy bitmaps:
    /// the lowest nonempty level wins (levels are strictly ordered in
    /// time), and within it the lowest set bit names the earliest slot.
    fn recompute_next(&self) -> Option<SimTime> {
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let idx = occ.trailing_zeros() as u64;
            if level == 0 {
                // A level-0 slot is one exact deadline.
                let frame = (self.current >> LEVEL_BITS) << LEVEL_BITS;
                return Some(SimTime::from_micros(frame | idx));
            }
            // A coarser slot spans a range: scan its (short) list.
            let mut n = self.slots[level][idx as usize];
            let mut min = SimTime::MAX;
            while n != NIL {
                let node = &self.nodes[n as usize];
                if node.at < min {
                    min = node.at;
                }
                n = node.next;
            }
            return Some(min);
        }
        self.overflow.iter().map(|&(at, _, _)| at).min()
    }

    /// Pops the next timer due at or before `now` — the globally
    /// earliest `(at, seq)` pair, so same-deadline timers fire FIFO.
    #[inline]
    pub fn pop_due(&mut self, now: SimTime) -> Option<K> {
        self.pop_due_at(now).map(|(_, kind)| kind)
    }

    /// Like [`Wheel::pop_due`], also returning the deadline the entry
    /// was armed for (callers driving event loops usually need it).
    pub fn pop_due_at(&mut self, now: SimTime) -> Option<(SimTime, K)> {
        let e = self.cached_next?;
        if e > now {
            return None;
        }
        self.advance_to(e);
        let idx = Self::slot_of(e.as_micros(), 0);
        debug_assert!(self.occupied[0] & (1 << idx) != 0, "minimum slot empty");
        // The level-0 slot holds only entries at exactly `e`; unlink the
        // one with the smallest seq (lists are unordered but tiny: only
        // same-microsecond timers share a slot).
        let mut best = NIL;
        let mut best_prev = NIL;
        let mut prev = NIL;
        let mut n = self.slots[0][idx];
        while n != NIL {
            if best == NIL || self.nodes[n as usize].seq < self.nodes[best as usize].seq {
                best = n;
                best_prev = prev;
            }
            prev = n;
            n = self.nodes[n as usize].next;
        }
        let kind = self.nodes[best as usize].kind;
        let after = self.nodes[best as usize].next;
        if best_prev == NIL {
            self.slots[0][idx] = after;
        } else {
            self.nodes[best_prev as usize].next = after;
        }
        if self.slots[0][idx] == NIL {
            self.occupied[0] &= !(1 << idx);
        }
        self.nodes[best as usize].next = self.free;
        self.free = best;
        self.len -= 1;
        self.cached_next = self.recompute_next();
        Some((e, kind))
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---- the sorted-heap implementation the wheel replaced, kept as the
// ---- property-test oracle and the microbench baseline ----------------

#[derive(PartialEq, Eq)]
struct Entry<K> {
    at: SimTime,
    seq: u64,
    kind: K,
}

impl<K: Eq> Ord for Entry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<K: Eq> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The `BinaryHeap` timer queue the wheel replaced. Kept as the sorted
/// oracle for the wheel's property tests and as the baseline the
/// `hotpath` microbench compares arm/fire cost against. Cancellation is
/// O(n) rebuild — fine for an oracle, the reason the wheel exists.
pub struct HeapWheel<K: Copy + Eq> {
    heap: BinaryHeap<Reverse<Entry<K>>>,
    next_seq: u64,
}

impl<K: Copy + Eq> Default for HeapWheel<K> {
    fn default() -> Self {
        HeapWheel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<K: Copy + Eq> HeapWheel<K> {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: K) -> WheelToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, kind }));
        WheelToken { at, seq }
    }

    /// Cancels the entry named by `token`; `false` if already gone.
    pub fn cancel(&mut self, token: WheelToken) -> bool {
        let before = self.heap.len();
        let entries = std::mem::take(&mut self.heap);
        self.heap = entries
            .into_iter()
            .filter(|Reverse(e)| !(e.at == token.at && e.seq == token.seq))
            .collect();
        self.heap.len() != before
    }

    /// The earliest pending deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the next timer due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<K> {
        self.pop_due_at(now).map(|(_, kind)| kind)
    }

    /// Like [`HeapWheel::pop_due`], also returning the deadline.
    pub fn pop_due_at(&mut self, now: SimTime) -> Option<(SimTime, K)> {
        if self.next_deadline()? <= now {
            self.heap.pop().map(|Reverse(e)| (e.at, e.kind))
        } else {
            None
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::time::{micros, millis};

    #[test]
    fn fires_in_deadline_order() {
        let mut w = Wheel::new();
        w.schedule(SimTime::ZERO + millis(30), 3u32);
        w.schedule(SimTime::ZERO + millis(10), 1u32);
        w.schedule(SimTime::ZERO + millis(20), 2u32);
        assert_eq!(w.next_deadline(), Some(SimTime::ZERO + millis(10)));
        let now = SimTime::ZERO + millis(25);
        assert_eq!(w.pop_due(now), Some(1));
        assert_eq!(w.pop_due(now), Some(2));
        assert_eq!(w.pop_due(now), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn same_deadline_fires_fifo() {
        let mut w = Wheel::new();
        let t = SimTime::ZERO + millis(5);
        for i in 0..4u32 {
            w.schedule(t, i);
        }
        for i in 0..4 {
            assert_eq!(w.pop_due(t), Some(i));
        }
    }

    #[test]
    fn same_deadline_fifo_survives_cascading() {
        // Entries inserted at a coarse level cascade down when the
        // anchor reaches them; interleave them with entries armed late
        // (landing at level 0 directly, with later seqs) and the pop
        // order must still be pure insertion order.
        let mut w = Wheel::new();
        let t = SimTime::from_micros(100_000); // level > 0 from anchor 0
        for i in 0..3u32 {
            w.schedule(t, i);
        }
        // Fire an early timer to advance the anchor near t, so the next
        // arms land in level 0 of t's frame.
        w.schedule(SimTime::from_micros(99_990), 99u32);
        assert_eq!(w.pop_due(SimTime::from_micros(99_990)), Some(99));
        for i in 3..6u32 {
            w.schedule(t, i);
        }
        for i in 0..6 {
            assert_eq!(w.pop_due(t), Some(i), "pop {i}");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn empty_wheel() {
        let mut w = Wheel::<u32>::new();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        assert_eq!(w.pop_due(SimTime::MAX), None);
    }

    #[test]
    fn cascade_boundaries_are_exact() {
        // Deadlines straddling every level boundary: 64^L ± 1 around the
        // anchor. next_deadline must stay exact through each advance.
        let mut w = Wheel::new();
        let mut deadlines = Vec::new();
        for level in 1..LEVELS as u32 {
            let edge = 1u64 << (LEVEL_BITS * level);
            for at in [edge - 1, edge, edge + 1] {
                deadlines.push(at);
                w.schedule(SimTime::from_micros(at), 0u32);
            }
        }
        deadlines.sort_unstable();
        for &d in &deadlines {
            assert_eq!(w.next_deadline(), Some(SimTime::from_micros(d)));
            assert_eq!(w.pop_due(SimTime::from_micros(d)), Some(0));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_horizon_round_trips() {
        let mut w = Wheel::new();
        let beyond = 1u64 << (LEVEL_BITS * LEVELS as u32); // past the horizon
        w.schedule(SimTime::from_micros(beyond + 5), 2u32);
        w.schedule(SimTime::from_micros(7), 1u32);
        assert_eq!(w.next_deadline(), Some(SimTime::from_micros(7)));
        assert_eq!(w.pop_due(SimTime::from_micros(7)), Some(1));
        assert_eq!(w.next_deadline(), Some(SimTime::from_micros(beyond + 5)));
        assert_eq!(w.pop_due(SimTime::MAX), Some(2));
        assert!(w.is_empty());
    }

    /// The jittered-deadline property test: a few thousand random
    /// arm/fire interleavings must pop in exactly the heap oracle's
    /// order, including ties, at every step.
    #[test]
    fn wheel_matches_heap_oracle_on_jittered_deadlines() {
        for seed in [0x5EED_u64, 0xCEDA_2026, 0xDEAD_BEEF] {
            let mut rng = SplitMix64::new(seed);
            let mut wheel = Wheel::new();
            let mut heap = HeapWheel::new();
            let mut now = SimTime::ZERO;
            for step in 0..4000 {
                if rng.next_below(3) != 0 {
                    // Arm: mostly near-future, sometimes far, with
                    // deliberate ties (coarse quantization).
                    let span = match rng.next_below(4) {
                        0 => rng.next_below(64),
                        1 => rng.next_below(5_000),
                        2 => rng.next_below(300_000) / 100 * 100, // ties
                        _ => rng.next_below(1 << 24),
                    };
                    let at = now + micros(span);
                    let tid = rng.next_below(50) as u32;
                    wheel.schedule(at, tid);
                    heap.schedule(at, tid);
                } else {
                    now += micros(rng.next_below(20_000));
                    loop {
                        let expect = heap.pop_due(now);
                        let got = wheel.pop_due(now);
                        assert_eq!(got, expect, "seed {seed:#x} step {step} at {now}");
                        if expect.is_none() {
                            break;
                        }
                    }
                }
                assert_eq!(
                    wheel.next_deadline(),
                    heap.next_deadline(),
                    "seed {seed:#x} step {step}"
                );
            }
        }
    }

    /// The cancellation property test: randomized arm / cancel-before-
    /// fire / fire churn (the server world's per-request deadline
    /// pattern) must leave the wheel equivalent to the heap oracle at
    /// every step — same cancel verdicts, same pop order including
    /// ties, same exact `next_deadline`, same live count.
    #[test]
    fn wheel_matches_heap_oracle_under_cancel_churn() {
        for seed in [0xCA11_u64, 0xBEE5_2026, 0x5EED_CAFE] {
            let mut rng = SplitMix64::new(seed);
            let mut wheel = Wheel::new();
            let mut heap = HeapWheel::new();
            let mut now = SimTime::ZERO;
            // Live tokens; stale ones (popped by the fire branch) stay
            // behind on purpose so double-cancels get exercised too.
            let mut tokens: Vec<WheelToken> = Vec::new();
            for step in 0..6000 {
                match rng.next_below(8) {
                    // Arm (heavily) — sessions open faster than they
                    // resolve, so the wheel stays populated.
                    0..=3 => {
                        let span = match rng.next_below(4) {
                            0 => rng.next_below(64),
                            1 => rng.next_below(5_000),
                            2 => rng.next_below(300_000) / 100 * 100, // ties
                            _ => rng.next_below(1 << 22),
                        };
                        let at = now + micros(span);
                        let k = rng.next_below(1 << 20) as u32;
                        let tw = wheel.schedule(at, k);
                        let th = heap.schedule(at, k);
                        assert_eq!(tw, th, "token streams must agree");
                        tokens.push(tw);
                    }
                    // Cancel-before-fire: pick any remembered token
                    // (possibly already fired or already cancelled) and
                    // both sides must agree on whether it was live.
                    4..=5 => {
                        if tokens.is_empty() {
                            continue;
                        }
                        let i = rng.pick_index(tokens.len()).expect("nonempty");
                        // Half the time forget the token (exercising
                        // stale double-cancel), half the time keep it.
                        let tok = if rng.next_below(2) == 0 {
                            tokens.swap_remove(i)
                        } else {
                            tokens[i]
                        };
                        let got = wheel.cancel(tok);
                        let expect = heap.cancel(tok);
                        assert_eq!(got, expect, "seed {seed:#x} step {step} cancel {tok:?}");
                    }
                    // Fire: advance time and drain everything due.
                    _ => {
                        now += micros(rng.next_below(30_000));
                        loop {
                            let expect = heap.pop_due_at(now);
                            let got = wheel.pop_due_at(now);
                            assert_eq!(got, expect, "seed {seed:#x} step {step} at {now}");
                            if expect.is_none() {
                                break;
                            }
                        }
                    }
                }
                assert_eq!(
                    wheel.next_deadline(),
                    heap.next_deadline(),
                    "seed {seed:#x} step {step}"
                );
                assert_eq!(wheel.len(), heap.len(), "seed {seed:#x} step {step}");
            }
        }
    }

    #[test]
    fn cancel_unlinks_physically_and_repairs_minimum() {
        let mut w = Wheel::new();
        let t1 = w.schedule(SimTime::from_micros(10), 1u32);
        let t2 = w.schedule(SimTime::from_micros(10), 2u32);
        let _t3 = w.schedule(SimTime::from_micros(500), 3u32);
        assert_eq!(w.len(), 3);
        // Cancelling the earliest entry must re-derive the minimum.
        assert!(w.cancel(t1));
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_deadline(), Some(SimTime::from_micros(10)));
        assert!(w.cancel(t2));
        assert_eq!(w.next_deadline(), Some(SimTime::from_micros(500)));
        // Double-cancel and cancel-after-fire are inert.
        assert!(!w.cancel(t1));
        assert_eq!(w.pop_due(SimTime::from_micros(500)), Some(3));
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_reaches_overflow_entries() {
        let mut w = Wheel::new();
        let beyond = 1u64 << (LEVEL_BITS * LEVELS as u32);
        let tok = w.schedule(SimTime::from_micros(beyond + 9), 7u32);
        assert_eq!(w.next_deadline(), Some(SimTime::from_micros(beyond + 9)));
        assert!(w.cancel(tok));
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        assert!(!w.cancel(tok));
    }

    #[test]
    fn cancelled_nodes_return_to_the_slab() {
        let mut w = Wheel::new();
        let tok = w.schedule(SimTime::from_micros(50), 0u32);
        assert!(w.cancel(tok));
        w.schedule(SimTime::from_micros(60), 1u32);
        let (allocs, reuses) = w.alloc_stats();
        assert_eq!((allocs, reuses), (1, 1), "cancel must recycle the node");
    }

    #[test]
    fn slab_recycles_nodes() {
        let mut w = Wheel::new();
        for round in 0..10 {
            let t = SimTime::from_micros(round * 100 + 50);
            w.schedule(t, 0u32);
            assert_eq!(w.pop_due(t), Some(0));
        }
        let (allocs, reuses) = w.alloc_stats();
        assert_eq!(allocs, 1, "steady-state arm/fire must not grow the slab");
        assert_eq!(reuses, 9);
    }
}
