//! The API simulated code calls: `ThreadCtx`.
//!
//! Every simulated thread body receives a `&ThreadCtx`. All interaction
//! with the runtime — forking, joining, working, sleeping, yielding,
//! monitors, condition variables — goes through it. Between two calls the
//! thread's Rust code executes in zero virtual time; virtual CPU is
//! consumed explicitly with [`ThreadCtx::work`].

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::condition::Condition;
use crate::error::{ForkError, JoinError};
use crate::event::WaitOutcome;
use crate::monitor::{Monitor, MonitorGuard, MonitorId};
use crate::rendezvous::{BodyFn, ForkSpec, Reply, Request, ShutdownSignal, ThreadChannels};
use crate::rng::SplitMix64;
use crate::thread::{JoinHandle, Priority, ResultSlot, ThreadId};
use crate::time::{SimDuration, SimTime};

/// Options for [`ThreadCtx::fork_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ForkOpts {
    /// Initial priority; `None` inherits the forker's priority.
    pub priority: Option<Priority>,
    /// Create the thread already detached.
    pub detached: bool,
}

impl ForkOpts {
    /// Sets an explicit initial priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = Some(p);
        self
    }

    /// Marks the thread as detached at creation.
    pub fn detached(mut self) -> Self {
        self.detached = true;
        self
    }
}

/// A simulated thread's handle to the runtime.
///
/// Not `Clone` and not shareable across threads: it embodies the calling
/// thread's identity. Simulated code must not perform *real* blocking
/// (OS sleeps, real locks held across calls); the simulation models time
/// itself.
pub struct ThreadCtx {
    pub(crate) tid: ThreadId,
    pub(crate) name: String,
    pub(crate) channels: ThreadChannels,
    pub(crate) clock: Arc<AtomicU64>,
    pub(crate) shutting_down: Cell<bool>,
    pub(crate) priority: Cell<Priority>,
    pub(crate) seed: u64,
}

impl ThreadCtx {
    /// This thread's identity.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// This thread's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This thread's current priority.
    pub fn priority(&self) -> Priority {
        self.priority.get()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.clock.load(Ordering::Relaxed))
    }

    /// A deterministic per-thread random generator, derived from the
    /// simulation seed and this thread's id.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(
            self.seed ^ (self.tid.as_u32() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    // ---- core rendezvous ------------------------------------------------

    fn call(&self, req: Request) -> Reply {
        if self.shutting_down.get() {
            std::panic::panic_any(ShutdownSignal);
        }
        if self.channels.req_tx.send((self.tid, req)).is_err() {
            self.enter_shutdown();
        }
        match self.channels.reply_rx.recv() {
            Ok(Reply::Shutdown) | Err(_) => self.enter_shutdown(),
            Ok(Reply::Fault(msg)) => panic!("{msg}"),
            Ok(r) => r,
        }
    }

    fn enter_shutdown(&self) -> ! {
        self.shutting_down.set(true);
        std::panic::panic_any(ShutdownSignal)
    }

    // ---- thread lifecycle ----------------------------------------------

    /// FORKs a thread running `f`, returning a handle to JOIN.
    ///
    /// Under [`crate::ForkPolicy::WaitForResources`] this may block until a
    /// thread slot frees up; under [`crate::ForkPolicy::Error`] it returns
    /// [`ForkError::ResourcesExhausted`] at the limit (§5.4).
    pub fn fork<T, F>(&self, name: &str, f: F) -> Result<JoinHandle<T>, ForkError>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        self.fork_with(name, ForkOpts::default(), f)
    }

    /// FORKs at an explicit priority.
    pub fn fork_prio<T, F>(
        &self,
        name: &str,
        priority: Priority,
        f: F,
    ) -> Result<JoinHandle<T>, ForkError>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        self.fork_with(name, ForkOpts::default().priority(priority), f)
    }

    /// FORKs a detached thread (it will never be JOINed).
    pub fn fork_detached<F>(&self, name: &str, f: F) -> Result<ThreadId, ForkError>
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        self.fork_with(name, ForkOpts::default().detached(), f)
            .map(|h| h.tid)
    }

    /// FORKs a detached thread at an explicit priority.
    pub fn fork_detached_prio<F>(
        &self,
        name: &str,
        priority: Priority,
        f: F,
    ) -> Result<ThreadId, ForkError>
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        self.fork_with(name, ForkOpts::default().detached().priority(priority), f)
            .map(|h| h.tid)
    }

    /// FORKs with explicit options.
    pub fn fork_with<T, F>(
        &self,
        name: &str,
        opts: ForkOpts,
        f: F,
    ) -> Result<JoinHandle<T>, ForkError>
    where
        T: Send + 'static,
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
        let body = wrap_body(f, Arc::clone(&slot));
        match self.call(Request::Fork(ForkSpec {
            name: name.to_string(),
            priority: opts.priority,
            detached: opts.detached,
            body,
        })) {
            Reply::Forked(tid) => Ok(JoinHandle { tid, slot }),
            Reply::ForkFailed => Err(ForkError::ResourcesExhausted),
            r => unreachable!("fork: unexpected reply {r:?}"),
        }
    }

    /// JOINs a forked thread, returning the value its body returned, or
    /// the panic message if it panicked. Consumes the handle: a thread may
    /// be JOINed at most once.
    pub fn join<T>(&self, handle: JoinHandle<T>) -> Result<T, JoinError> {
        match self.call(Request::Join(handle.tid)) {
            Reply::Joined => handle.take_result(),
            r => unreachable!("join: unexpected reply {r:?}"),
        }
    }

    /// DETACHes a forked thread, telling the runtime to recycle its
    /// resources when it terminates.
    pub fn detach<T>(&self, handle: JoinHandle<T>) {
        let _ = self.call(Request::Detach(handle.tid));
    }

    // ---- time -----------------------------------------------------------

    /// Consumes `d` of virtual CPU time. Preemptible: higher-priority
    /// wakeups and quantum expiry can interleave other threads.
    pub fn work(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let _ = self.call(Request::Work(d));
    }

    /// Sleeps for at least `d`. Like PCR timeouts, the wake time is
    /// quantized to the timer granularity: "the smallest sleep interval is
    /// the remainder of the scheduler quantum" (§6.3).
    pub fn sleep(&self, d: SimDuration) {
        let _ = self.call(Request::Sleep { d, precise: false });
    }

    /// Sleeps for exactly `d`, unquantized. Models waiting for an external
    /// device event delivered by the host OS rather than by PCR's timer
    /// (keyboard interrupts, network packets).
    pub fn sleep_precise(&self, d: SimDuration) {
        let _ = self.call(Request::Sleep { d, precise: true });
    }

    // ---- scheduling -----------------------------------------------------

    /// YIELDs the processor; its only purpose is to cause the scheduler to
    /// run.
    pub fn yield_now(&self) {
        let _ = self.call(Request::Yield);
    }

    /// `YieldButNotToMe` (§5.2): gives the processor to the highest
    /// priority ready thread *other than the caller*, if such a thread
    /// exists. The favored thread is shielded from preemption by the
    /// caller until its timeslice ends.
    pub fn yield_but_not_to_me(&self) {
        let _ = self.call(Request::YieldButNotToMe);
    }

    /// Donates a timeslice to a specific ready thread (directed yield).
    /// No-op if the target is not ready.
    pub fn directed_yield(&self, target: ThreadId, slice: SimDuration) {
        let _ = self.call(Request::DirectedYield { target, slice });
    }

    /// Donates a timeslice to a randomly chosen ready thread — the
    /// SystemDaemon's proportional-scheduling hack (§6.2).
    pub fn donate_random(&self, slice: SimDuration) {
        let _ = self.call(Request::DonateRandom { slice });
    }

    /// Changes this thread's priority.
    pub fn set_priority(&self, p: Priority) {
        self.priority.set(p);
        let _ = self.call(Request::SetPriority(p));
    }

    // ---- monitors and condition variables --------------------------------

    /// Enters `m`, blocking if another thread is inside.
    ///
    /// # Panics
    ///
    /// Panics on recursive entry: Mesa monitors are not re-entrant and a
    /// recursive ENTER would self-deadlock.
    pub fn enter<'a, T: Send + 'static>(&'a self, m: &'a Monitor<T>) -> MonitorGuard<'a, T> {
        match self.call(Request::MonitorEnter(m.id)) {
            Reply::Ok => MonitorGuard {
                ctx: self,
                monitor: m,
                active: true,
            },
            r => unreachable!("enter: unexpected reply {r:?}"),
        }
    }

    pub(crate) fn monitor_exit(&self, mid: MonitorId) {
        if self.shutting_down.get() {
            return;
        }
        if self
            .channels
            .req_tx
            .send((self.tid, Request::MonitorExit(mid)))
            .is_err()
        {
            self.shutting_down.set(true);
            return;
        }
        match self.channels.reply_rx.recv() {
            Ok(Reply::Shutdown) | Err(_) => {
                self.shutting_down.set(true);
                // Unwind unless we are already unwinding (a panic inside a
                // panic would abort the process).
                if !std::thread::panicking() {
                    std::panic::panic_any(ShutdownSignal);
                }
            }
            _ => {}
        }
    }

    /// WAITs on `cv`, atomically releasing the guard's monitor, queueing
    /// on the CV, and re-entering the monitor before returning.
    ///
    /// Mesa semantics: the condition is *not* guaranteed to hold on
    /// return; re-check it in a loop (or use
    /// [`MonitorGuard::wait_until`]).
    ///
    /// # Panics
    ///
    /// Panics if `cv` belongs to a different monitor than `guard`.
    pub fn wait<T: Send + 'static>(
        &self,
        guard: &mut MonitorGuard<'_, T>,
        cv: &Condition,
    ) -> WaitOutcome {
        assert_eq!(
            guard.monitor.id, cv.monitor,
            "WAIT: condition {:?} does not belong to monitor {:?}",
            cv.id, guard.monitor.id
        );
        match self.call(Request::CvWait { cv: cv.id }) {
            Reply::Wait(outcome) => outcome,
            r => unreachable!("wait: unexpected reply {r:?}"),
        }
    }

    /// NOTIFYs `cv`: makes exactly one waiter runnable, if any is queued.
    /// Requires the monitor to be held, which the guard proves.
    pub fn notify<T: Send + 'static>(&self, guard: &MonitorGuard<'_, T>, cv: &Condition) {
        assert_eq!(
            guard.monitor.id, cv.monitor,
            "NOTIFY: condition {:?} does not belong to monitor {:?}",
            cv.id, guard.monitor.id
        );
        let _ = self.call(Request::Notify { cv: cv.id });
    }

    /// BROADCASTs `cv`: makes every waiter runnable.
    pub fn broadcast<T: Send + 'static>(&self, guard: &MonitorGuard<'_, T>, cv: &Condition) {
        assert_eq!(
            guard.monitor.id, cv.monitor,
            "BROADCAST: condition {:?} does not belong to monitor {:?}",
            cv.id, guard.monitor.id
        );
        let _ = self.call(Request::Broadcast { cv: cv.id });
    }

    /// Creates a monitor at run time.
    pub fn new_monitor<T: Send + 'static>(&self, name: &str, data: T) -> Monitor<T> {
        match self.call(Request::NewMonitor {
            name: name.to_string(),
        }) {
            Reply::MonitorId(id) => Monitor::new(id, name, data),
            r => unreachable!("new_monitor: unexpected reply {r:?}"),
        }
    }

    /// Creates a condition variable on `m` at run time.
    pub fn new_condition<T: Send + 'static>(
        &self,
        m: &Monitor<T>,
        name: &str,
        timeout: Option<SimDuration>,
    ) -> Condition {
        match self.call(Request::NewCondition {
            name: name.to_string(),
            monitor: m.id,
            timeout,
        }) {
            Reply::CondId(id) => Condition {
                id,
                monitor: m.id,
                name: name.to_string(),
                timeout,
            },
            r => unreachable!("new_condition: unexpected reply {r:?}"),
        }
    }

    pub(crate) fn send_exit(&self, panicked: bool) {
        if self.shutting_down.get() {
            return;
        }
        let _ = self
            .channels
            .req_tx
            .send((self.tid, Request::Exit { panicked }));
    }
}

/// Wraps a user body for result capture and panic handling.
pub(crate) fn wrap_body<T: Send + 'static>(
    f: impl FnOnce(&ThreadCtx) -> T + Send + 'static,
    slot: ResultSlot<T>,
) -> BodyFn {
    Box::new(move |ctx: &ThreadCtx| {
        match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
            Ok(v) => {
                *slot.lock().expect("result slot poisoned") = Some(Ok(v));
                ctx.send_exit(false);
            }
            Err(payload) => {
                if payload.is::<ShutdownSignal>() {
                    // Teardown unwind: vanish quietly.
                    return;
                }
                let msg = panic_message(payload.as_ref());
                *slot.lock().expect("result slot poisoned") = Some(Err(msg));
                ctx.send_exit(true);
            }
        }
    })
}

/// Extracts a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
