//! Condition variables.
//!
//! Each condition variable belongs to one monitor and represents a state
//! of that monitor's data (a *condition*) plus a queue of threads waiting
//! for the condition to become true. WAITs may time out: the timeout
//! interval is a property of the CV, set at creation, and deadlines are
//! quantized to the runtime's timer granularity (50 ms in PCR).

use std::fmt;

use crate::event::CondId;
use crate::monitor::MonitorId;
use crate::time::SimDuration;

/// A condition variable handle.
///
/// Cloning the handle refers to the same queue. NOTIFY has *exactly one
/// waiter wakens* semantics and is only a performance hint: waiters must
/// re-check their predicate, so BROADCAST can always be substituted
/// without affecting correctness (§2).
#[derive(Clone)]
pub struct Condition {
    pub(crate) id: CondId,
    pub(crate) monitor: MonitorId,
    pub(crate) name: String,
    pub(crate) timeout: Option<SimDuration>,
}

impl Condition {
    /// The CV's identity in the event stream.
    pub fn id(&self) -> CondId {
        self.id
    }

    /// The monitor this CV belongs to.
    pub fn monitor_id(&self) -> MonitorId {
        self.monitor
    }

    /// The CV's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The timeout interval associated with this CV, if any.
    pub fn timeout(&self) -> Option<SimDuration> {
        self.timeout
    }
}

impl fmt::Debug for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condition")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("monitor", &self.monitor)
            .field("timeout", &self.timeout)
            .finish()
    }
}
