//! Mesa-style monitors.
//!
//! A monitor couples a mutual-exclusion lock with the data it protects.
//! In Mesa the compiler inserted locking code into monitored procedures;
//! here [`Monitor<T>`] owns the protected data and the only way to touch
//! it is through a [`MonitorGuard`] obtained from
//! [`crate::ThreadCtx::enter`], so possession of the guard plays the role
//! of "executing inside the module".

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::condition::Condition;
use crate::ctx::ThreadCtx;
use crate::time::SimDuration;

/// Identifier of a monitor lock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorId(pub(crate) u32);

impl MonitorId {
    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw index — for trace tooling that works
    /// with exported (flattened) event records.
    pub const fn from_u32(v: u32) -> MonitorId {
        MonitorId(v)
    }
}

impl fmt::Debug for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ML{}", self.0)
    }
}

pub(crate) struct MonitorShared<T> {
    pub(crate) name: String,
    // The simulator guarantees a single owner, but the data still sits
    // behind a real mutex so that even API misuse cannot cause a data race.
    pub(crate) data: Mutex<T>,
}

/// A monitor protecting a value of type `T`.
///
/// Cloning the monitor clones the *handle*; all clones refer to the same
/// lock and data, just as every procedure of a Mesa module shares the
/// module's mutex.
///
/// # Examples
///
/// ```
/// use pcr::{millis, Priority, RunLimit, Sim, SimConfig};
///
/// let mut sim = Sim::new(SimConfig::default());
/// let counter = sim.monitor("counter", 0u64);
/// for i in 0..3 {
///     let counter = counter.clone();
///     sim.fork_root(&format!("t{i}"), Priority::DEFAULT, move |ctx| {
///         let mut g = ctx.enter(&counter);
///         let v = g.with(|v| *v);
///         ctx.work(millis(1)); // Preemption can land here; the monitor holds.
///         g.with_mut(|x| *x = v + 1);
///     });
/// }
/// let probe = sim.fork_root("probe", Priority::of(2), move |ctx| {
///     let g = ctx.enter(&counter);
///     g.with(|v| *v)
/// });
/// sim.run(RunLimit::ToCompletion);
/// assert_eq!(probe.into_result().unwrap().unwrap(), 3);
/// ```
pub struct Monitor<T: Send + 'static> {
    pub(crate) id: MonitorId,
    pub(crate) shared: Arc<MonitorShared<T>>,
}

impl<T: Send + 'static> Clone for Monitor<T> {
    fn clone(&self) -> Self {
        Monitor {
            id: self.id,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> Monitor<T> {
    pub(crate) fn new(id: MonitorId, name: &str, data: T) -> Self {
        Monitor {
            id,
            shared: Arc::new(MonitorShared {
                name: name.to_string(),
                data: Mutex::new(data),
            }),
        }
    }

    /// The monitor's identity in the event stream.
    pub fn id(&self) -> MonitorId {
        self.id
    }

    /// The monitor's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }
}

impl<T: Send + 'static> fmt::Debug for Monitor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field("id", &self.id)
            .field("name", &self.shared.name)
            .finish()
    }
}

/// Proof that the calling thread is inside a monitor.
///
/// Dropping the guard exits the monitor (including during unwinding, so a
/// panicking thread releases its locks, as Mesa's UNWIND machinery did).
/// Condition-variable operations require a guard, giving the same static
/// guarantee the Mesa compiler enforced: CV operations are only invoked
/// with the monitor lock held.
pub struct MonitorGuard<'a, T: Send + 'static> {
    pub(crate) ctx: &'a ThreadCtx,
    pub(crate) monitor: &'a Monitor<T>,
    pub(crate) active: bool,
}

impl<'a, T: Send + 'static> MonitorGuard<'a, T> {
    /// Reads the protected data.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.monitor.shared.data.lock())
    }

    /// Mutates the protected data.
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.monitor.shared.data.lock())
    }

    /// WAITs on `cv`, atomically releasing the monitor and re-entering it
    /// before returning. See [`crate::ThreadCtx::wait`].
    pub fn wait(&mut self, cv: &Condition) -> crate::WaitOutcome {
        self.ctx.wait(self, cv)
    }

    /// WAITs until `pred` holds, re-checking after every wakeup — the
    /// "WAIT only in a loop" convention of §5.3. Timeouts simply re-check.
    pub fn wait_until(&mut self, cv: &Condition, mut pred: impl FnMut(&T) -> bool) {
        while !self.with(&mut pred) {
            self.wait(cv);
        }
    }

    /// WAITs until `pred` holds or the deadline passes; returns whether
    /// the predicate held.
    pub fn wait_until_before(
        &mut self,
        cv: &Condition,
        deadline: SimDuration,
        mut pred: impl FnMut(&T) -> bool,
    ) -> bool {
        let end = self.ctx.now() + deadline;
        loop {
            if self.with(&mut pred) {
                return true;
            }
            if self.ctx.now() >= end {
                return false;
            }
            self.wait(cv);
        }
    }

    /// NOTIFYs `cv`. See [`crate::ThreadCtx::notify`].
    pub fn notify(&self, cv: &Condition) {
        self.ctx.notify(self, cv);
    }

    /// BROADCASTs `cv`. See [`crate::ThreadCtx::broadcast`].
    pub fn broadcast(&self, cv: &Condition) {
        self.ctx.broadcast(self, cv);
    }

    /// The monitor this guard holds.
    pub fn monitor_id(&self) -> MonitorId {
        self.monitor.id
    }
}

impl<'a, T: Send + 'static> Drop for MonitorGuard<'a, T> {
    fn drop(&mut self) {
        if self.active {
            self.ctx.monitor_exit(self.monitor.id);
        }
    }
}
