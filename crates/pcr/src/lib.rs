//! # pcr — a deterministic reimplementation of the Portable Common Runtime's thread model
//!
//! This crate rebuilds, as a virtual-time simulation, the user-level
//! thread runtime underneath the two systems studied in *Using Threads in
//! Interactive Systems: A Case Study* (Hauser, Jacobi, Theimer, Welch,
//! Weiser; SOSP 1993): Xerox PARC's **Portable Common Runtime** (PCR)
//! implementing the **Mesa thread model**.
//!
//! The model (paper §2):
//!
//! * multiple lightweight, **pre-emptively scheduled threads** sharing an
//!   address space, created with FORK and reaped with JOIN (at most once)
//!   or DETACH;
//! * **monitors**: a mutual-exclusion lock bound to the data it protects
//!   ([`Monitor`], entered via [`ThreadCtx::enter`]);
//! * **condition variables** with per-CV timeout intervals, NOTIFY with
//!   *exactly one waiter wakens* semantics, and BROADCAST; waiters must
//!   re-check their predicate ("WAIT only in a loop");
//! * **7 strict priorities** with round-robin among equal priorities, a
//!   **50 ms timeslice**, and preemption even while holding monitor locks;
//! * YIELD, the paper's `YieldButNotToMe`, directed yields, and the
//!   SystemDaemon that donates random slices to overcome stable priority
//!   inversions (§6.2);
//! * the §6.1 NOTIFY fix (defer rescheduling until monitor exit) as a
//!   configurable [`NotifyMode`];
//! * fork-failure policies (§5.4) and the per-monitor metalock with
//!   optional cycle donation (§6.2).
//!
//! ## How the simulation works
//!
//! Each simulated thread runs on a real OS thread, but the scheduler
//! unparks exactly one at a time; user code between two runtime calls
//! executes in zero virtual time, and virtual CPU is consumed explicitly
//! with [`ThreadCtx::work`]. All scheduling state lives in [`Sim`], so a
//! given configuration and seed replays identically — which is what makes
//! the paper's tables reproducible as deterministic experiments.
//!
//! ## Example
//!
//! ```
//! use pcr::{millis, Priority, RunLimit, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let queue = sim.monitor("queue", Vec::<u32>::new());
//! let nonempty = sim.condition(&queue, "nonempty", Some(millis(50)));
//!
//! let (qc, cv) = (queue.clone(), nonempty.clone());
//! sim.fork_root("consumer", Priority::of(5), move |ctx| {
//!     let mut g = ctx.enter(&qc);
//!     g.wait_until(&cv, |q| !q.is_empty());
//!     g.with_mut(|q| q.pop().unwrap())
//! });
//! let (qp, cv2) = (queue, nonempty);
//! sim.fork_root("producer", Priority::of(4), move |ctx| {
//!     ctx.work(millis(3));
//!     let mut g = ctx.enter(&qp);
//!     g.with_mut(|q| q.push(7));
//!     g.notify(&cv2);
//! });
//!
//! let report = sim.run(RunLimit::ToCompletion);
//! assert!(!report.deadlocked());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod chaos;
mod condition;
mod config;
mod ctx;
mod error;
mod event;
mod hazard;
pub mod microbench;
mod monitor;
pub mod mp;
mod rendezvous;
mod rng;
mod sched;
mod thread;
mod time;
mod timer;
mod waitgraph;
pub mod weakmem;
pub mod wheel;

pub use chaos::{ChaosConfig, FaultDecision, FaultSchedule, FaultSiteKind, PctConfig, StallSpec};
pub use condition::Condition;
pub use config::{ForkPolicy, NotifyMode, SimConfig, SystemDaemonConfig};
pub use ctx::{ForkOpts, ThreadCtx};
pub use error::{BlockedThread, DeadlockReport, ForkError, JoinError, RunReport, StopReason};
pub use event::{
    CondId, Event, EventKind, EventMask, MultiSink, NullSink, TraceSink, VecSink, WaitOutcome,
    YieldKind,
};
pub use hazard::{Hazard, HazardConfig, HazardCounts, HazardKind, HazardMonitor};
pub use monitor::{Monitor, MonitorGuard, MonitorId};
pub use mp::MpSim;
pub use rng::SplitMix64;
pub use sched::policy;
pub use sched::policy::PolicyKind;
pub use sched::{AllocCounters, RunLimit, SchedLatency, Sim, SimStats};
pub use thread::{JoinHandle, Priority, ThreadId, ThreadInfo, ThreadView};
pub use time::{micros, millis, secs, SimDuration, SimTime};
pub use waitgraph::{BlockKind, Inversion, RunnableThread, WaitForGraph, WaitingThread};
pub use wheel::{HeapWheel, Wheel, WheelToken};

use std::sync::Once;

static PANIC_SILENCER: Once = Once::new();

/// Installs a process-wide panic hook that suppresses the runtime's
/// internal teardown unwinds (every simulated thread is unwound with a
/// private payload when a [`Sim`] is dropped) while chaining every other
/// panic to the previously installed hook.
///
/// Called automatically by [`Sim::new`]; safe to call repeatedly.
pub(crate) fn install_panic_silencer() {
    PANIC_SILENCER.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<rendezvous::ShutdownSignal>() {
                return;
            }
            previous(info);
        }));
    });
}
