//! Microbenchmark harnesses over the runtime's internal timer queues.
//!
//! The `bench` crate's `hotpath` microbenches compare the hierarchical
//! timer wheel against the `BinaryHeap` implementation it replaced, but
//! both live behind crate-private types ([`crate::Sim`] owns the wheel).
//! These thin wrappers expose just enough surface — arm, peek, fire —
//! to drive either queue from outside the crate, in raw microseconds.
//! They are measurement scaffolding, not API: simulations never touch
//! timers directly.

use crate::thread::ThreadId;
use crate::time::SimTime;
use crate::timer::{HeapTimers, TimerKind, TimerWheel};

/// Harness over the hierarchical timer wheel the runtime uses.
#[derive(Default)]
pub struct WheelBench {
    wheel: TimerWheel,
}

impl WheelBench {
    /// An empty wheel anchored at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a timer at `at_us` microseconds.
    pub fn arm(&mut self, at_us: u64) {
        self.wheel
            .schedule(SimTime::from_micros(at_us), TimerKind::Wake(ThreadId(0)));
    }

    /// The earliest pending deadline, in microseconds.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.wheel.next_deadline().map(SimTime::as_micros)
    }

    /// Fires the next timer due at or before `now_us`. Returns true if
    /// one fired.
    pub fn fire(&mut self, now_us: u64) -> bool {
        self.wheel.pop_due(SimTime::from_micros(now_us)).is_some()
    }

    /// Pending timer count.
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// `(slab allocations, slab reuses)` so far — the wheel's node-reuse
    /// evidence.
    pub fn alloc_stats(&self) -> (u64, u64) {
        self.wheel.alloc_stats()
    }
}

/// Harness over the retired `BinaryHeap` timer queue, kept as the
/// baseline the wheel is measured against.
#[derive(Default)]
pub struct HeapBench {
    heap: HeapTimers,
}

impl HeapBench {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a timer at `at_us` microseconds.
    pub fn arm(&mut self, at_us: u64) {
        self.heap
            .schedule(SimTime::from_micros(at_us), TimerKind::Wake(ThreadId(0)));
    }

    /// The earliest pending deadline, in microseconds.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.heap.next_deadline().map(SimTime::as_micros)
    }

    /// Fires the next timer due at or before `now_us`. Returns true if
    /// one fired.
    pub fn fire(&mut self, now_us: u64) -> bool {
        self.heap.pop_due(SimTime::from_micros(now_us)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harnesses_agree() {
        let mut wheel = WheelBench::new();
        let mut heap = HeapBench::new();
        for at in [30, 10, 20, 10] {
            wheel.arm(at);
            heap.arm(at);
        }
        assert_eq!(wheel.pending(), 4);
        while let Some(d) = heap.next_deadline_us() {
            assert_eq!(wheel.next_deadline_us(), Some(d));
            assert!(heap.fire(d));
            assert!(wheel.fire(d));
        }
        assert_eq!(wheel.next_deadline_us(), None);
        assert_eq!(wheel.pending(), 0);
    }
}
