//! The synthetic Cedar world.
//!
//! Reproduces the thread population and activity structure the paper
//! reports for Cedar (§3): about 35 eternal threads; an interrupt-level
//! input thread feeding a preprocessing pump and the Notifier; an
//! X-output pipeline with a slack-process buffer thread
//! (`YieldButNotToMe`, §5.2); per-module library monitors that give the
//! system its high monitor-entry rates and large distinct-monitor counts;
//! an idle-time forker (idle Cedar forks a transient ~every 2 seconds,
//! which forks another — generations never exceed 2); a garbage-collection
//! daemon whose finalization forks are the only forks during `make` and
//! `compile`; and the eight benchmark drivers of Tables 1–3.
//!
//! Priorities follow §3: long-lived threads spread evenly over 1–4,
//! level 5 unused, level 6 for the Notifier/GC/SystemDaemon, level 7 for
//! interrupt-level input.

use pcr::{micros, millis, secs, Monitor, Priority, Sim, SimDuration};

use crate::spec::Benchmark;
use crate::world::{next_gap, InputEvent, LibraryPool, SleeperBus, SleeperSpec};
use paradigms::pump::BoundedQueue;
use paradigms::slack::{merge_by_key, spawn_slack, SlackPolicy};

/// Paint request: (screen region, sequence number). The slack buffer
/// merges requests to the same region, later data replacing earlier.
type PaintReq = (u32, u32);

/// Queue CV timeout: queue consumers are sleepers too — their waits time
/// out at this interval when the system is quiet.
const QUEUE_TIMEOUT: SimDuration = millis(500);

/// Modeled sites with their paradigm tags; each has a `modeled: true`
/// entry in the census (cross-checked by tests).
pub fn modeled_sites() -> Vec<(String, threadstudy_core::Paradigm)> {
    use threadstudy_core::Paradigm as P;
    let mut v: Vec<(String, P)> = sleeper_specs()
        .iter()
        .map(|s| (s.name.to_string(), P::Sleeper))
        .collect();
    let fixed: [(&str, P); 22] = [
        ("Cedar.ActivityDistributor", P::Sleeper),
        ("Cedar.InputDevice", P::GeneralPump),
        ("Cedar.InputPreprocess", P::GeneralPump),
        ("Cedar.Notifier", P::Serializer),
        ("Cedar.XBufferSlack", P::SlackProcess),
        ("Cedar.XServerWriter", P::GeneralPump),
        ("Cedar.RepaintWindow", P::Sleeper),
        ("Cedar.KeystrokeActionFork", P::DeferWork),
        ("Cedar.ScrollHelperFork", P::DeadlockAvoider),
        ("Cedar.ScrollLeafFork", P::DeferWork),
        ("Cedar.IdleForker", P::Sleeper),
        ("Cedar.IdleSweepFork", P::DeferWork),
        ("Cedar.IdleSweepLeafFork", P::DeferWork),
        ("Cedar.GcDaemon", P::Sleeper),
        ("Cedar.FinalizationFork", P::DeadlockAvoider),
        ("Cedar.FormatterWorker", P::DeferWork),
        ("Cedar.FormatHelperFork", P::DeferWork),
        ("Cedar.FormatLeafFork", P::DeferWork),
        ("Cedar.PreviewerWorker", P::DeferWork),
        ("Cedar.PreviewBandFork", P::DeferWork),
        ("Cedar.MakeWorker", P::DeferWork),
        ("Cedar.CompileWorker", P::DeferWork),
    ];
    v.extend(fixed.iter().map(|(n, p)| (n.to_string(), *p)));
    v
}

/// The 24 bus sleepers: blinkers and UI watchers at 100 ms; cache
/// sweepers at 250 ms (these cover wide library ranges, giving idle
/// Cedar its ~550 distinct monitors); watchdogs at 1 s; background
/// daemons at 2 s. Priorities spread over 1–4 with two daemons at 6.
fn sleeper_specs() -> Vec<SleeperSpec> {
    let p = Priority::of;
    let mut v = Vec::new();
    let fast = [
        ("Cedar.CursorBlinker", 4),
        ("Cedar.CaretBlinker", 4),
        ("Cedar.SelectionWatcher", 3),
        ("Cedar.TypescriptFlusher", 3),
        ("Cedar.ViewerHeartbeat", 4),
        ("Cedar.ChatPoller", 3),
    ];
    for (name, prio) in fast {
        v.push(SleeperSpec {
            name,
            priority: p(prio),
            period: millis(85),
            wake_work: micros(150),
            touches: 1,
        });
    }
    let sweepers = [
        ("Cedar.FontCacheSweeper", 2),
        ("Cedar.NameCacheSweeper", 2),
        ("Cedar.BitmapCacheSweeper", 2),
        ("Cedar.SymbolCacheSweeper", 1),
        ("Cedar.FileBufferFlusher", 3),
        ("Cedar.DisplayRefresher", 4),
    ];
    for (name, prio) in sweepers {
        v.push(SleeperSpec {
            name,
            priority: p(prio),
            period: millis(230),
            wake_work: micros(400),
            touches: 3,
        });
    }
    let watchers = [
        ("Cedar.NetWatcher", 4),
        ("Cedar.FsWatcher", 4),
        ("Cedar.MailChecker", 3),
        ("Cedar.GcHintTaker", 3),
        ("Cedar.PageCleaner", 1),
        ("Cedar.SwapPoller", 1),
        ("Cedar.VersionWatcher", 2),
        ("Cedar.DebuggerListener", 6),
    ];
    for (name, prio) in watchers {
        v.push(SleeperSpec {
            name,
            priority: p(prio),
            period: millis(930),
            wake_work: micros(300),
            touches: 2,
        });
    }
    let slow = [
        ("Cedar.CheckpointDaemon", 2),
        ("Cedar.JournalDaemon", 2),
        ("Cedar.AtomGcDaemon", 1),
        ("Cedar.RemoteCachePinger", 3),
    ];
    for (name, prio) in slow {
        v.push(SleeperSpec {
            name,
            priority: p(prio),
            period: millis(1930),
            wake_work: micros(300),
            touches: 2,
        });
    }
    v
}

/// Library-pool layout: disjoint ranges per activity (Cedar's monitors
/// are fine-grained and mostly uncontended — §3 reports 0.01–0.1 %
/// contention).
mod lib_map {
    /// Idle sweeps: 6 fast + 6 sweepers + 8 watchers + 4 slow.
    pub const SLEEPER_BASE: usize = 0;
    pub const SLEEPER_SPANS: [usize; 24] = [
        3, 3, 3, 3, 3, 3, // fast blinkers: small ranges
        90, 90, 90, 90, 30, 30, // cache sweepers: wide ranges
        8, 8, 8, 8, 8, 8, 8, 8, // watchers
        10, 10, 10, 10, // slow daemons
    ];
    /// Keystroke actions walk this range (drives keyboard's ~900
    /// distinct monitors).
    pub const KEYBOARD: (usize, usize) = (560, 360);
    /// Mouse motion handling.
    pub const MOUSE: (usize, usize) = (920, 180);
    /// Window repaint (scrolling).
    pub const DISPLAY: (usize, usize) = (1100, 240);
    /// Document formatter structures.
    pub const FORMAT: (usize, usize) = (1340, 480);
    /// Previewer structures.
    pub const PREVIEW: (usize, usize) = (1820, 380);
    /// Modules scanned by make.
    pub const MAKE: (usize, usize) = (2200, 750);
    /// Modules compiled by the compiler (drives compile's ~2900 distinct).
    pub const COMPILE: (usize, usize) = (0, 2800);
    /// Compiler-internal hot structures.
    pub const COMPILER_HOT: (usize, usize) = (2950, 40);
    /// Total pool size.
    pub const POOL: usize = 3000;
}

struct Pipeline {
    raw_q: BoundedQueue<InputEvent>,
    cooked_q: BoundedQueue<InputEvent>,
    paint_q: BoundedQueue<PaintReq>,
    batch_q: BoundedQueue<Vec<PaintReq>>,
}

fn build_pipeline(sim: &mut Sim) -> Pipeline {
    Pipeline {
        raw_q: BoundedQueue::new_in_sim(sim, "raw-input", 64, Some(QUEUE_TIMEOUT)),
        cooked_q: BoundedQueue::new_in_sim(sim, "cooked-input", 64, Some(QUEUE_TIMEOUT)),
        paint_q: BoundedQueue::new_in_sim(sim, "paint-requests", 128, Some(QUEUE_TIMEOUT)),
        batch_q: BoundedQueue::new_in_sim(sim, "x-batches", 32, Some(QUEUE_TIMEOUT)),
    }
}

/// Installs the Cedar world configured for `bench` into `sim`.
pub fn install(sim: &mut Sim, bench: Benchmark) {
    let lib = LibraryPool::new(sim, lib_map::POOL);
    let specs = sleeper_specs();
    let starts: Vec<usize> = {
        let mut acc = lib_map::SLEEPER_BASE;
        lib_map::SLEEPER_SPANS
            .iter()
            .map(|s| {
                let here = acc;
                acc += s;
                here
            })
            .collect()
    };
    let bus = SleeperBus::install(sim, &specs, &lib, &starts, &lib_map::SLEEPER_SPANS);
    let busy = sim.monitor("system-busy", false);
    let last_activity = sim.monitor("last-activity", pcr::SimTime::ZERO);
    let pipe = build_pipeline(sim);

    install_device(sim, bench, pipe.raw_q.clone());
    install_preprocess(sim, pipe.raw_q.clone(), pipe.cooked_q.clone());
    let damage = install_repaint_threads(sim, &lib, pipe.paint_q.clone());
    install_notifier(sim, bench, &lib, &bus, &pipe, damage, last_activity.clone());
    install_x_output(sim, &pipe);
    install_idle_forker(sim, &lib, busy.clone(), last_activity);
    install_gc(sim, &lib, busy.clone());
    install_worker(sim, bench, &lib, busy, &pipe, &bus);

    // Even an idle Cedar has some NOTIFY traffic among its eternal
    // threads (Table 2: only 82% of idle waits time out): a distributor
    // pings two sleepers per cycle.
    let bus2 = bus;
    let _ = sim.fork_root("Cedar.ActivityDistributor", Priority::of(4), move |ctx| {
        let mut i = 0u64;
        loop {
            ctx.sleep(millis(85));
            i += 1;
            bus2.ping(ctx, i * 3, 2);
        }
    });
}

/// Interrupt-level device thread (priority 7): sleeps precisely until
/// each event arrives (hardware interrupts are not quantized by PCR's
/// timer) and pushes it onto the raw queue.
fn install_device(sim: &mut Sim, bench: Benchmark, raw_q: BoundedQueue<InputEvent>) {
    let (kind, rate): (fn(u32) -> InputEvent, f64) = match bench {
        Benchmark::Keyboard => (InputEvent::Key, 4.8),
        Benchmark::Mouse => (InputEvent::Motion, 15.0),
        Benchmark::Scroll => (InputEvent::Click, 1.0),
        _ => (InputEvent::Key, 0.0),
    };
    let _ = sim.fork_root("Cedar.InputDevice", Priority::of(7), move |ctx| {
        let mut rng = ctx.rng();
        if rate <= 0.0 {
            loop {
                ctx.sleep_precise(secs(3600));
            }
        }
        let mut i = 0u32;
        loop {
            ctx.sleep_precise(next_gap(&mut rng, rate));
            ctx.work(micros(30)); // Interrupt service.
            raw_q.put(ctx, kind(i));
            i += 1;
        }
    });
}

/// The input-preprocessing pump (§4.2: "all user input is filtered
/// through a pipeline thread that preprocesses events").
fn install_preprocess(
    sim: &mut Sim,
    raw_q: BoundedQueue<InputEvent>,
    cooked_q: BoundedQueue<InputEvent>,
) {
    let _ = sim.fork_root("Cedar.InputPreprocess", Priority::of(6), move |ctx| {
        while let Some(ev) = raw_q.take(ctx) {
            ctx.work(micros(120));
            cooked_q.put(ctx, ev);
        }
    });
}

/// Per-window repaint threads: sleepers on a damage CV; a scroll makes
/// one of them walk the display structures and emit paint requests.
fn install_repaint_threads(
    sim: &mut Sim,
    lib: &LibraryPool,
    paint_q: BoundedQueue<PaintReq>,
) -> Vec<(Monitor<u32>, pcr::Condition)> {
    let mut handles = Vec::new();
    for w in 0..4u32 {
        let m = sim.monitor(&format!("window-{w}.damage"), 0u32);
        let cv = sim.condition(&m, &format!("window-{w}.damaged"), Some(secs(1)));
        handles.push((m.clone(), cv.clone()));
        let (d0, d1) = lib_map::DISPLAY;
        let mut cursor = lib.cursor(d0, d1);
        let paint_q = paint_q.clone();
        let _ = sim.fork_root("Cedar.RepaintWindow", Priority::of(4), move |ctx| {
            let mut seq = 0u32;
            loop {
                let pending = {
                    let mut g = ctx.enter(&m);
                    g.wait_until(&cv, |&p| p > 0);
                    g.with_mut(std::mem::take)
                };
                for _ in 0..pending {
                    // Scrolling a text window re-renders heavily: the
                    // paper's scroll benchmark enters ~2000 monitors/sec.
                    ctx.work(millis(4));
                    cursor.touch_n(ctx, 1100, micros(8));
                    for r in 0..20 {
                        seq += 1;
                        paint_q.put(ctx, (w * 32 + (r % 8), seq));
                    }
                }
            }
        });
    }
    handles
}

/// The Notifier (§4.1): the critical keyboard-and-mouse watching thread.
/// It notices what work needs doing and forks almost everything else.
fn install_notifier(
    sim: &mut Sim,
    bench: Benchmark,
    lib: &LibraryPool,
    bus: &SleeperBus,
    pipe: &Pipeline,
    damage: Vec<(Monitor<u32>, pcr::Condition)>,
    last_activity: Monitor<pcr::SimTime>,
) {
    let cooked_q = pipe.cooked_q.clone();
    let paint_q = pipe.paint_q.clone();
    let bus = bus.clone();
    let (k0, k1) = lib_map::KEYBOARD;
    let (m0, m1) = lib_map::MOUSE;
    let mut kb_cursor = lib.cursor(k0, k1);
    let mut mouse_cursor = lib.cursor(m0, m1);
    let lib = lib.clone();
    let _ = sim.fork_root("Cedar.Notifier", Priority::of(6), move |ctx| {
        let mut rng = ctx.rng();
        let mut seq = 0u32;
        while let Some(ev) = cooked_q.take(ctx) {
            match ev {
                InputEvent::Key(i) => {
                    // Notice, echo, and defer the real work (§4.1): "the
                    // command-shell thread ... forks a transient thread
                    // for every keystroke".
                    ctx.work(micros(300));
                    kb_cursor.touch_n(ctx, 8, micros(10));
                    seq += 1;
                    paint_q.put(ctx, (1, seq)); // Echo glyph.
                    bus.ping(ctx, i as u64, 6);
                    {
                        let mut g = ctx.enter(&last_activity);
                        let now = ctx.now();
                        g.with_mut(|t| *t = now);
                    }
                    let mut action_cursor = lib.cursor(k0 + (i as usize * 95) % (k1 - 100), 100);
                    let action_bus = bus.clone();
                    let _ = ctx.fork_detached_prio(
                        "Cedar.KeystrokeActionFork",
                        Priority::of(4),
                        move |ctx| {
                            ctx.work(millis(1));
                            action_cursor.touch_n(ctx, 190, micros(6));
                            action_bus.ping(ctx, i as u64 * 13, 4);
                            ctx.work(millis(1));
                            action_cursor.touch_n(ctx, 190, micros(6));
                            action_bus.ping(ctx, i as u64 * 29, 4);
                        },
                    );
                }
                InputEvent::Motion(i) => {
                    // Mouse motion forks nothing but drives eternal
                    // threads (§3).
                    ctx.work(micros(120));
                    mouse_cursor.touch_n(ctx, 30, micros(8));
                    if i % 4 == 0 {
                        seq += 1;
                        paint_q.put(ctx, (2, seq));
                    }
                    bus.ping(ctx, i as u64, 1);
                }
                InputEvent::Click(i) => {
                    // A scroll click: damage one window; occasionally
                    // fork helpers (3 transients per 10 scrolls, one a
                    // child of another — §3).
                    ctx.work(micros(500));
                    {
                        let mut g = ctx.enter(&last_activity);
                        let now = ctx.now();
                        g.with_mut(|t| *t = now);
                    }
                    let (m, cv) = &damage[(i % 4) as usize];
                    {
                        let mut g = ctx.enter(m);
                        g.with_mut(|p| *p += 1);
                        g.notify(cv);
                    }
                    bus.ping(ctx, i as u64, 2);
                    if rng.next_f64() < 0.2 {
                        let fork_leaf = rng.next_f64() < 0.5;
                        let _ = ctx.fork_detached_prio(
                            "Cedar.ScrollHelperFork",
                            Priority::of(4),
                            move |ctx| {
                                ctx.work(millis(10));
                                if fork_leaf {
                                    let _ = ctx.fork_detached("Cedar.ScrollLeafFork", |ctx| {
                                        ctx.work(millis(5))
                                    });
                                }
                            },
                        );
                    }
                    let _ = bench; // Benchmark is implicit in event mix.
                }
            }
        }
    });
}

/// The X output pipeline: the slack-process buffer thread (§5.2, high
/// priority, `YieldButNotToMe`) merging paint requests, and the server
/// writer with high per-batch costs.
fn install_x_output(sim: &mut Sim, pipe: &Pipeline) {
    let paint_q = pipe.paint_q.clone();
    let batch_q = pipe.batch_q.clone();
    let server_q = pipe.batch_q.clone();
    let _ = sim.fork_root("Cedar.XServerWriter", Priority::of(6), move |ctx| {
        let _slack = spawn_slack(
            ctx,
            "Cedar.XBufferSlack",
            Priority::of(6),
            paint_q,
            SlackPolicy::YieldButNotToMe,
            micros(300),
            merge_by_key(|r: &PaintReq| r.0),
            move |ctx, batch| {
                if !batch.is_empty() {
                    batch_q.put(ctx, batch);
                }
            },
        );
        // This driver thread doubles as the X server writer.
        while let Some(batch) = server_q.take(ctx) {
            ctx.work(millis(1) + micros(100) * batch.len() as u64);
        }
    });
}

/// Idle-time forker: "an idle Cedar system ... forks a transient thread
/// once a second on average. Each forked thread, in turn, forks another
/// transient thread." Suppressed while a compute benchmark runs (§3:
/// compute-intensive applications *decrease* forking).
fn install_idle_forker(
    sim: &mut Sim,
    lib: &LibraryPool,
    busy: Monitor<bool>,
    last_activity: Monitor<pcr::SimTime>,
) {
    let mut sweep_cursor = lib.cursor(0, 200);
    let _ = sim.fork_root("Cedar.IdleForker", Priority::of(2), move |ctx| loop {
        ctx.sleep_precise(millis(2200));
        let is_busy = {
            let g = ctx.enter(&busy);
            g.with(|b| *b)
        };
        // Idle-time work runs only when the user is quiet and no compute
        // job is saturating the system.
        let recent_input = {
            let g = ctx.enter(&last_activity);
            let now = ctx.now();
            g.with(|&t| now.saturating_since(t) < millis(2600) && t > pcr::SimTime::ZERO)
        };
        if is_busy || recent_input {
            continue;
        }
        sweep_cursor.touch_n(ctx, 2, micros(10));
        let _ = ctx.fork_detached_prio("Cedar.IdleSweepFork", Priority::of(2), |ctx| {
            ctx.work(millis(4));
            let _ = ctx.fork_detached("Cedar.IdleSweepLeafFork", |ctx| {
                ctx.work(millis(2));
            });
        });
    });
}

/// The GC daemon (priority 6, like the SystemDaemon — §3): wakes
/// periodically; under compute load it forks finalization callbacks
/// (§4.4: "the finalization service thread forks each callback").
fn install_gc(sim: &mut Sim, lib: &LibraryPool, busy: Monitor<bool>) {
    let mut gc_cursor = lib.cursor(2200, 100);
    let _ = sim.fork_root("Cedar.GcDaemon", Priority::of(6), move |ctx| {
        let mut rng = ctx.rng();
        loop {
            ctx.sleep(millis(1430));
            ctx.work(millis(1));
            gc_cursor.touch_n(ctx, 4, micros(10));
            let is_busy = {
                let g = ctx.enter(&busy);
                g.with(|b| *b)
            };
            if is_busy && rng.next_f64() < 0.45 {
                let _ = ctx.fork_detached_prio("Cedar.FinalizationFork", Priority::of(3), |ctx| {
                    ctx.work(millis(5));
                });
            }
        }
    });
}

/// The benchmark worker: formatting, previewing, make, or compile.
fn install_worker(
    sim: &mut Sim,
    bench: Benchmark,
    lib: &LibraryPool,
    busy: Monitor<bool>,
    pipe: &Pipeline,
    bus: &SleeperBus,
) {
    match bench {
        Benchmark::Format => {
            let (f0, f1) = lib_map::FORMAT;
            let mut cursor = lib.cursor(f0, f1);
            let lib = lib.clone();
            let bus = bus.clone();
            let _ = sim.fork_root("Cedar.FormatterWorker", Priority::of(2), move |ctx| {
                let mut rng = ctx.rng();
                let mut last_fork = pcr::SimTime::ZERO;
                loop {
                    // One formatting element: compute + document monitors.
                    ctx.work(millis(3));
                    cursor.touch_n(ctx, 8, micros(10));
                    // ~2.7 transient forks/sec (paced by wall-clock, as
                    // formatting progress was), each forking one child
                    // (generations ≤ 2, §3).
                    if ctx.now().saturating_since(last_fork) >= millis(740) {
                        last_fork = ctx.now();
                        bus.ping(ctx, last_fork.as_micros(), 4);
                        let off = (rng.next_below(400)) as usize;
                        let mut helper_cursor = lib.cursor(f0 + off.min(f1 - 64), 64);
                        let _ = ctx.fork_detached_prio(
                            "Cedar.FormatHelperFork",
                            Priority::of(4),
                            move |ctx| {
                                ctx.work(millis(20));
                                helper_cursor.touch_n(ctx, 60, micros(8));
                                let _ = ctx.fork_detached("Cedar.FormatLeafFork", |ctx| {
                                    ctx.work(millis(8));
                                });
                            },
                        );
                    }
                }
            });
        }
        Benchmark::Preview => {
            let (p0, p1) = lib_map::PREVIEW;
            let mut cursor = lib.cursor(p0, p1);
            let paint_q = pipe.paint_q.clone();
            let _ = sim.fork_root("Cedar.PreviewerWorker", Priority::of(2), move |ctx| {
                let mut band = 0u32;
                let mut last_fork = pcr::SimTime::ZERO;
                loop {
                    // Decode one band and paint it.
                    ctx.work(millis(34));
                    cursor.touch_n(ctx, 35, micros(10));
                    band += 1;
                    paint_q.put(ctx, (8 + band % 4, band));
                    // ~0.7 run-to-completion transients/sec.
                    if ctx.now().saturating_since(last_fork) >= millis(1430) {
                        last_fork = ctx.now();
                        let _ = ctx.fork_detached_prio(
                            "Cedar.PreviewBandFork",
                            Priority::of(4),
                            |ctx| ctx.work(millis(20)),
                        );
                    }
                }
            });
        }
        Benchmark::Make => {
            let (m0, m1) = lib_map::MAKE;
            let mut cursor = lib.cursor(m0, m1);
            let _ = sim.fork_root("Cedar.MakeWorker", Priority::of(2), move |ctx| {
                {
                    let mut g = ctx.enter(&busy);
                    g.with_mut(|b| *b = true);
                }
                // The command-shell thread is the worker (§3): scan
                // modules checking build state; no forks of its own.
                loop {
                    ctx.work(millis(10));
                    cursor.touch_n(ctx, 21, micros(8));
                }
            });
        }
        Benchmark::Compile => {
            let (c0, c1) = lib_map::COMPILE;
            let (h0, h1) = lib_map::COMPILER_HOT;
            let mut modules = lib.cursor(c0, c1);
            let mut hot = lib.cursor(h0, h1);
            let _ = sim.fork_root("Cedar.CompileWorker", Priority::of(2), move |ctx| {
                {
                    let mut g = ctx.enter(&busy);
                    g.with_mut(|b| *b = true);
                }
                loop {
                    // Compile one module: long compute runs produce the
                    // 45–50ms execution intervals of §3.
                    ctx.work(millis(8));
                    modules.touch_n(ctx, 1, micros(15));
                    hot.touch_n(ctx, 7, micros(5));
                }
            });
        }
        Benchmark::Idle | Benchmark::Keyboard | Benchmark::Mouse | Benchmark::Scroll => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{RunLimit, SimConfig};

    #[test]
    fn sleeper_specs_are_well_formed() {
        let specs = sleeper_specs();
        assert_eq!(specs.len(), lib_map::SLEEPER_SPANS.len());
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate sleeper names");
        // Priorities spread over 1..=4 plus the level-6 daemons, never 5
        // or 7 (§3's Cedar profile).
        for s in &specs {
            let p = s.priority.get();
            assert!(p != 5 && p != 7, "{} at priority {p}", s.name);
        }
        let sleeper_range: usize = lib_map::SLEEPER_SPANS.iter().sum();
        assert!(sleeper_range < lib_map::POOL);
    }

    #[test]
    fn lib_map_ranges_fit_the_pool() {
        for (start, span) in [
            lib_map::KEYBOARD,
            lib_map::MOUSE,
            lib_map::DISPLAY,
            lib_map::FORMAT,
            lib_map::PREVIEW,
            lib_map::MAKE,
            lib_map::COMPILE,
            lib_map::COMPILER_HOT,
        ] {
            assert!(start + span <= lib_map::POOL, "({start},{span}) overflows");
            assert!(span > 0);
        }
    }

    #[test]
    fn every_benchmark_installs_without_panicking_threads() {
        for bench in crate::spec::Benchmark::CEDAR {
            let mut sim = pcr::Sim::new(SimConfig::default().with_seed(1));
            install(&mut sim, bench);
            let r = sim.run(RunLimit::For(pcr::secs(3)));
            assert!(!r.deadlocked(), "{bench:?} deadlocked");
            assert_eq!(sim.stats().panics, 0, "{bench:?} panicked");
        }
    }

    #[test]
    fn modeled_sites_are_unique() {
        let sites = modeled_sites();
        let mut names: Vec<&String> = sites.iter().map(|(n, _)| n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
