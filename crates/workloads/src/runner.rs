//! Running a benchmark and harvesting the paper's measurements.

use pcr::{
    millis, secs, AllocCounters, ChaosConfig, HazardConfig, HazardCounts, Priority, RunLimit,
    SchedLatency, Sim, SimConfig, SimDuration, SimStats, SystemDaemonConfig,
};
use threadstudy_core::System;
use trace::{BenchmarkRates, Collector, IntervalHistogram, MonitorProfileRow};

use crate::spec::Benchmark;

/// Everything measured from one benchmark run.
#[derive(Debug)]
pub struct BenchResult {
    /// Which system ran.
    pub system: System,
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// The Tables 1–3 rates.
    pub rates: BenchmarkRates,
    /// Execution-interval histogram (§3's bimodal distribution).
    pub intervals: IntervalHistogram,
    /// Maximum fork generation observed (§3: never exceeds 2).
    pub max_generation: u32,
    /// Thread count per generation.
    pub generation_counts: Vec<usize>,
    /// High-water mark of concurrently live threads (paper: ≤ 41).
    pub max_live_threads: usize,
    /// Virtual CPU consumed at each priority level (index 0 = priority 1).
    pub cpu_by_priority: [SimDuration; 7],
    /// Mean lifetime of threads that exited (§3: "well under 1 second").
    pub mean_transient_lifetime: Option<SimDuration>,
    /// Hazards the [`pcr::HazardMonitor`] reported over the whole run
    /// (warm-up included). All-zero when hazard detection was off, as it
    /// is for [`run_benchmark`].
    pub hazards: HazardCounts,
    /// Primitive events executed inside the measurement window (the delta
    /// of [`pcr::SimStats::event_volume`] across it). Deterministic for a
    /// given `(system, benchmark, window, seed)`, so the perf harness can
    /// divide it by wall-clock time to report simulated events/sec.
    pub event_volume: u64,
    /// Wakeup-to-run scheduler latency per priority over the measurement
    /// window (§6.2/§6.3), including the log₂-µs histogram.
    pub sched_latency: SchedLatency,
    /// Per-monitor contention profile over the measurement window
    /// (§6.1), hottest monitor first.
    pub contention: Vec<MonitorProfileRow>,
    /// Allocation/reuse deltas for the sim's pooled resources (timer
    /// slab, queue-node arena, carrier-thread pool) over the measurement
    /// window. At steady state the `*_allocs` components should be near
    /// zero: the warm-up populates the pools and the window reuses them.
    pub alloc: AllocCounters,
    /// Degradation score under supervised fault load: event volume
    /// achieved across every attempt divided by a clean same-cell run's
    /// volume (1.0 ≈ no degradation, 0.0 ≈ nothing completed). `None`
    /// for ordinary unsupervised runs.
    pub degradation: Option<f64>,
}

/// Default virtual measurement window.
pub const DEFAULT_WINDOW: SimDuration = secs(30);

/// Builds the world for `(system, benchmark)` in a fresh simulator.
pub fn build(system: System, benchmark: Benchmark, seed: u64) -> Sim {
    build_chaos(system, benchmark, seed, ChaosConfig::none())
}

/// The fault mix used for chaos-mode benchmark runs: spurious CV
/// wakeups, duplicated notifies, and timer jitter (§5.3's hazards plus
/// widened timeout races). Dropped notifies and fork failures are
/// deliberately excluded — the worlds' eternal threads assume forks
/// succeed and notifies arrive, so those faults would wedge the world
/// rather than stress its Mesa discipline.
pub fn chaos_preset() -> ChaosConfig {
    ChaosConfig::none()
        .spurious_wakeups(0.05)
        .duplicate_notifies(0.05)
        .jitter_timers(millis(5))
}

/// Builds the world for `(system, benchmark)` with fault injection per
/// `chaos` and hazard detection enabled whenever injection is active.
pub fn build_chaos(system: System, benchmark: Benchmark, seed: u64, chaos: ChaosConfig) -> Sim {
    build_chaos_with(system, benchmark, seed, chaos, |cfg| cfg)
}

/// Like [`build_chaos`], but lets `tweak` adjust the assembled
/// [`SimConfig`] before the world is installed — the hook the resilience
/// harness uses to cap the thread table or change fork policy without
/// duplicating the per-system daemon tuning here.
pub fn build_chaos_with(
    system: System,
    benchmark: Benchmark,
    seed: u64,
    chaos: ChaosConfig,
    tweak: impl FnOnce(SimConfig) -> SimConfig,
) -> Sim {
    // The SystemDaemon's pace is tuned per system so its wakeups sit
    // inside each system's measured switch budget.
    let daemon = match system {
        System::Cedar => SystemDaemonConfig {
            period: pcr::millis(100),
            slice: pcr::millis(5),
        },
        System::Gvx => SystemDaemonConfig {
            period: pcr::millis(500),
            slice: pcr::millis(5),
        },
    };
    let mut cfg = SimConfig::default()
        .with_seed(seed)
        .with_system_daemon(daemon);
    if chaos.is_active() {
        cfg = cfg
            .with_chaos(chaos)
            .with_hazard_detection(HazardConfig::default());
    }
    let mut sim = Sim::new(tweak(cfg));
    match system {
        System::Cedar => crate::cedar::install(&mut sim, benchmark),
        System::Gvx => crate::gvx::install(&mut sim, benchmark),
    }
    sim
}

/// Runs one benchmark for `window` of virtual time (plus a 2-second
/// warm-up that is excluded from the rates) and returns the
/// measurements.
///
/// # Panics
///
/// Panics if the world deadlocks.
pub fn run_benchmark(
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
) -> BenchResult {
    run_benchmark_chaos(system, benchmark, window, seed, ChaosConfig::none())
}

/// Like [`run_benchmark`], but dispatching with `policy` instead of the
/// default round-robin — the per-cell unit of the policy tournament.
///
/// # Panics
///
/// Panics if the world deadlocks under the chosen policy (which the
/// tournament treats as that policy losing the cell).
pub fn run_benchmark_policy(
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
    policy: pcr::PolicyKind,
) -> BenchResult {
    run_benchmark_with(
        system,
        benchmark,
        window,
        seed,
        ChaosConfig::none(),
        |cfg| cfg.with_policy(policy),
    )
}

/// Like [`run_benchmark`], but with fault injection per `chaos` and the
/// [`pcr::HazardMonitor`] watching the whole run; the tallies land in
/// [`BenchResult::hazards`].
///
/// # Panics
///
/// Panics if the world deadlocks — which an aggressive `chaos` (dropped
/// notifies, fork failures) can legitimately cause; [`chaos_preset`]
/// stays within what the worlds tolerate.
pub fn run_benchmark_chaos(
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
    chaos: ChaosConfig,
) -> BenchResult {
    run_benchmark_with(system, benchmark, window, seed, chaos, |cfg| cfg)
}

/// The general benchmark runner: fault injection per `chaos` plus an
/// arbitrary [`SimConfig`] `tweak` (scheduling policy, thread caps, …)
/// applied before the world is installed.
///
/// # Panics
///
/// Panics if the world deadlocks.
pub fn run_benchmark_with(
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
    chaos: ChaosConfig,
    tweak: impl FnOnce(SimConfig) -> SimConfig,
) -> BenchResult {
    let mut sim = build_chaos_with(system, benchmark, seed, chaos, tweak);
    // Warm-up: let queues and sleepers reach steady state.
    let warmup = sim.run(RunLimit::For(secs(2)));
    assert!(
        !warmup.deadlocked(),
        "world deadlocked during warm-up: {:?}",
        warmup.reason
    );
    let start_stats = sim.stats().clone();
    let start_alloc = sim.alloc_counters();
    sim.set_sink(Box::new(Collector::for_sim(&sim)));
    let report = sim.run(RunLimit::For(window));
    assert!(
        !report.deadlocked(),
        "world deadlocked during measurement: {:?}",
        report.reason
    );
    let end_stats = sim.stats().clone();
    assert_eq!(
        end_stats.panics, 0,
        "world threads panicked — the model is crippled"
    );
    harvest(
        &mut sim,
        system,
        benchmark,
        &start_stats,
        start_alloc,
        report.elapsed,
        report.hazards,
    )
}

/// Assembles a [`BenchResult`] from a simulator whose measurement window
/// just finished: takes the installed [`Collector`] out of `sim` and
/// computes every rate as the delta from `start_stats` over `elapsed`.
/// Shared by [`run_benchmark_chaos`] and the resilience supervisor
/// (which measures the final attempt of a supervised run this way).
pub fn harvest(
    sim: &mut Sim,
    system: System,
    benchmark: Benchmark,
    start_stats: &SimStats,
    start_alloc: AllocCounters,
    elapsed: SimDuration,
    hazards: HazardCounts,
) -> BenchResult {
    let end_stats = sim.stats().clone();
    let collector = trace::take_collector::<Collector>(sim).expect("collector present");
    let label = benchmark.label(system);
    let rates = BenchmarkRates::from_window(&label, start_stats, &end_stats, elapsed);
    let mut cpu_by_priority = end_stats.cpu_by_priority;
    for (i, c) in cpu_by_priority.iter_mut().enumerate() {
        *c = c.saturating_sub(start_stats.cpu_by_priority[i]);
    }
    BenchResult {
        system,
        benchmark,
        rates,
        intervals: collector.intervals.into_histogram(),
        max_generation: collector.genealogy.max_generation(),
        generation_counts: collector.genealogy.generation_counts(),
        max_live_threads: end_stats.max_live_threads,
        cpu_by_priority,
        mean_transient_lifetime: collector.genealogy.mean_lifetime_of_exited(),
        hazards,
        event_volume: end_stats.event_volume() - start_stats.event_volume(),
        sched_latency: end_stats
            .sched_latency
            .window_since(&start_stats.sched_latency),
        contention: collector.contention.rows(),
        alloc: sim.alloc_counters().since(start_alloc),
        degradation: None,
    }
}

/// Convenience: a quick probe run for tests (shorter window).
pub fn probe(system: System, benchmark: Benchmark) -> BenchResult {
    run_benchmark(system, benchmark, secs(10), 0xC0FFEE)
}

/// Counts the eternal threads of an installed world before any run.
pub fn eternal_thread_count(system: System) -> usize {
    let sim = build(system, Benchmark::Idle, 1);
    sim.live_threads()
}

/// A tiny self-check world used by unit tests: two threads exchanging
/// notifies. Returns its switch count over one virtual second.
pub fn smoke() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(pcr::millis(50)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("a", Priority::of(4), move |ctx| loop {
        let mut g = ctx.enter(&m2);
        g.with_mut(|v| *v += 1);
        g.notify(&cv2);
        let _ = g.wait(&cv2);
    });
    let _ = sim.fork_root("b", Priority::of(4), move |ctx| loop {
        let mut g = ctx.enter(&m);
        g.with_mut(|v| *v += 1);
        g.notify(&cv);
        let _ = g.wait(&cv);
    });
    sim.run(RunLimit::For(secs(1)));
    sim.stats().switches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_world_switches() {
        assert!(smoke() > 10);
    }

    #[test]
    fn cedar_idle_probe_shape() {
        let r = probe(System::Cedar, Benchmark::Idle);
        // Eternal threads only: low fork rate from the idle forker.
        assert!(
            r.rates.forks_per_sec > 0.2 && r.rates.forks_per_sec < 3.0,
            "idle forks/sec = {}",
            r.rates.forks_per_sec
        );
        assert!(
            r.rates.switches_per_sec > 50.0 && r.rates.switches_per_sec < 500.0,
            "idle switches/sec = {}",
            r.rates.switches_per_sec
        );
        assert!(
            r.rates.timeout_pct > 60.0,
            "idle timeouts = {}%",
            r.rates.timeout_pct
        );
        assert!(r.max_generation <= 2);
        assert!(r.max_live_threads <= 41, "live = {}", r.max_live_threads);
    }

    #[test]
    fn gvx_never_forks() {
        for b in [
            Benchmark::Idle,
            Benchmark::Keyboard,
            Benchmark::Mouse,
            Benchmark::Scroll,
        ] {
            let r = probe(System::Gvx, b);
            assert_eq!(r.rates.forks_per_sec, 0.0, "GVX {b} forked");
        }
    }

    #[test]
    fn chaos_preset_runs_and_is_deterministic() {
        let run = || {
            run_benchmark_chaos(
                System::Cedar,
                Benchmark::Keyboard,
                secs(5),
                0xC0FFEE,
                chaos_preset(),
            )
        };
        let a = run();
        let b = run();
        // Injection actually happened and the detectors were live.
        assert!(
            a.rates.waits_per_sec > 0.0,
            "keyboard world stopped waiting under chaos"
        );
        assert_eq!(a.hazards, b.hazards, "hazard tallies diverged");
        assert_eq!(
            a.rates.switches_per_sec, b.rates.switches_per_sec,
            "same seed + same chaos must replay identically"
        );
        assert_eq!(a.max_live_threads, b.max_live_threads);
    }

    #[test]
    fn clean_runs_report_no_hazards() {
        let r = probe(System::Gvx, Benchmark::Idle);
        assert_eq!(r.hazards, pcr::HazardCounts::default());
    }

    #[test]
    fn eternal_populations_are_paper_sized() {
        let cedar = eternal_thread_count(System::Cedar);
        let gvx = eternal_thread_count(System::Gvx);
        assert!((30..=41).contains(&cedar), "cedar eternal = {cedar}");
        assert!((20..=26).contains(&gvx), "gvx eternal = {gvx}");
    }
}
