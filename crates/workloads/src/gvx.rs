//! The synthetic GVX (GlobalView) world.
//!
//! GVX behaves "noticeably differently" from Cedar (§3): an idle system
//! contains 22 eternal threads and **forks no additional threads** — not
//! for keyboard, mouse, or windowing activity. Almost every thread runs
//! at priority 3; the two lowest levels hold a few background helpers,
//! two of which never ran during the paper's experiments; level 5 is
//! used (Cedar's unused level) and level 7 is not; level 6 belongs to
//! the SystemDaemon. Thread switching is far slower (33–60/sec), CV
//! waits are few (32–38/sec) and overwhelmingly timeouts (up to 99 %),
//! and monitor contention is *higher* than Cedar's (up to 0.4 % when
//! scrolling) because its monitors are coarser and held longer.
//!
//! Structurally: input events land in a polled queue (no notifies — the
//! poller wakes on its own period and drains in batches, which is why
//! mouse traffic adds almost no switches), and one serializer thread
//! per application processes them — "in the Macintosh, Microsoft
//! Windows, and X programming models ... each application runs in a
//! serializer thread".

use std::collections::VecDeque;

use pcr::{micros, millis, secs, Priority, Sim};
use threadstudy_core::Paradigm;

use crate::spec::Benchmark;
use crate::world::{next_gap, InputEvent, LibraryPool, SleeperBus, SleeperSpec};

/// GVX library layout: a small pool with *overlapping* hot ranges —
/// coarse monitors shared across threads, the source of its higher
/// contention.
mod lib_map {
    /// Keystroke handling.
    pub const KEYBOARD: (usize, usize) = (44, 150);
    /// Scroll/repaint structures.
    pub const DISPLAY: (usize, usize) = (194, 160);
    /// Total pool size.
    pub const POOL: usize = 400;
}

/// The hot screen monitor held across repaint work — GVX's contention
/// hotspot.
const SCREEN_HOLD_SCROLL: pcr::SimDuration = millis(12);

fn sleeper_specs() -> Vec<SleeperSpec> {
    let p = Priority::of;
    let mut v = Vec::new();
    // 15 standard sleepers, all priority 3 (§3: "GVX sets almost all of
    // its threads to priority level 3").
    let names = [
        "GVX.CaretBlinker",
        "GVX.ScreenSaverWatch",
        "GVX.PropertySheetPoll",
        "GVX.DocCacheSweep",
        "GVX.FontSweep",
        "GVX.NetKeepalive",
        "GVX.PrintSpoolerWatch",
        "GVX.MailPoll",
        "GVX.FilerPoll",
        "GVX.SelectionWatch",
        "GVX.WorkspaceHeartbeat",
        "GVX.IconRefresher",
        "GVX.ClockUpdater",
        "GVX.SessionWatch",
        "GVX.UndoLogFlusher",
    ];
    for (i, name) in names.iter().enumerate() {
        let period = match i % 3 {
            0 => millis(930),
            1 => millis(480),
            _ => millis(480),
        };
        v.push(SleeperSpec {
            name,
            priority: p(3),
            period,
            wake_work: micros(500),
            touches: 12,
        });
    }
    // 3 low-priority background helpers that do run, slowly.
    v.push(SleeperSpec {
        name: "GVX.BackgroundRepaginator",
        priority: p(2),
        period: secs(5),
        wake_work: millis(2),
        touches: 6,
    });
    v.push(SleeperSpec {
        name: "GVX.DiskCompactor",
        priority: p(1),
        period: secs(8),
        wake_work: millis(3),
        touches: 6,
    });
    v.push(SleeperSpec {
        name: "GVX.StatisticsDaemon",
        priority: p(2),
        period: secs(6),
        wake_work: millis(1),
        touches: 4,
    });
    v
}

/// Modeled sites with their paradigm tags, for the census cross-check.
/// Tags follow Table 4's *static* classification: the three periodic
/// background daemons and the display watchdog are created through the
/// `PeriodicalFork`-style package, so their static sites count as
/// encapsulated forks even though they behave as sleepers dynamically
/// (§4.9 cautions exactly this: "the static paradigm can't be predicted
/// from the dynamic lifetime"). The two never-run helpers are tagged
/// unknown — fittingly, since the authors could not observe them either.
pub fn modeled_sites() -> Vec<(String, Paradigm)> {
    let mut v: Vec<(String, Paradigm)> = sleeper_specs()
        .iter()
        .map(|s| {
            let tag = match s.name {
                "GVX.BackgroundRepaginator" | "GVX.DiskCompactor" | "GVX.StatisticsDaemon" => {
                    Paradigm::EncapsulatedFork
                }
                _ => Paradigm::Sleeper,
            };
            (s.name.to_string(), tag)
        })
        .collect();
    v.push(("GVX.InputDevice".into(), Paradigm::GeneralPump));
    v.push(("GVX.InputPoller".into(), Paradigm::Serializer));
    v.push(("GVX.IdleHelperA".into(), Paradigm::Unknown));
    v.push(("GVX.IdleHelperB".into(), Paradigm::Unknown));
    v.push(("GVX.DisplayWatchdog".into(), Paradigm::EncapsulatedFork));
    v.push(("GVX.EchoPainter".into(), Paradigm::GeneralPump));
    v
}

/// Installs the GVX world configured for `bench` into `sim`.
pub fn install(sim: &mut Sim, bench: Benchmark) {
    let lib = LibraryPool::new(sim, lib_map::POOL);
    let specs = sleeper_specs();
    // Overlapping ranges: everyone shares the SHARED window (coarse
    // locking), offset slightly per thread.
    let starts: Vec<usize> = (0..specs.len()).map(|i| (i * 2) % 12).collect();
    let spans: Vec<usize> = specs.iter().map(|_| 16).collect();
    let bus = SleeperBus::install(sim, &specs, &lib, &starts, &spans);

    // The event queue is *polled*: the device appends under the queue
    // monitor but never notifies; the poller drains on its own period.
    let queue = sim.monitor("gvx-event-queue", VecDeque::<InputEvent>::new());
    let screen = sim.monitor("gvx-screen", 0u64);
    let screen_poller = screen.clone();

    // Device: batches events like a hardware ring buffer serviced at a
    // fixed scan rate (this is why GVX's switch rate barely moves with
    // mouse traffic).
    let (mk, rate): (fn(u32) -> InputEvent, f64) = match bench {
        Benchmark::Keyboard => (InputEvent::Key, 4.0),
        Benchmark::Mouse => (InputEvent::Motion, 20.0),
        Benchmark::Scroll => (InputEvent::Click, 1.0),
        _ => (InputEvent::Key, 0.0),
    };
    let poll_m = sim.monitor("gvx-poller.state", 0u32);
    let poll_cv = sim.condition(&poll_m, "gvx-poller.tick", Some(millis(180)));
    let qd = queue.clone();
    let (pm_dev, pcv_dev) = (poll_m.clone(), poll_cv.clone());
    let _ = sim.fork_root("GVX.InputDevice", Priority::of(5), move |ctx| {
        let mut rng = ctx.rng();
        let mut i = 0u32;
        if rate <= 0.0 {
            loop {
                ctx.sleep_precise(secs(3600));
            }
        }
        let scan = millis(200);
        loop {
            ctx.sleep_precise(scan);
            // How many events arrived during the scan period?
            let mut due = 0usize;
            let mut t = pcr::SimDuration::ZERO;
            loop {
                let gap = next_gap(&mut rng, rate);
                t += gap;
                if t > scan {
                    break;
                }
                due += 1;
            }
            if due > 0 {
                let mut has_key = false;
                let mut g = ctx.enter(&qd);
                g.with_mut(|q| {
                    for _ in 0..due {
                        i += 1;
                        let ev = mk(i);
                        has_key |= matches!(ev, InputEvent::Key(_) | InputEvent::Click(_));
                        q.push_back(ev);
                    }
                });
                drop(g);
                if has_key {
                    // Keystrokes demand snappy echo: wake the poller.
                    let mut g = ctx.enter(&pm_dev);
                    g.with_mut(|v| *v += 1);
                    g.notify(&pcv_dev);
                }
                // Motions stay silent: the poller polls (§5.6's contrast).
            }
        }
    });

    // The application serializer thread, at GVX's characteristic
    // priority 5 (the level Cedar never uses).
    let (k0, k1) = lib_map::KEYBOARD;
    let (d0, d1) = lib_map::DISPLAY;
    let mut kb = lib.cursor(k0, k1);
    let mut disp = lib.cursor(d0, d1);
    let mut mouse_track = lib.cursor(38, 4);
    let echo_m = sim.monitor("gvx-echo.pending", 0u32);
    let echo_cv = sim.condition(&echo_m, "gvx-echo.cv", Some(millis(930)));
    let (echo_m2, echo_cv2) = (echo_m.clone(), echo_cv.clone());
    let mut echo_cursor = lib.cursor(194, 20);
    let _ = sim.fork_root("GVX.EchoPainter", Priority::of(3), move |ctx| loop {
        let pending = {
            let mut g = ctx.enter(&echo_m2);
            let _ = g.wait(&echo_cv2);
            g.with_mut(std::mem::take)
        };
        for _ in 0..pending {
            ctx.work(millis(1));
            echo_cursor.touch_n(ctx, 6, micros(10));
        }
    });
    let _ = sim.fork_root("GVX.InputPoller", Priority::of(5), move |ctx| loop {
        {
            let mut g = ctx.enter(&poll_m);
            let _ = g.wait(&poll_cv);
        }
        let drained: Vec<InputEvent> = {
            let mut g = ctx.enter(&queue);
            g.with_mut(|q| q.drain(..).collect())
        };
        for ev in drained {
            match ev {
                InputEvent::Key(i) => {
                    ctx.work(millis(2));
                    kb.touch_n(ctx, 200, micros(4));
                    bus.ping(ctx, i as u64, 3);
                    let mut g = ctx.enter(&echo_m);
                    g.with_mut(|v| *v += 1);
                    g.notify(&echo_cv);
                }
                InputEvent::Motion(_) => {
                    // Motions are cheap and silent, touching only a
                    // couple of cursor-tracking monitors.
                    ctx.work(micros(150));
                    mouse_track.touch_n(ctx, 2, micros(4));
                }
                InputEvent::Click(i) => {
                    // Scroll: hold the coarse screen monitor across the
                    // whole repaint — the §3 contention hotspot (0.4 %).
                    let mut g = ctx.enter(&screen_poller);
                    ctx.work(SCREEN_HOLD_SCROLL);
                    g.with_mut(|v| *v += 1);
                    drop(g);
                    disp.touch_n(ctx, 330, micros(30));
                    bus.ping(ctx, i as u64, 2);
                }
            }
        }
    });

    // Two low-priority helpers that never run (§3: "Two of the five
    // low-priority threads in fact never ran during our experiments"):
    // they wait on conditions nobody signals.
    for (name, prio) in [("GVX.IdleHelperA", 1), ("GVX.IdleHelperB", 2)] {
        let m = sim.monitor(&format!("{name}.state"), ());
        let cv = sim.condition(&m, &format!("{name}.never"), None);
        let _ = sim.fork_root(name, Priority::of(prio), move |ctx| {
            let mut g = ctx.enter(&m);
            loop {
                let _ = g.wait(&cv);
            }
        });
    }

    // A display watchdog above the serializer's priority: when it wakes
    // during the long screen hold of a scroll repaint it preempts the
    // holder and immediately blocks on the coarse screen monitor — the
    // contention the paper measures at up to 0.4 % for GVX scrolling.
    let screen2 = screen;
    let _ = sim.fork_root("GVX.DisplayWatchdog", Priority::of(6), move |ctx| loop {
        ctx.sleep_precise(millis(250));
        let mut g = ctx.enter(&screen2);
        ctx.work(micros(50));
        g.with_mut(|v| *v += 1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{RunLimit, SimConfig};

    #[test]
    fn gvx_priority_profile_matches_the_paper() {
        // Almost all threads at 3; a few low-priority helpers; level 5
        // used (the poller); level 7 never.
        let specs = sleeper_specs();
        let at3 = specs.iter().filter(|s| s.priority.get() == 3).count();
        assert!(
            at3 >= specs.len() - 3,
            "only {at3} of {} at P3",
            specs.len()
        );
        assert!(specs.iter().all(|s| s.priority.get() != 7));
    }

    #[test]
    fn every_benchmark_installs_cleanly() {
        for bench in crate::spec::Benchmark::GVX {
            let mut sim = pcr::Sim::new(SimConfig::default().with_seed(1));
            install(&mut sim, bench);
            let r = sim.run(RunLimit::For(pcr::secs(3)));
            assert!(!r.deadlocked(), "{bench:?} deadlocked");
            assert_eq!(sim.stats().panics, 0, "{bench:?} panicked");
            assert_eq!(
                sim.stats().forks as usize,
                sim.thread_count(),
                "GVX forked beyond its eternal population"
            );
        }
    }

    #[test]
    fn modeled_sites_cover_the_population() {
        let mut sim = pcr::Sim::new(SimConfig::default().with_seed(1));
        install(&mut sim, crate::spec::Benchmark::Idle);
        let sites: Vec<String> = modeled_sites().into_iter().map(|(n, _)| n).collect();
        for t in sim.threads_iter() {
            assert!(
                sites.iter().any(|s| s == t.name),
                "thread '{}' missing from modeled_sites()",
                t.name
            );
        }
    }
}
