//! # workloads — the synthetic Cedar and GVX worlds
//!
//! Rebuilds, per the substitution rule in DESIGN.md, the two systems the
//! paper measured: **Cedar** (research) and **GVX** (GlobalView,
//! product), as parameterized populations of threads on the [`pcr`]
//! runtime whose paradigm mix, blocking structure, priorities, and event
//! rates are calibrated to the paper's §3. Each of the paper's twelve
//! benchmark rows (eight Cedar + four GVX) is a [`spec::Benchmark`] run
//! through [`runner::run_benchmark`], which returns the measurements of
//! Tables 1–3 plus the in-text distributions (execution intervals, fork
//! genealogy, CPU by priority).
//!
//! [`inventory::census`] carries the Table 4 fork-site census as data,
//! cross-checked against the dynamic models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cedar;
pub mod gvx;
pub mod inventory;
pub mod runner;
pub mod serve;
pub mod session;
pub mod spec;
pub mod world;

pub use runner::{
    build_chaos, build_chaos_with, chaos_preset, eternal_thread_count, harvest, probe,
    run_benchmark, run_benchmark_chaos, run_benchmark_policy, run_benchmark_with, BenchResult,
    DEFAULT_WINDOW,
};
pub use spec::{paper_row, Benchmark, PaperRow, System};
