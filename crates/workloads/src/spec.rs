//! Benchmark and system identifiers for the paper's measurement suite.

use std::fmt;

pub use threadstudy_core::System;

/// The benchmarks of Tables 1–3. Cedar runs all eight; GVX runs the four
/// interactive ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// Nothing but the eternal threads.
    Idle,
    /// Typing (~4–5 keystrokes/sec).
    Keyboard,
    /// Mouse motion (no clicks).
    Mouse,
    /// Scrolling a text window.
    Scroll,
    /// Formatting a document into a page description language.
    Format,
    /// Previewing pages described by a page description language.
    Preview,
    /// Checking whether a program needs recompiling.
    Make,
    /// Compiling.
    Compile,
}

impl Benchmark {
    /// The Cedar benchmark suite, in Table 1's row order.
    pub const CEDAR: [Benchmark; 8] = [
        Benchmark::Idle,
        Benchmark::Keyboard,
        Benchmark::Mouse,
        Benchmark::Scroll,
        Benchmark::Format,
        Benchmark::Preview,
        Benchmark::Make,
        Benchmark::Compile,
    ];

    /// The GVX benchmark suite, in Table 1's row order.
    pub const GVX: [Benchmark; 4] = [
        Benchmark::Idle,
        Benchmark::Keyboard,
        Benchmark::Mouse,
        Benchmark::Scroll,
    ];

    /// The suite for a system.
    pub fn suite(system: System) -> &'static [Benchmark] {
        match system {
            System::Cedar => &Self::CEDAR,
            System::Gvx => &Self::GVX,
        }
    }

    /// The serve-world session class this interactive benchmark maps
    /// to, if any: the serve traffic mix reuses the paper's keyboard /
    /// mouse / scroll characterizations.
    pub fn serve_class(self) -> Option<serverd::SessionClass> {
        match self {
            Benchmark::Keyboard => Some(serverd::SessionClass::Keyboard),
            Benchmark::Mouse => Some(serverd::SessionClass::Mouse),
            Benchmark::Scroll => Some(serverd::SessionClass::Scroll),
            _ => None,
        }
    }

    /// The row label used in the paper's tables.
    pub fn label(self, system: System) -> String {
        match (system, self) {
            (System::Cedar, Benchmark::Idle) => "Idle Cedar".to_string(),
            (System::Gvx, Benchmark::Idle) => "Idle GVX".to_string(),
            (_, Benchmark::Keyboard) => "Keyboard input".to_string(),
            (_, Benchmark::Mouse) => "Mouse movement".to_string(),
            (_, Benchmark::Scroll) => "Window scrolling".to_string(),
            (_, Benchmark::Format) => "Document formatting".to_string(),
            (_, Benchmark::Preview) => "Document previewing".to_string(),
            (_, Benchmark::Make) => "Make program".to_string(),
            (_, Benchmark::Compile) => "Compile".to_string(),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The paper's published values for one benchmark row, used by
/// EXPERIMENTS.md and the shape tests.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Table 1: forks/sec.
    pub forks_per_sec: f64,
    /// Table 1: thread switches/sec.
    pub switches_per_sec: f64,
    /// Table 2: CV waits/sec.
    pub waits_per_sec: f64,
    /// Table 2: % of waits that timed out.
    pub timeout_pct: f64,
    /// Table 2: monitor entries/sec.
    pub ml_enters_per_sec: f64,
    /// Table 3: distinct CVs waited on.
    pub distinct_cvs: usize,
    /// Table 3: distinct monitor locks entered.
    pub distinct_mls: usize,
}

/// The paper's Table 1–3 numbers for a (system, benchmark) pair.
pub fn paper_row(system: System, bench: Benchmark) -> PaperRow {
    use Benchmark as B;
    let r = |f, s, w, t, m, cvs, mls| PaperRow {
        forks_per_sec: f,
        switches_per_sec: s,
        waits_per_sec: w,
        timeout_pct: t,
        ml_enters_per_sec: m,
        distinct_cvs: cvs,
        distinct_mls: mls,
    };
    match (system, bench) {
        (System::Cedar, B::Idle) => r(0.9, 132.0, 121.0, 82.0, 414.0, 22, 554),
        (System::Cedar, B::Keyboard) => r(5.0, 269.0, 185.0, 48.0, 2557.0, 32, 918),
        (System::Cedar, B::Mouse) => r(1.0, 191.0, 163.0, 58.0, 1025.0, 26, 734),
        (System::Cedar, B::Scroll) => r(0.7, 172.0, 115.0, 69.0, 2032.0, 30, 797),
        (System::Cedar, B::Format) => r(3.6, 171.0, 130.0, 72.0, 2739.0, 46, 1060),
        (System::Cedar, B::Preview) => r(1.6, 222.0, 157.0, 56.0, 1335.0, 32, 938),
        (System::Cedar, B::Make) => r(0.3, 170.0, 158.0, 61.0, 2218.0, 24, 1296),
        (System::Cedar, B::Compile) => r(0.3, 135.0, 119.0, 82.0, 1365.0, 36, 2900),
        (System::Gvx, B::Idle) => r(0.0, 33.0, 32.0, 99.0, 366.0, 5, 48),
        (System::Gvx, B::Keyboard) => r(0.0, 60.0, 38.0, 42.0, 1436.0, 7, 204),
        (System::Gvx, B::Mouse) => r(0.0, 33.0, 33.0, 96.0, 410.0, 5, 52),
        (System::Gvx, B::Scroll) => r(0.0, 34.0, 25.0, 61.0, 691.0, 6, 209),
        (System::Gvx, _) => panic!("GVX was only measured on the four interactive benchmarks"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_match_paper_rows() {
        assert_eq!(Benchmark::suite(System::Cedar).len(), 8);
        assert_eq!(Benchmark::suite(System::Gvx).len(), 4);
    }

    #[test]
    fn labels_match_table_style() {
        assert_eq!(Benchmark::Idle.label(System::Cedar), "Idle Cedar");
        assert_eq!(Benchmark::Idle.label(System::Gvx), "Idle GVX");
        assert_eq!(Benchmark::Compile.label(System::Cedar), "Compile");
    }

    #[test]
    fn paper_rows_available_for_all_suite_entries() {
        for sys in [System::Cedar, System::Gvx] {
            for &b in Benchmark::suite(sys) {
                let row = paper_row(sys, b);
                assert!(row.switches_per_sec > 0.0);
            }
        }
    }

    #[test]
    fn gvx_never_forks_in_paper_data() {
        for &b in Benchmark::suite(System::Gvx) {
            assert_eq!(paper_row(System::Gvx, b).forks_per_sec, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "only measured")]
    fn gvx_compile_row_is_absent() {
        let _ = paper_row(System::Gvx, Benchmark::Compile);
    }
}
