//! The serve world as a first-class workload: reference cells for the
//! matrix and small hot cells for the resilience fuzzer.
//!
//! The heavy lifting lives in the `serverd` crate; this module is the
//! glue that makes "serve" look like the other worlds — named cells,
//! chaos composition, and a single spawn point the fuzzer can drive.

pub use serverd::{run_serve, ServeOutcome, ServeReport, ServeScenario, ServeSpec, SloTargets};

/// The reference serve cell at a given scale.
pub fn reference_spec(sessions: u32, seed: u64) -> ServeSpec {
    ServeSpec::reference(sessions, seed)
}

/// A named scenario cell at a given scale.
pub fn scenario_spec(sc: ServeScenario, sessions: u32, seed: u64) -> ServeSpec {
    ServeSpec::scenario(sc, sessions, seed)
}

/// Builds a small, hot serve world for fuzzing: the sim is configured
/// with `chaos` faults and an optional thread cap, and the caller runs
/// it however the fuzz harness likes.
pub fn build_fuzz_world(
    sc: ServeScenario,
    seed: u64,
    chaos: pcr::ChaosConfig,
    max_threads: Option<usize>,
) -> pcr::Sim {
    let spec = ServeSpec::fuzz_small(sc, seed);
    let chaos = if chaos.is_active() { Some(chaos) } else { None };
    let (sim, _handle) = serverd::world::build_sim(spec, chaos, max_threads);
    sim
}

/// Builds the report for a finished outcome, excluding wall-clock so
/// equal seeds produce byte-identical JSON.
pub fn outcome_report(spec: &ServeSpec, outcome: &ServeOutcome) -> ServeReport {
    let window_secs = spec.window.as_micros() as f64 / 1e6;
    let c = &outcome.counters;
    let mut report = ServeReport {
        sessions: spec.sessions,
        seed: spec.seed,
        window_us: spec.window.as_micros(),
        policy: format!("{:?}", spec.policy).to_lowercase(),
        scenario: spec.scenario_label().to_string(),
        end_us: outcome.end.as_micros(),
        p50_us: 0,
        p99_us: 0,
        p999_us: 0,
        max_us: 0,
        mean_us: 0,
        histogram: Vec::new(),
        counters: *c,
        goodput_per_sec: c.painted as f64 / window_secs,
        amplification: c.amplification(),
        budget_suppressed: outcome.budget_suppressed,
        codel_drops: outcome.codel_drops,
        breaker_trips: outcome.breaker_trips,
        breaker_fast_failed_batches: outcome.fast_failed_batches,
        outage_failed_batches: outcome.metrics.outage_failed_batches,
        batches: outcome.metrics.batches,
        degrade: serverd::report::DegradeSummary {
            degrade_steps: outcome.ladder.degrade_steps,
            restore_steps: outcome.ladder.restore_steps,
            max_level: outcome.ladder.max_level as u64,
            time_at_level_us: outcome.ladder.time_at_level_us.clone(),
        },
        slo: spec.slo,
    };
    report.fill_latency(&outcome.metrics.latency);
    report
}

/// Runs a spec and reports it in one step.
pub fn run_report(spec: ServeSpec) -> ServeReport {
    let outcome = run_serve(spec.clone());
    outcome_report(&spec, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::secs;

    #[test]
    fn report_json_is_byte_deterministic() {
        let mk = || {
            let mut spec = reference_spec(500, 0xA5);
            spec.window = secs(5);
            run_report(spec).to_json().to_string()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(a.starts_with(r#"{"schema":"threadstudy-serve-v1""#));
    }

    #[test]
    fn fuzz_world_runs_under_chaos() {
        let mut sim = build_fuzz_world(ServeScenario::Burst, 7, pcr::ChaosConfig::default(), None);
        let report = sim.run(pcr::RunLimit::For(secs(40)));
        assert!(matches!(
            report.reason,
            pcr::StopReason::AllExited | pcr::StopReason::TimeLimit
        ));
    }
}
