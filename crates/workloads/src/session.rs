//! Multi-phase interactive sessions: one continuous run of a world
//! through several benchmark phases, with per-phase measurements.
//!
//! The paper measured each benchmark in isolation; a real Cedar day
//! interleaves them. A [`Session`] keeps a single simulator alive and
//! slices the statistics at phase boundaries, which also exercises the
//! world's *transitions* (e.g. the idle forker resuming after a compile
//! phase ends — except that workers in this model are eternal, so
//! compute phases must come last; see [`SessionPhase`]).

use pcr::{RunLimit, Sim, SimDuration};
use threadstudy_core::System;
use trace::BenchmarkRates;

use crate::spec::Benchmark;

/// One phase of a session: a label plus a duration. The world itself is
/// fixed at construction (its event sources and workers run for the
/// whole session); phases are measurement windows over it.
#[derive(Clone, Copy, Debug)]
pub struct SessionPhase {
    /// Label for the phase's row.
    pub benchmark: Benchmark,
    /// Virtual duration of the phase.
    pub duration: SimDuration,
}

/// Per-phase measurement.
#[derive(Debug)]
pub struct PhaseResult {
    /// The phase that ran.
    pub phase: SessionPhase,
    /// Rates over exactly this phase's window.
    pub rates: BenchmarkRates,
}

/// A session over one continuously-running world.
pub struct Session {
    sim: Sim,
    system: System,
}

impl Session {
    /// Builds a session over the world configured for `benchmark`; the
    /// world's event sources and workers then run continuously while
    /// successive [`Session::run_phase`] calls slice the measurements.
    pub fn new(system: System, benchmark: Benchmark, seed: u64) -> Self {
        Session {
            sim: crate::runner::build(system, benchmark, seed),
            system,
        }
    }

    /// Runs one phase and returns its sliced rates.
    ///
    /// # Panics
    ///
    /// Panics if the world deadlocks.
    pub fn run_phase(&mut self, phase: SessionPhase) -> PhaseResult {
        let before = self.sim.stats().clone();
        let report = self.sim.run(RunLimit::For(phase.duration));
        assert!(!report.deadlocked(), "session world deadlocked");
        let after = self.sim.stats().clone();
        let label = format!(
            "{} ({:?} phase)",
            phase.benchmark.label(self.system),
            phase.benchmark
        );
        PhaseResult {
            phase,
            rates: BenchmarkRates::from_window(&label, &before, &after, report.elapsed),
        }
    }

    /// The underlying simulator (for custom probes).
    pub fn sim(&mut self) -> &mut Sim {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::secs;

    #[test]
    fn phases_slice_stats_independently() {
        // One continuous keyboard world measured twice: the two phases'
        // rates are computed from disjoint windows and roughly agree.
        let mut s = Session::new(System::Cedar, Benchmark::Keyboard, 5);
        let warm = s.run_phase(SessionPhase {
            benchmark: Benchmark::Keyboard,
            duration: secs(2),
        });
        let p1 = s.run_phase(SessionPhase {
            benchmark: Benchmark::Keyboard,
            duration: secs(8),
        });
        let p2 = s.run_phase(SessionPhase {
            benchmark: Benchmark::Keyboard,
            duration: secs(8),
        });
        let _ = warm;
        assert!(p1.rates.ml_enters_per_sec > 1000.0);
        let ratio = p1.rates.ml_enters_per_sec / p2.rates.ml_enters_per_sec;
        assert!(
            (0.7..1.4).contains(&ratio),
            "steady-state phases should agree: {ratio}"
        );
        // Virtual time really advanced continuously.
        assert_eq!(s.sim().now(), pcr::SimTime::ZERO + secs(18));
    }

    #[test]
    fn gvx_session_stays_forkless_across_phases() {
        let mut s = Session::new(System::Gvx, Benchmark::Scroll, 5);
        for _ in 0..3 {
            let p = s.run_phase(SessionPhase {
                benchmark: Benchmark::Scroll,
                duration: secs(5),
            });
            assert_eq!(p.rates.forks_per_sec, 0.0);
        }
    }
}
