//! Shared building blocks for the synthetic Cedar and GVX worlds.
//!
//! Both worlds are populated with *eternal* threads (sleepers, pumps,
//! serializers with little to do — §3's characterization) plus the
//! benchmark-specific workers. The blocks here give the worlds their
//! measurable texture:
//!
//! * a [`LibraryPool`] of per-module monitors — the paper attributes the
//!   high monitor-entry rates and the 500–3000 distinct monitors per
//!   benchmark to "reusable library packages" protecting their data, so
//!   every activity walks monitors from an assigned range of the pool;
//! * [`SleeperBus`] — each eternal sleeper waits on its own CV with a
//!   timeout (the `PeriodicalProcess` idiom), so an idle system's waits
//!   are mostly timeouts (Table 2: 82 % idle) while interactive traffic
//!   NOTIFYs sleepers and drives the timeout fraction down;
//! * [`InputEvent`] — the keyboard/mouse/scroll event vocabulary.

use std::sync::Arc;

use pcr::{micros, Condition, Monitor, Priority, Sim, SimDuration, ThreadCtx};

/// One user-input event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputEvent {
    /// A keystroke.
    Key(u32),
    /// Mouse motion.
    Motion(u32),
    /// A mouse click (scrolling uses clicks).
    Click(u32),
}

/// A pool of monitors standing in for library-module monitor locks.
#[derive(Clone)]
pub struct LibraryPool {
    monitors: Arc<Vec<Monitor<u64>>>,
}

impl LibraryPool {
    /// Creates `size` module monitors before the run.
    pub fn new(sim: &mut Sim, size: usize) -> Self {
        let monitors = (0..size)
            .map(|i| sim.monitor(&format!("module-{i}"), 0u64))
            .collect();
        LibraryPool {
            monitors: Arc::new(monitors),
        }
    }

    /// Number of module monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// A cursor walking the subrange `start..start+span` round-robin.
    pub fn cursor(&self, start: usize, span: usize) -> LibCursor {
        assert!(span > 0, "cursor span must be positive");
        assert!(
            start + span <= self.monitors.len(),
            "cursor range out of pool bounds"
        );
        LibCursor {
            pool: self.monitors.clone(),
            start,
            span,
            next: 0,
        }
    }
}

/// A round-robin walker over a [`LibraryPool`] subrange.
pub struct LibCursor {
    pool: Arc<Vec<Monitor<u64>>>,
    start: usize,
    span: usize,
    next: usize,
}

impl LibCursor {
    /// Enters the next module monitor in the range, does `hold` of work
    /// inside, and exits.
    pub fn touch(&mut self, ctx: &ThreadCtx, hold: SimDuration) {
        let m = &self.pool[self.start + (self.next % self.span)];
        self.next += 1;
        let mut g = ctx.enter(m);
        if !hold.is_zero() {
            ctx.work(hold);
        }
        g.with_mut(|v| *v += 1);
        drop(g);
    }

    /// Touches `n` consecutive module monitors.
    pub fn touch_n(&mut self, ctx: &ThreadCtx, n: usize, hold: SimDuration) {
        for _ in 0..n {
            self.touch(ctx, hold);
        }
    }
}

/// State behind each eternal sleeper's monitor.
#[derive(Default)]
pub struct SleeperSlot {
    /// Pings delivered by interactive traffic.
    pub pings: u64,
}

/// The per-sleeper monitors and CVs that interactive traffic can NOTIFY.
#[derive(Clone)]
pub struct SleeperBus {
    slots: Arc<Vec<(Monitor<SleeperSlot>, Condition)>>,
}

/// Specification for one eternal sleeper.
pub struct SleeperSpec {
    /// Thread name (also used as its inventory site name).
    pub name: &'static str,
    /// Priority.
    pub priority: Priority,
    /// CV timeout: the sleeper's period when nothing pings it.
    pub period: SimDuration,
    /// CPU per wakeup.
    pub wake_work: SimDuration,
    /// Library monitors touched per wakeup.
    pub touches: usize,
}

impl SleeperBus {
    /// Creates the bus and spawns one eternal sleeper per spec. Each
    /// sleeper `i` walks the library from `lib_starts[i]` over
    /// `lib_spans[i]` modules.
    pub fn install(
        sim: &mut Sim,
        specs: &[SleeperSpec],
        lib: &LibraryPool,
        lib_starts: &[usize],
        lib_spans: &[usize],
    ) -> SleeperBus {
        assert_eq!(specs.len(), lib_starts.len());
        assert_eq!(specs.len(), lib_spans.len());
        let mut slots = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let m = sim.monitor(&format!("{}.state", spec.name), SleeperSlot::default());
            let cv = sim.condition(&m, &format!("{}.tick", spec.name), Some(spec.period));
            slots.push((m.clone(), cv.clone()));
            let mut cursor = lib.cursor(lib_starts[i], lib_spans[i]);
            let (wake_work, touches) = (spec.wake_work, spec.touches);
            let _ = sim.fork_root(spec.name, spec.priority, move |ctx| loop {
                {
                    let mut g = ctx.enter(&m);
                    let _ = g.wait(&cv);
                    g.with_mut(|s| s.pings = 0);
                }
                ctx.work(wake_work);
                cursor.touch_n(ctx, touches, micros(20));
            });
        }
        SleeperBus {
            slots: Arc::new(slots),
        }
    }

    /// Number of sleepers on the bus.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no sleepers are installed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Pings `count` sleepers starting at a position derived from `salt`
    /// — the "keyboard activity and mouse motion cause significant
    /// increases in activity by eternal threads" coupling.
    pub fn ping(&self, ctx: &ThreadCtx, salt: u64, count: usize) {
        if self.slots.is_empty() {
            return;
        }
        for k in 0..count {
            let idx = ((salt as usize).wrapping_add(k * 7)) % self.slots.len();
            let (m, cv) = &self.slots[idx];
            let mut g = ctx.enter(m);
            g.with_mut(|s| s.pings += 1);
            g.notify(cv);
        }
    }
}

/// Poisson-process interarrival helper: samples the next gap for a mean
/// rate of `per_sec` events per second, clamped to ≥ 100 µs. The single
/// implementation lives in `serverd::traffic` so the desktop worlds and
/// the serve world draw identical gap streams from identical seeds.
pub fn next_gap(rng: &mut pcr::SplitMix64, per_sec: f64) -> SimDuration {
    serverd::traffic::poisson_gap(rng, per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, RunLimit, SimConfig};

    #[test]
    fn library_cursor_walks_its_range() {
        let mut sim = Sim::new(SimConfig::default());
        let lib = LibraryPool::new(&mut sim, 50);
        let mut cur = lib.cursor(10, 5);
        let _ = sim.fork_root("t", Priority::DEFAULT, move |ctx| {
            cur.touch_n(ctx, 12, micros(1));
        });
        sim.run(RunLimit::ToCompletion);
        // 12 touches over a span of 5 distinct monitors.
        assert_eq!(sim.stats().ml_enters, 12);
        assert_eq!(sim.stats().distinct_monitors.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of pool bounds")]
    fn cursor_bounds_checked() {
        let mut sim = Sim::new(SimConfig::default());
        let lib = LibraryPool::new(&mut sim, 10);
        let _ = lib.cursor(8, 5);
    }

    #[test]
    fn sleepers_timeout_when_idle_and_wake_on_ping() {
        let mut sim = Sim::new(SimConfig::default());
        let lib = LibraryPool::new(&mut sim, 100);
        let specs = [
            SleeperSpec {
                name: "s0",
                priority: Priority::of(3),
                period: millis(100),
                wake_work: micros(200),
                touches: 2,
            },
            SleeperSpec {
                name: "s1",
                priority: Priority::of(3),
                period: millis(200),
                wake_work: micros(200),
                touches: 2,
            },
        ];
        let bus = SleeperBus::install(&mut sim, &specs, &lib, &[0, 50], &[10, 10]);
        assert_eq!(bus.len(), 2);
        // Idle phase: all waits time out.
        sim.run(RunLimit::For(secs(2)));
        let idle_waits = sim.stats().cv_waits;
        let idle_touts = sim.stats().cv_timeouts;
        assert!(idle_waits >= 20, "waits {idle_waits}");
        assert!(
            idle_touts as f64 / idle_waits as f64 > 0.9,
            "idle should be timeout-driven"
        );
        // Now ping continuously from a high-priority source.
        let _ = sim.fork_root("pinger", Priority::of(6), move |ctx| {
            for i in 0..100u64 {
                ctx.sleep_precise(millis(10));
                bus.ping(ctx, i, 2);
            }
        });
        let before = sim.stats().clone();
        sim.run(RunLimit::For(secs(1)));
        let after = sim.stats();
        let waits = after.cv_waits - before.cv_waits;
        let touts = after.cv_timeouts - before.cv_timeouts;
        assert!(waits > 50, "pinged waits {waits}");
        assert!(
            (touts as f64 / waits as f64) < 0.5,
            "pings should dominate timeouts: {touts}/{waits}"
        );
    }

    #[test]
    fn next_gap_mean_tracks_rate() {
        let mut rng = pcr::SplitMix64::new(42);
        let n = 5000;
        let total: u64 = (0..n).map(|_| next_gap(&mut rng, 10.0).as_micros()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100_000.0).abs() < 10_000.0, "mean {mean}");
    }
}
