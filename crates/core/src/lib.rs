//! # threadstudy-core — the paradigm taxonomy
//!
//! The primary intellectual contribution of *Using Threads in Interactive
//! Systems: A Case Study* (SOSP 1993) is a classification of how ~650
//! thread-creation sites across Cedar and GVX actually use threads: ten
//! paradigms, from the ubiquitous *defer work* to the subtle *slack
//! process* and the counter-intuitive *task rejuvenation*.
//!
//! This crate holds that taxonomy ([`Paradigm`]) and the census types
//! ([`Inventory`], [`ForkSite`], [`System`]) used to regenerate Table 4
//! and to cross-check the synthetic world models against the census.
//! The paradigm *implementations* live in the `paradigms` crate (on the
//! simulator) and the `mesa` crate (on real threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inventory;
mod paradigm;

pub use inventory::{ForkSite, Inventory, System};
pub use paradigm::Paradigm;
