//! The ten thread-usage paradigms — the paper's central taxonomy (§4).

use std::fmt;

/// A thread-usage paradigm from the paper's classification of ~650 fork
/// sites in Cedar and GVX (§4, Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Paradigm {
    /// §4.1 — fork work not needed for the caller's return value, to
    /// reduce latency seen by the client (the single most common use).
    DeferWork,
    /// §4.2 — a pipeline component: pick up input, transform, emit
    /// downstream. Used mostly for program structuring, not parallelism.
    GeneralPump,
    /// §4.2 — a pump that deliberately *adds* latency, merging or
    /// replacing data to reduce total work when the downstream consumer
    /// has high per-transaction costs.
    SlackProcess,
    /// §4.3 — repeatedly wait for a trigger (often a timeout), run
    /// briefly, sleep again (cursor blinkers, cache sweepers, callbacks).
    Sleeper,
    /// §4.3 — a sleeper that sleeps, runs once, and goes away (guarded
    /// buttons, delayed actions).
    OneShot,
    /// §4.4 — fork so the new thread can acquire locks in a legal order
    /// that the forker, already holding some locks, cannot.
    DeadlockAvoider,
    /// §4.5 — fork a replacement thread to recover from a bad state
    /// (uncaught exception, stack overflow) unrecoverable in place.
    TaskRejuvenation,
    /// §4.6 — a queue plus a thread processing it, serializing work from
    /// many sources (the window-system input model).
    Serializer,
    /// §4.8 — a fork inside a packaged abstraction (`DelayedFork`,
    /// `PeriodicalFork`, `MBQueue`) that captures one of the other
    /// paradigms behind a library interface.
    EncapsulatedFork,
    /// §4.7 — a thread created specifically to use multiple processors.
    ConcurrencyExploiter,
    /// Table 4's "Unknown or other" row.
    Unknown,
}

impl Paradigm {
    /// All paradigms in Table 4's row order.
    pub const ALL: [Paradigm; 11] = [
        Paradigm::DeferWork,
        Paradigm::GeneralPump,
        Paradigm::SlackProcess,
        Paradigm::Sleeper,
        Paradigm::OneShot,
        Paradigm::DeadlockAvoider,
        Paradigm::TaskRejuvenation,
        Paradigm::Serializer,
        Paradigm::EncapsulatedFork,
        Paradigm::ConcurrencyExploiter,
        Paradigm::Unknown,
    ];

    /// Parses a Table 4 row label back into a paradigm.
    pub fn from_table_label(label: &str) -> Option<Paradigm> {
        Paradigm::ALL.into_iter().find(|p| p.table_label() == label)
    }

    /// The row label used in Table 4.
    pub fn table_label(self) -> &'static str {
        match self {
            Paradigm::DeferWork => "Defer work",
            Paradigm::GeneralPump => "General pumps",
            Paradigm::SlackProcess => "Slack processes",
            Paradigm::Sleeper => "Sleepers",
            Paradigm::OneShot => "Oneshots",
            Paradigm::DeadlockAvoider => "Deadlock avoid",
            Paradigm::TaskRejuvenation => "Task rejuvenate",
            Paradigm::Serializer => "Serializers",
            Paradigm::EncapsulatedFork => "Encapsulated fork",
            Paradigm::ConcurrencyExploiter => "Concurrency exploiters",
            Paradigm::Unknown => "Unknown or other",
        }
    }

    /// One-sentence description from the paper.
    pub fn description(self) -> &'static str {
        match self {
            Paradigm::DeferWork => {
                "Fork work not required for the procedure's return value, reducing client latency"
            }
            Paradigm::GeneralPump => {
                "A pipeline component that picks up input, transforms it, and produces it as output"
            }
            Paradigm::SlackProcess => {
                "A pump that explicitly adds latency hoping to reduce total work by merging input"
            }
            Paradigm::Sleeper => {
                "Repeatedly waits for a triggering event (often a timeout), then executes briefly"
            }
            Paradigm::OneShot => "Sleeps for a while, runs once, and then goes away",
            Paradigm::DeadlockAvoider => {
                "Forked so lock-order constraints can be satisfied in a fresh thread"
            }
            Paradigm::TaskRejuvenation => {
                "A new thread forked to recover from an unrecoverable state in an old one"
            }
            Paradigm::Serializer => {
                "A queue plus a processing thread, serializing events from many sources"
            }
            Paradigm::EncapsulatedFork => {
                "A fork captured inside a library package that encapsulates another paradigm"
            }
            Paradigm::ConcurrencyExploiter => {
                "Created specifically to make use of multiple processors"
            }
            Paradigm::Unknown => "Does not fit easily into any category",
        }
    }

    /// Whether the paper classifies this paradigm as *easy* (§5.1:
    /// sleepers, one-shots, pumps outside critical timing paths, work
    /// deferrers) or hard.
    pub fn is_easy(self) -> bool {
        matches!(
            self,
            Paradigm::DeferWork | Paradigm::GeneralPump | Paradigm::Sleeper | Paradigm::OneShot
        )
    }

    /// Whether Birrell's 1991 introduction already described it, per the
    /// paper's list in §4 ("new" entries are the paper's contribution).
    pub fn new_in_paper(self) -> bool {
        matches!(
            self,
            Paradigm::SlackProcess
                | Paradigm::DeadlockAvoider
                | Paradigm::TaskRejuvenation
                | Paradigm::Serializer
                | Paradigm::EncapsulatedFork
        )
    }
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_eleven_rows_like_table_4() {
        assert_eq!(Paradigm::ALL.len(), 11);
        // No duplicates.
        let mut v = Paradigm::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn labels_are_table_4_rows() {
        assert_eq!(Paradigm::DeferWork.table_label(), "Defer work");
        assert_eq!(Paradigm::Unknown.table_label(), "Unknown or other");
    }

    #[test]
    fn easy_vs_hard_classification() {
        assert!(Paradigm::Sleeper.is_easy());
        assert!(Paradigm::DeferWork.is_easy());
        assert!(!Paradigm::SlackProcess.is_easy());
        assert!(!Paradigm::ConcurrencyExploiter.is_easy());
    }

    #[test]
    fn novelty_flags() {
        assert!(Paradigm::SlackProcess.new_in_paper());
        assert!(Paradigm::TaskRejuvenation.new_in_paper());
        assert!(!Paradigm::DeferWork.new_in_paper());
        assert!(!Paradigm::GeneralPump.new_in_paper());
    }

    #[test]
    fn descriptions_nonempty() {
        for p in Paradigm::ALL {
            assert!(!p.description().is_empty());
            assert_eq!(p.to_string(), p.table_label());
        }
    }

    #[test]
    fn label_roundtrip() {
        for p in Paradigm::ALL {
            assert_eq!(Paradigm::from_table_label(p.table_label()), Some(p));
        }
        assert_eq!(Paradigm::from_table_label("nonsense"), None);
    }
}
