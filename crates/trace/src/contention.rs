//! Per-monitor contention census.
//!
//! Table 2's text reports contention as a single fraction; the authors'
//! deeper analysis ("contention for monitor locks was sometimes
//! significantly higher in GVX ... when scrolling a window") needed to
//! know *which* monitors were hot. This collector attributes contended
//! entries to monitors and reports the top offenders.

use std::collections::HashMap;

use pcr::{Event, EventKind, MonitorId, TraceSink};

/// Contention counters for one monitor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorContention {
    /// Total entries.
    pub enters: u64,
    /// Entries that found the mutex held.
    pub contended: u64,
}

impl MonitorContention {
    /// Fraction of entries that were contended.
    pub fn fraction(&self) -> f64 {
        if self.enters == 0 {
            0.0
        } else {
            self.contended as f64 / self.enters as f64
        }
    }
}

/// Collects per-monitor entry/contention counts from the event stream.
#[derive(Debug, Default)]
pub struct ContentionCollector {
    per_monitor: HashMap<MonitorId, MonitorContention>,
}

impl ContentionCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for one monitor.
    pub fn for_monitor(&self, m: MonitorId) -> MonitorContention {
        self.per_monitor.get(&m).copied().unwrap_or_default()
    }

    /// The `n` monitors with the most contended entries, descending.
    pub fn hottest(&self, n: usize) -> Vec<(MonitorId, MonitorContention)> {
        let mut v: Vec<(MonitorId, MonitorContention)> = self
            .per_monitor
            .iter()
            .filter(|(_, c)| c.contended > 0)
            .map(|(&m, &c)| (m, c))
            .collect();
        v.sort_by_key(|(m, c)| (std::cmp::Reverse(c.contended), m.as_u32()));
        v.truncate(n);
        v
    }

    /// Total entries across all monitors.
    pub fn total_enters(&self) -> u64 {
        self.per_monitor.values().map(|c| c.enters).sum()
    }

    /// Total contended entries across all monitors.
    pub fn total_contended(&self) -> u64 {
        self.per_monitor.values().map(|c| c.contended).sum()
    }
}

impl TraceSink for ContentionCollector {
    fn record(&mut self, ev: &Event) {
        if let EventKind::MlEnter {
            monitor, contended, ..
        } = ev.kind
        {
            let c = self.per_monitor.entry(monitor).or_default();
            c.enters += 1;
            if contended {
                c.contended += 1;
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

    #[test]
    fn attributes_contention_to_the_hot_monitor() {
        let mut sim = Sim::new(SimConfig::default());
        sim.set_sink(Box::new(ContentionCollector::new()));
        let hot = sim.monitor("hot", 0u32);
        let cold = sim.monitor("cold", 0u32);
        let hot_id = hot.id();
        let cold_id = cold.id();
        // Two threads fight over `hot` (held across a sleep); `cold` is
        // touched uncontended.
        for i in 0..2 {
            let hot = hot.clone();
            let cold = cold.clone();
            let _ = sim.fork_root(&format!("t{i}"), Priority::DEFAULT, move |ctx| {
                for _ in 0..5 {
                    let mut g = ctx.enter(&hot);
                    ctx.sleep_precise(millis(2)); // threadlint: allow(blocking-call-in-monitor) -- hold across a block.
                    g.with_mut(|v| *v += 1);
                    drop(g);
                    let mut c = ctx.enter(&cold);
                    c.with_mut(|v| *v += 1);
                }
            });
        }
        sim.run(RunLimit::For(secs(5)));
        let coll = trace_downcast(&mut sim);
        assert!(
            coll.for_monitor(hot_id).contended > 0,
            "hot never contended"
        );
        assert_eq!(coll.for_monitor(cold_id).contended, 0);
        let hottest = coll.hottest(5);
        assert_eq!(hottest[0].0, hot_id);
        assert!(coll.total_enters() >= 20);
        assert!(coll.for_monitor(hot_id).fraction() > 0.0);
    }

    fn trace_downcast(sim: &mut Sim) -> Box<ContentionCollector> {
        crate::take_collector::<ContentionCollector>(sim).expect("collector")
    }

    #[test]
    fn empty_collector_is_sane() {
        let c = ContentionCollector::new();
        assert_eq!(c.total_enters(), 0);
        assert!(c.hottest(3).is_empty());
        assert_eq!(c.for_monitor(pcr_mid(7)).fraction(), 0.0);
    }

    fn pcr_mid(_v: u32) -> MonitorId {
        // MonitorIds are opaque; get one from a real sim.
        let mut sim = Sim::new(SimConfig::default());
        sim.monitor("m", ()).id()
    }
}
