//! Machine-readable export of traces and measurements.
//!
//! The authors built ad-hoc tools over their event logs; this module
//! provides the modern equivalent: JSON Lines export of the event
//! stream as flattened records, so external tooling (plots, diffing
//! runs) can consume the reproduction's output.

use std::io::Write;

use pcr::{Event, EventKind};

use crate::json::Json;

pub mod chrome;

/// A flattened, serializable view of one runtime event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Microseconds since simulation start.
    pub t_us: u64,
    /// Event kind tag (e.g. "switch", "ml_enter").
    pub kind: &'static str,
    /// Primary thread involved.
    pub tid: Option<u32>,
    /// Secondary thread (fork child, switch target, notify wakee...).
    pub other: Option<u32>,
    /// Monitor id, when relevant.
    pub monitor: Option<u32>,
    /// Condition id, when relevant.
    pub cv: Option<u32>,
    /// Extra detail (priority, contended flag, outcome...).
    pub detail: Option<String>,
}

/// An [`EventRecord`] read back from JSONL, with the `kind` tag owned
/// (the static tag table only covers events this build knows about).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEventRecord {
    /// Microseconds since simulation start.
    pub t_us: u64,
    /// Event kind tag (e.g. "switch", "ml_enter").
    pub kind: String,
    /// Primary thread involved.
    pub tid: Option<u32>,
    /// Secondary thread (fork child, switch target, notify wakee...).
    pub other: Option<u32>,
    /// Monitor id, when relevant.
    pub monitor: Option<u32>,
    /// Condition id, when relevant.
    pub cv: Option<u32>,
    /// Extra detail (priority, contended flag, outcome...).
    pub detail: Option<String>,
}

impl OwnedEventRecord {
    /// Reads one record back from its [`EventRecord::to_json`] form.
    pub fn from_json(v: &Json) -> Result<OwnedEventRecord, String> {
        let t_us = v
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or("record missing t_us")?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("record missing kind")?
            .to_string();
        let field_u32 = |key: &str| -> Result<Option<u32>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| format!("bad {key} field")),
            }
        };
        Ok(OwnedEventRecord {
            t_us,
            kind,
            tid: field_u32("tid")?,
            other: field_u32("other")?,
            monitor: field_u32("monitor")?,
            cv: field_u32("cv")?,
            detail: v.get("detail").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// One line of JSONL, parsed.
    pub fn from_jsonl_line(line: &str) -> Result<OwnedEventRecord, String> {
        OwnedEventRecord::from_json(&Json::parse(line)?)
    }
}

impl EventRecord {
    /// The record as a JSON object; `None` fields are omitted, matching
    /// the previous serde `skip_serializing_if` layout.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("t_us", Json::from(self.t_us)),
            ("kind", Json::from(self.kind)),
        ]);
        if let Some(tid) = self.tid {
            obj.push("tid", Json::from(tid));
        }
        if let Some(other) = self.other {
            obj.push("other", Json::from(other));
        }
        if let Some(monitor) = self.monitor {
            obj.push("monitor", Json::from(monitor));
        }
        if let Some(cv) = self.cv {
            obj.push("cv", Json::from(cv));
        }
        if let Some(detail) = &self.detail {
            obj.push("detail", Json::from(detail.clone()));
        }
        obj
    }
}

impl From<&Event> for EventRecord {
    fn from(ev: &Event) -> Self {
        let mut r = EventRecord {
            t_us: ev.t.as_micros(),
            kind: "other",
            tid: None,
            other: None,
            monitor: None,
            cv: None,
            detail: None,
        };
        match ev.kind {
            EventKind::Fork {
                parent,
                child,
                priority,
                generation,
            } => {
                r.kind = "fork";
                r.tid = parent.map(|t| t.as_u32());
                r.other = Some(child.as_u32());
                r.detail = Some(format!("prio={priority} gen={generation}"));
            }
            EventKind::Exit { tid, panicked } => {
                r.kind = "exit";
                r.tid = Some(tid.as_u32());
                r.detail = panicked.then(|| "panicked".to_string());
            }
            EventKind::Join { joiner, target } => {
                r.kind = "join";
                r.tid = Some(joiner.as_u32());
                r.other = Some(target.as_u32());
            }
            EventKind::Detach { tid, target } => {
                r.kind = "detach";
                r.tid = Some(tid.as_u32());
                r.other = Some(target.as_u32());
            }
            EventKind::Switch {
                from,
                to,
                to_priority,
                ready_for,
            } => {
                r.kind = "switch";
                r.tid = from.map(|t| t.as_u32());
                r.other = Some(to.as_u32());
                r.detail = Some(format!(
                    "prio={to_priority} ready_us={}",
                    ready_for.as_micros()
                ));
            }
            EventKind::QuantumExpired { tid } => {
                r.kind = "quantum_expired";
                r.tid = Some(tid.as_u32());
            }
            EventKind::MlEnter {
                tid,
                monitor,
                contended,
            } => {
                r.kind = "ml_enter";
                r.tid = Some(tid.as_u32());
                r.monitor = Some(monitor.as_u32());
                r.detail = contended.then(|| "contended".to_string());
            }
            EventKind::MlAcquired { tid, monitor } => {
                r.kind = "ml_acquired";
                r.tid = Some(tid.as_u32());
                r.monitor = Some(monitor.as_u32());
            }
            EventKind::MlExit { tid, monitor } => {
                r.kind = "ml_exit";
                r.tid = Some(tid.as_u32());
                r.monitor = Some(monitor.as_u32());
            }
            EventKind::CvWait { tid, cv } => {
                r.kind = "cv_wait";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
            }
            EventKind::CvWake { tid, cv, outcome } => {
                r.kind = "cv_wake";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
                r.detail = Some(format!("{outcome:?}"));
            }
            EventKind::Notify { tid, cv, woken } => {
                r.kind = "notify";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
                r.other = woken.map(|t| t.as_u32());
            }
            EventKind::Broadcast { tid, cv, woken } => {
                r.kind = "broadcast";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
                r.detail = Some(format!("woken={woken}"));
            }
            EventKind::SpuriousLockConflict { tid, monitor } => {
                r.kind = "spurious_lock_conflict";
                r.tid = Some(tid.as_u32());
                r.monitor = Some(monitor.as_u32());
            }
            EventKind::Yield { tid, kind } => {
                r.kind = "yield";
                r.tid = Some(tid.as_u32());
                r.detail = Some(format!("{kind:?}"));
            }
            EventKind::SetPriority { tid, priority } => {
                r.kind = "set_priority";
                r.tid = Some(tid.as_u32());
                r.detail = Some(format!("prio={priority}"));
            }
            EventKind::Sleep { tid, until } => {
                r.kind = "sleep";
                r.tid = Some(tid.as_u32());
                r.detail = Some(format!("until={}", until.as_micros()));
            }
            EventKind::DaemonDonation { target } => {
                r.kind = "daemon_donation";
                r.other = Some(target.as_u32());
            }
            EventKind::ForkBlocked { tid } => {
                r.kind = "fork_blocked";
                r.tid = Some(tid.as_u32());
            }
            EventKind::ForkFailed { tid } => {
                r.kind = "fork_failed";
                r.tid = Some(tid.as_u32());
            }
            EventKind::MetalockStall {
                tid,
                monitor,
                holder,
            } => {
                r.kind = "metalock_stall";
                r.tid = Some(tid.as_u32());
                r.monitor = Some(monitor.as_u32());
                r.other = Some(holder.as_u32());
            }
            EventKind::SpuriousWakeup { tid, cv } => {
                r.kind = "spurious_wakeup";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
            }
            EventKind::NotifyDropped { tid, cv } => {
                r.kind = "notify_dropped";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
            }
            EventKind::NotifyDuplicated { tid, cv, extra } => {
                r.kind = "notify_duplicated";
                r.tid = Some(tid.as_u32());
                r.cv = Some(cv.as_u32());
                r.other = Some(extra.as_u32());
            }
            EventKind::ChaosStall { tid, until } => {
                r.kind = "chaos_stall";
                r.tid = Some(tid.as_u32());
                r.detail = Some(format!("until={}", until.as_micros()));
            }
            EventKind::ChaosForkFail { tid } => {
                r.kind = "chaos_fork_fail";
                r.tid = Some(tid.as_u32());
            }
            EventKind::JoinBlocked { joiner, target } => {
                r.kind = "join_blocked";
                r.tid = Some(joiner.as_u32());
                r.other = Some(target.as_u32());
            }
        }
        r
    }
}

/// Writes events as JSON Lines (one JSON object per line).
pub fn write_jsonl<'a, W: Write>(
    events: impl IntoIterator<Item = &'a Event>,
    mut w: W,
) -> std::io::Result<usize> {
    let mut n = 0;
    for ev in events {
        let line = EventRecord::from(ev).to_json();
        writeln!(w, "{line}")?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{Priority, ThreadId};

    fn ev(kind: EventKind) -> Event {
        Event {
            t: pcr::SimTime::from_micros(123),
            kind,
        }
    }

    #[test]
    fn every_kind_serializes() {
        let t0 = ThreadId::from_u32(0);
        let samples = vec![
            ev(EventKind::Fork {
                parent: Some(t0),
                child: ThreadId::from_u32(1),
                priority: Priority::DEFAULT,
                generation: 1,
            }),
            ev(EventKind::Exit {
                tid: t0,
                panicked: true,
            }),
            ev(EventKind::Switch {
                from: None,
                to: t0,
                to_priority: Priority::of(6),
                ready_for: pcr::micros(7),
            }),
            ev(EventKind::Yield {
                tid: t0,
                kind: pcr::YieldKind::ButNotToMe,
            }),
            ev(EventKind::DaemonDonation { target: t0 }),
        ];
        let mut buf = Vec::new();
        let n = write_jsonl(&samples, &mut buf).unwrap();
        assert_eq!(n, samples.len());
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), samples.len());
        for line in text.lines() {
            assert!(line.starts_with("{\"t_us\":123,\"kind\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"fork\""));
        assert!(text.contains("panicked"));
        assert!(text.contains("ButNotToMe"));
    }

    #[test]
    fn jsonl_round_trips_arbitrary_detail_payloads() {
        // Details with quotes, backslashes, newlines, and control bytes
        // must survive write → parse unchanged (the Json escaper is the
        // only thing between them and the wire).
        let nasty = "quote=\" backslash=\\ newline=\n tab=\t nul=\u{1} unicode=ü";
        let record = EventRecord {
            t_us: 42,
            kind: "switch",
            tid: Some(1),
            other: Some(2),
            monitor: None,
            cv: None,
            detail: Some(nasty.to_string()),
        };
        let line = record.to_json().to_string();
        let back = OwnedEventRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(back.detail.as_deref(), Some(nasty));
        assert_eq!(back.t_us, 42);
        assert_eq!(back.kind, "switch");
        assert_eq!((back.tid, back.other), (Some(1), Some(2)));
        assert_eq!((back.monitor, back.cv), (None, None));
    }

    #[test]
    fn end_to_end_jsonl_from_a_run() {
        use pcr::{millis, RunLimit, Sim, SimConfig, VecSink};
        let mut sim = Sim::new(SimConfig::default());
        sim.set_sink(Box::new(VecSink::default()));
        let _ = sim.fork_root("t", Priority::DEFAULT, |ctx| ctx.work(millis(1)));
        sim.run(RunLimit::ToCompletion);
        let sink = sim.take_sink().unwrap();
        let events = sink
            .into_any()
            .downcast::<VecSink>()
            .expect("vec sink")
            .events;
        let mut buf = Vec::new();
        let n = write_jsonl(&events, &mut buf).unwrap();
        assert!(n >= 3); // fork, switch, exit at least
    }
}
