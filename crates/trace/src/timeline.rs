//! Event-history rendering — the authors' favourite instrument.
//!
//! §7: "Even after a year of looking at the same 100 millisecond event
//! histories we are seeing new things in them. To understand systems it
//! is not enough to describe how things should be; one also needs to
//! know how they are."
//!
//! [`Timeline`] collects the raw event stream and renders a window of it
//! as a per-thread ASCII history: one row per thread, one column per
//! time slot, showing who ran, who waited, and where the scheduling
//! events (forks, notifies, preemptions) landed.

use std::collections::BTreeMap;

use pcr::{Event, EventKind, SimDuration, SimTime, ThreadId, TraceSink};

/// A retained event trace with window-rendering support.
#[derive(Debug, Default)]
pub struct Timeline {
    events: Vec<Event>,
    names: BTreeMap<ThreadId, String>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers thread names (from [`pcr::Sim::threads`]) so rows are
    /// labelled; unnamed threads render as `T<n>`.
    pub fn name_threads(&mut self, infos: &[pcr::ThreadInfo]) {
        for t in infos {
            self.names.insert(t.tid, t.name.clone());
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events within `[start, start+span)`.
    pub fn window(&self, start: SimTime, span: SimDuration) -> impl Iterator<Item = &Event> {
        let end = start.saturating_add(span);
        self.events
            .iter()
            .filter(move |e| e.t >= start && e.t < end)
    }

    fn label(&self, tid: ThreadId) -> String {
        self.names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("T{}", tid.as_u32()))
    }

    /// Renders the classic 100 ms event history: one row per thread that
    /// was active in the window, `cols` slots wide. Slot glyphs:
    ///
    /// * `#` — the thread was running (dispatched) in this slot;
    /// * `f` — it forked a child; `x` — it exited;
    /// * `n` — it notified/broadcast; `w` — it began a CV wait;
    /// * `t` — a wait of its timed out; `.` — nothing recorded.
    ///
    /// A trailing per-thread event count column keeps dense rows honest.
    pub fn render(&self, start: SimTime, span: SimDuration, cols: usize) -> String {
        use std::fmt::Write as _;
        assert!(cols > 0, "need at least one column");
        let slot = SimDuration::from_micros((span.as_micros() / cols as u64).max(1));
        // Track which thread is running as of each switch event.
        let mut rows: BTreeMap<ThreadId, Vec<char>> = BTreeMap::new();
        let mut counts: BTreeMap<ThreadId, u64> = BTreeMap::new();
        let slot_of = |t: SimTime| -> usize {
            ((t.saturating_since(start).as_micros() / slot.as_micros()) as usize).min(cols - 1)
        };
        let mark = |rows: &mut BTreeMap<ThreadId, Vec<char>>, tid: ThreadId, s: usize, c: char| {
            let row = rows.entry(tid).or_insert_with(|| vec!['.'; cols]);
            // Rarer glyphs win over the running glyph.
            if row[s] == '.' || row[s] == '#' {
                row[s] = c;
            }
        };
        let mut running: Option<ThreadId> = None;
        let end = start.saturating_add(span);
        for e in &self.events {
            if e.t >= end {
                break;
            }
            // Track running even before the window so fills are right.
            if let EventKind::Switch { to, .. } = e.kind {
                if e.t >= start {
                    if let Some(prev) = running {
                        // Fill the running span up to this switch.
                        let from_slot = slot_of(e.t);
                        mark(&mut rows, prev, from_slot, '#');
                    }
                }
                running = Some(to);
            }
            if e.t < start {
                continue;
            }
            let s = slot_of(e.t);
            if let Some(r) = running {
                mark(&mut rows, r, s, '#');
            }
            let (tid, glyph) = match e.kind {
                EventKind::Fork { parent, .. } => (parent, 'f'),
                EventKind::Exit { tid, .. } => (Some(tid), 'x'),
                EventKind::Notify { tid, .. } | EventKind::Broadcast { tid, .. } => {
                    (Some(tid), 'n')
                }
                EventKind::CvWait { tid, .. } => (Some(tid), 'w'),
                EventKind::CvWake {
                    tid,
                    outcome: pcr::WaitOutcome::TimedOut,
                    ..
                } => (Some(tid), 't'),
                _ => (None, ' '),
            };
            if let Some(tid) = tid {
                mark(&mut rows, tid, s, glyph);
                *counts.entry(tid).or_default() += 1;
            }
        }
        let name_w = rows
            .keys()
            .map(|t| self.label(*t).len())
            .max()
            .unwrap_or(4)
            .min(28);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "event history {start} .. {end} ({span}, {cols} slots of {slot})"
        );
        for (tid, row) in &rows {
            let mut name = self.label(*tid);
            name.truncate(name_w);
            let line: String = row.iter().collect();
            let _ = writeln!(
                out,
                "{name:name_w$} |{line}| {:>4}",
                counts.get(tid).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "{:name_w$}  legend: #run f=fork x=exit n=notify w=wait t=timeout",
            ""
        );
        out
    }
}

impl TraceSink for Timeline {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

    fn small_world() -> (Timeline, Vec<pcr::ThreadInfo>) {
        let mut sim = Sim::new(SimConfig::default());
        sim.set_sink(Box::new(Timeline::new()));
        let m = sim.monitor("m", 0u32);
        let cv = sim.condition(&m, "cv", Some(millis(50)));
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = sim.fork_root("pinger", Priority::of(5), move |ctx| {
            for _ in 0..5 {
                ctx.sleep_precise(millis(10));
                let mut g = ctx.enter(&m2);
                g.with_mut(|v| *v += 1);
                g.notify(&cv2);
            }
        });
        let _ = sim.fork_root("waiter", Priority::of(4), move |ctx| {
            let mut g = ctx.enter(&m);
            for _ in 0..5 {
                let _ = g.wait(&cv);
            }
        });
        sim.run(RunLimit::For(secs(1)));
        let infos = sim.threads();
        let mut tl = *crate::take_collector::<Timeline>(&mut sim).unwrap();
        tl.name_threads(&infos);
        (tl, infos)
    }

    #[test]
    fn records_and_windows() {
        let (tl, _) = small_world();
        assert!(!tl.is_empty());
        let all: Vec<_> = tl.window(SimTime::ZERO, secs(1)).collect();
        assert_eq!(all.len(), tl.len());
        let none: Vec<_> = tl.window(SimTime::ZERO + secs(10), secs(1)).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn renders_named_rows_with_glyphs() {
        let (tl, _) = small_world();
        let text = tl.render(SimTime::ZERO, millis(100), 50);
        assert!(text.contains("pinger"), "{text}");
        assert!(text.contains("waiter"), "{text}");
        assert!(text.contains('n'), "notify glyph missing:\n{text}");
        assert!(text.contains('w'), "wait glyph missing:\n{text}");
        assert!(text.contains("legend"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        let tl = Timeline::new();
        let _ = tl.render(SimTime::ZERO, millis(100), 0);
    }
}
