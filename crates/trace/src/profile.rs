//! The §6.1 contention profile: per-monitor hold and wait times.
//!
//! Table 2 reports lock contention as a single fraction, but the story
//! the authors actually tell in §6.1 is about *which* monitor was hot
//! and *why*: "a single monitor lock protecting the free list" showed up
//! only once they could attribute contended entries, hold times, and
//! wait times to individual locks. [`ContentionProfiler`] rebuilds that
//! table from the event stream:
//!
//! * a **hold** runs from an uncontended [`pcr::EventKind::MlEnter`] (or
//!   an [`pcr::EventKind::MlAcquired`] grant) to the matching
//!   [`pcr::EventKind::MlExit`] — or to a [`pcr::EventKind::CvWait`],
//!   which releases the monitor;
//! * a **wait** runs from a contended `MlEnter` to the `MlAcquired`
//!   grant.

use std::collections::BTreeMap;

use pcr::{Event, EventKind, SimDuration, SimTime, TraceSink};

/// Aggregated lock statistics for one monitor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorProfile {
    /// Total entries.
    pub enters: u64,
    /// Entries that found the mutex held (the §6.1 conflict count).
    pub contended: u64,
    /// Summed time the mutex was held.
    pub total_hold: SimDuration,
    /// Longest single hold.
    pub max_hold: SimDuration,
    /// Summed time entries spent queued for the mutex.
    pub total_wait: SimDuration,
    /// Longest single queued wait.
    pub max_wait: SimDuration,
}

impl MonitorProfile {
    /// Fraction of entries that were contended.
    pub fn contention_fraction(&self) -> f64 {
        if self.enters == 0 {
            0.0
        } else {
            self.contended as f64 / self.enters as f64
        }
    }

    /// Mean hold time per entry, if any entry completed.
    pub fn mean_hold(&self) -> Option<SimDuration> {
        self.total_hold
            .as_micros()
            .checked_div(self.enters)
            .map(SimDuration::from_micros)
    }

    /// Mean queued wait per *contended* entry.
    pub fn mean_wait(&self) -> Option<SimDuration> {
        self.total_wait
            .as_micros()
            .checked_div(self.contended)
            .map(SimDuration::from_micros)
    }
}

/// One named row of the finished profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorProfileRow {
    /// Raw monitor id.
    pub monitor: u32,
    /// The monitor's name (`m<id>` if unknown).
    pub name: String,
    /// Its counters.
    pub profile: MonitorProfile,
}

/// A [`TraceSink`] that attributes hold and wait time to monitors.
///
/// Construct with [`ContentionProfiler::new`] and, when available, give
/// it the simulator's topology ([`ContentionProfiler::set_topology`]) so
/// `CvWait` events — which release the condition's monitor without an
/// `MlExit` — close the right hold. Without the mapping the profiler
/// falls back to closing the thread's only open hold, which is exact
/// unless a thread nests monitors *and* waits on the inner one.
#[derive(Debug, Default)]
pub struct ContentionProfiler {
    per_monitor: BTreeMap<u32, MonitorProfile>,
    /// Monitor names, indexed by raw id.
    names: Vec<String>,
    /// Condition-variable → monitor mapping, indexed by raw cv id.
    cv_monitor: Vec<u32>,
    /// Open holds: `(tid, monitor) → start`.
    open_holds: BTreeMap<(u32, u32), SimTime>,
    /// Open queued waits: `(tid, monitor) → start`.
    open_waits: BTreeMap<(u32, u32), SimTime>,
}

impl ContentionProfiler {
    /// Creates an empty profiler with no topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs monitor names and the cv → monitor mapping, both indexed
    /// by raw id (from [`pcr::Sim::monitor_names`] and
    /// [`pcr::Sim::condition_info`]).
    pub fn set_topology(&mut self, monitor_names: Vec<String>, cv_monitor: Vec<u32>) {
        self.names = monitor_names;
        self.cv_monitor = cv_monitor;
    }

    /// The profile of one monitor by raw id.
    pub fn for_monitor(&self, monitor: u32) -> MonitorProfile {
        self.per_monitor.get(&monitor).copied().unwrap_or_default()
    }

    /// Finished rows, hottest first (most contended entries, then most
    /// total wait, then id); monitors never entered are omitted.
    pub fn rows(&self) -> Vec<MonitorProfileRow> {
        let mut rows: Vec<MonitorProfileRow> = self
            .per_monitor
            .iter()
            .map(|(&monitor, &profile)| MonitorProfileRow {
                monitor,
                name: self
                    .names
                    .get(monitor as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("m{monitor}")),
                profile,
            })
            .collect();
        rows.sort_by_key(|r| {
            (
                std::cmp::Reverse(r.profile.contended),
                std::cmp::Reverse(r.profile.total_wait),
                r.monitor,
            )
        });
        rows
    }

    /// Total entries across all monitors.
    pub fn total_enters(&self) -> u64 {
        self.per_monitor.values().map(|p| p.enters).sum()
    }

    /// Total contended entries across all monitors.
    pub fn total_contended(&self) -> u64 {
        self.per_monitor.values().map(|p| p.contended).sum()
    }

    fn open_hold(&mut self, tid: u32, monitor: u32, t: SimTime) {
        self.open_holds.insert((tid, monitor), t);
    }

    fn close_hold(&mut self, tid: u32, monitor: u32, t: SimTime) {
        if let Some(start) = self.open_holds.remove(&(tid, monitor)) {
            let held = t.saturating_since(start);
            let p = self.per_monitor.entry(monitor).or_default();
            p.total_hold += held;
            if held > p.max_hold {
                p.max_hold = held;
            }
        }
    }

    fn record_event(&mut self, ev: &Event) {
        let t = ev.t;
        match ev.kind {
            EventKind::MlEnter {
                tid,
                monitor,
                contended,
            } => {
                let (tid, monitor) = (tid.as_u32(), monitor.as_u32());
                let p = self.per_monitor.entry(monitor).or_default();
                p.enters += 1;
                if contended {
                    p.contended += 1;
                    self.open_waits.insert((tid, monitor), t);
                } else {
                    self.open_hold(tid, monitor, t);
                }
            }
            EventKind::MlAcquired { tid, monitor } => {
                let (tid, monitor) = (tid.as_u32(), monitor.as_u32());
                if let Some(start) = self.open_waits.remove(&(tid, monitor)) {
                    let waited = t.saturating_since(start);
                    let p = self.per_monitor.entry(monitor).or_default();
                    p.total_wait += waited;
                    if waited > p.max_wait {
                        p.max_wait = waited;
                    }
                }
                // A CV reacquire grant has no contended MlEnter; either
                // way the hold starts at the grant.
                self.open_hold(tid, monitor, t);
            }
            EventKind::MlExit { tid, monitor } => {
                self.close_hold(tid.as_u32(), monitor.as_u32(), t);
            }
            EventKind::CvWait { tid, cv } => {
                // WAIT releases the condition's monitor without MlExit.
                let tid = tid.as_u32();
                if let Some(&monitor) = self.cv_monitor.get(cv.as_u32() as usize) {
                    self.close_hold(tid, monitor, t);
                } else {
                    // No topology: close the thread's only open hold.
                    let mut open = self.open_holds.range((tid, 0)..=(tid, u32::MAX));
                    if let (Some((&(_, monitor), _)), None) = (open.next(), open.next()) {
                        self.close_hold(tid, monitor, t);
                    }
                }
            }
            _ => {}
        }
    }
}

impl TraceSink for ContentionProfiler {
    fn record(&mut self, ev: &Event) {
        self.record_event(ev);
    }

    fn subscriptions(&self) -> pcr::EventMask {
        use pcr::{CondId, MonitorId, ThreadId};
        let tid = ThreadId::from_u32(0);
        let monitor = MonitorId::from_u32(0);
        let probe = [
            EventKind::MlEnter {
                tid,
                monitor,
                contended: false,
            },
            EventKind::MlAcquired { tid, monitor },
            EventKind::MlExit { tid, monitor },
            EventKind::CvWait {
                tid,
                cv: CondId::from_u32(0),
            },
        ];
        probe
            .iter()
            .fold(pcr::EventMask::EMPTY, |m, k| m.union(pcr::EventMask::of(k)))
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

    fn contended_world() -> (Sim, u32, u32) {
        let mut sim = Sim::new(SimConfig::default());
        let hot = sim.monitor("hot", 0u32);
        let cold = sim.monitor("cold", 0u32);
        let (hot_id, cold_id) = (hot.id().as_u32(), cold.id().as_u32());
        let mut prof = ContentionProfiler::new();
        prof.set_topology(
            sim.monitor_names(),
            sim.condition_info()
                .iter()
                .map(|(_, m)| m.as_u32())
                .collect(),
        );
        sim.set_sink(Box::new(prof));
        for i in 0..2 {
            let hot = hot.clone();
            let cold = cold.clone();
            let _ = sim.fork_root(&format!("t{i}"), Priority::DEFAULT, move |ctx| {
                for _ in 0..5 {
                    let mut g = ctx.enter(&hot);
                    ctx.sleep_precise(millis(2)); // threadlint: allow(blocking-call-in-monitor) -- hold across a block.
                    g.with_mut(|v| *v += 1);
                    drop(g);
                    let mut c = ctx.enter(&cold);
                    c.with_mut(|v| *v += 1);
                }
            });
        }
        sim.run(RunLimit::For(secs(5)));
        (sim, hot_id, cold_id)
    }

    #[test]
    fn profiles_hold_and_wait_time() {
        let (mut sim, hot_id, cold_id) = contended_world();
        let prof = crate::take_collector::<ContentionProfiler>(&mut sim).unwrap();
        let hot = prof.for_monitor(hot_id);
        assert!(hot.contended > 0, "hot monitor never contended");
        // Each hold spans the 2 ms sleep, so hold and wait time are both
        // in the milliseconds.
        assert!(hot.total_hold >= millis(2) * hot.enters);
        assert!(hot.max_hold >= millis(2));
        assert!(hot.total_wait >= millis(1), "wait = {:?}", hot.total_wait);
        assert!(hot.max_wait >= millis(1));
        assert!(hot.mean_wait().unwrap() >= millis(1));
        let cold = prof.for_monitor(cold_id);
        assert_eq!(cold.contended, 0);
        assert_eq!(cold.total_wait, SimDuration::ZERO);
        assert!(cold.total_hold < millis(1), "cold held too long");
        // Rows come hottest-first with real names.
        let rows = prof.rows();
        assert_eq!(rows[0].name, "hot");
        assert!(rows[0].profile.contention_fraction() > 0.0);
    }

    #[test]
    fn cv_wait_closes_the_hold() {
        let mut sim = Sim::new(SimConfig::default());
        let m = sim.monitor("m", 0u32);
        let cv = sim.condition(&m, "cv", Some(millis(10)));
        let mid = m.id().as_u32();
        let mut prof = ContentionProfiler::new();
        prof.set_topology(
            sim.monitor_names(),
            sim.condition_info()
                .iter()
                .map(|(_, mon)| mon.as_u32())
                .collect(),
        );
        sim.set_sink(Box::new(prof));
        let _ = sim.fork_root("waiter", Priority::DEFAULT, move |ctx| {
            let mut g = ctx.enter(&m);
            let _ = g.wait(&cv); // Times out after 10 ms.
        });
        sim.run(RunLimit::ToCompletion);
        let prof = crate::take_collector::<ContentionProfiler>(&mut sim).unwrap();
        let p = prof.for_monitor(mid);
        // The 10 ms spent waiting must NOT count as hold time.
        assert!(p.total_hold < millis(2), "hold = {:?}", p.total_hold);
        assert_eq!(p.contended, 0);
    }

    #[test]
    fn empty_profiler_is_sane() {
        let p = ContentionProfiler::new();
        assert_eq!(p.total_enters(), 0);
        assert!(p.rows().is_empty());
        assert_eq!(p.for_monitor(3).mean_hold(), None);
        assert_eq!(p.for_monitor(3).mean_wait(), None);
    }
}
