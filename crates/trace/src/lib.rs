//! # threadstudy-trace — the measurement apparatus
//!
//! Rebuilds the instrumentation the paper's authors used on PCR: the
//! runtime ([`pcr`]) emits a microsecond-resolution event stream; this
//! crate provides the collectors that turn it into the paper's figures
//! and tables:
//!
//! * [`IntervalCollector`] / [`IntervalHistogram`] — execution-interval
//!   distributions (the §3 bimodal 3 ms / 45 ms shape);
//! * [`GenealogyCollector`] — fork parentage, generations, lifetimes
//!   (eternal / worker / transient classification);
//! * [`BenchmarkRates`] — the per-benchmark rows of Tables 1–3;
//! * [`ContentionProfiler`] — the §6.1 per-monitor hold/wait profile;
//! * [`Table`] — text/Markdown rendering shaped like the paper's tables;
//! * [`Timeline`] — the §7 "100 millisecond event history" as ASCII;
//! * [`write_jsonl`] — JSON Lines export of the raw event stream;
//! * [`export::chrome`] — Chrome trace-event / Perfetto export;
//! * [`diff`] — aligning and diffing two exported runs.
//!
//! See `docs/OBSERVABILITY.md` at the repo root for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contention;
pub mod diff;
pub mod export;
mod genealogy;
mod intervals;
mod json;
mod profile;
mod rates;
mod tables;
mod timeline;

pub use contention::{ContentionCollector, MonitorContention};
pub use diff::{chaos_event_for_fault, diff_runs, parse_jsonl, DiffReport, CHAOS_KINDS};
pub use export::chrome::{chrome_trace, write_chrome, TraceLabels};
pub use export::{write_jsonl, EventRecord, OwnedEventRecord};
pub use genealogy::{GenealogyCollector, LifetimeClass};
pub use intervals::{IntervalCollector, IntervalHistogram};
pub use json::Json;
pub use profile::{ContentionProfiler, MonitorProfile, MonitorProfileRow};
pub use rates::BenchmarkRates;
pub use tables::{
    contention_table, f0, f1, hazard_table, latency_table, pct, thread_table, Align, Table,
};
pub use timeline::Timeline;

use pcr::{Event, TraceSink};

/// The standard full collector: intervals + genealogy + the §6.1
/// contention profile in one sink.
#[derive(Debug, Default)]
pub struct Collector {
    /// Execution-interval histogram builder.
    pub intervals: IntervalCollector,
    /// Fork genealogy and lifetimes.
    pub genealogy: GenealogyCollector,
    /// Per-monitor hold/wait profile.
    pub contention: ContentionProfiler,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector primed with `sim`'s monitor names and cv → monitor
    /// topology, so the contention profile closes holds released by CV
    /// waits against the right monitor and renders real names.
    pub fn for_sim(sim: &pcr::Sim) -> Self {
        let mut c = Self::default();
        c.contention.set_topology(
            sim.monitor_names(),
            sim.condition_info()
                .iter()
                .map(|(_, m)| m.as_u32())
                .collect(),
        );
        c
    }
}

impl TraceSink for Collector {
    fn record(&mut self, ev: &Event) {
        self.intervals.record(ev);
        self.genealogy.record(ev);
        self.contention.record(ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Recovers a concrete collector installed with [`pcr::Sim::set_sink`].
///
/// Returns `None` if no sink is installed or it has a different type.
pub fn take_collector<C: TraceSink>(sim: &mut pcr::Sim) -> Option<Box<C>> {
    let sink = sim.take_sink()?;
    sink.into_any().downcast::<C>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

    #[test]
    fn collector_end_to_end() {
        let mut sim = Sim::new(SimConfig::default());
        sim.set_sink(Box::new(Collector::new()));
        let _ = sim.fork_root("worker", Priority::DEFAULT, |ctx| {
            for i in 0..5 {
                let h = ctx
                    .fork(&format!("t{i}"), |ctx| ctx.work(millis(2)))
                    .unwrap();
                ctx.join(h).unwrap();
                ctx.sleep(millis(10));
            }
        });
        let report = sim.run(RunLimit::For(secs(2)));
        let c = take_collector::<Collector>(&mut sim).expect("collector comes back");
        assert_eq!(c.genealogy.max_generation(), 1);
        assert_eq!(c.genealogy.thread_count(), 6);
        assert!(c.intervals.histogram().count() > 0);
        let rates = BenchmarkRates::from_stats("test", sim.stats(), report.elapsed);
        assert!(rates.forks_per_sec > 0.0);
    }

    #[test]
    fn take_collector_wrong_type_returns_none() {
        let mut sim = Sim::new(SimConfig::default());
        sim.set_sink(Box::new(pcr::VecSink::default()));
        assert!(take_collector::<Collector>(&mut sim).is_none());
    }

    #[test]
    fn take_collector_no_sink_returns_none() {
        let mut sim = Sim::new(SimConfig::default());
        assert!(take_collector::<Collector>(&mut sim).is_none());
    }
}
