//! Execution-interval statistics (paper §3).
//!
//! An *execution interval* is the length of time between thread switches.
//! The paper reports a bimodal distribution: a peak at about 3 ms (75 % of
//! Cedar intervals fall in 0–5 ms) from eternal and transient threads that
//! run briefly and block, and a second peak at 45–50 ms from threads that
//! exhaust the 50 ms timeslice — and although most intervals are short,
//! the 45–50 ms intervals carry 20–50 % (Cedar) / 30–80 % (GVX) of the
//! total execution time.

use pcr::{SimDuration, SimTime};

/// Histogram of execution-interval lengths with fixed-width buckets.
#[derive(Clone, Debug)]
pub struct IntervalHistogram {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    /// Sum of interval lengths per bucket (for CPU-weighted statistics).
    bucket_time: Vec<SimDuration>,
    count: u64,
    total: SimDuration,
}

impl IntervalHistogram {
    /// Creates a histogram with the given bucket width covering
    /// `0..bucket_width * buckets`; longer intervals land in the final
    /// overflow bucket.
    pub fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(
            buckets >= 2,
            "need at least one regular and one overflow bucket"
        );
        IntervalHistogram {
            bucket_width,
            buckets: vec![0; buckets],
            bucket_time: vec![SimDuration::ZERO; buckets],
            count: 0,
            total: SimDuration::ZERO,
        }
    }

    /// A histogram matching the paper's plots: 1 ms buckets up to 60 ms.
    pub fn paper_default() -> Self {
        IntervalHistogram::new(pcr::millis(1), 61)
    }

    /// Records one execution interval.
    pub fn record(&mut self, interval: SimDuration) {
        let idx = ((interval.as_micros() / self.bucket_width.as_micros()) as usize)
            .min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.bucket_time[idx] += interval;
        self.count += 1;
        self.total += interval;
    }

    /// Number of intervals recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total execution time across all intervals.
    pub fn total_time(&self) -> SimDuration {
        self.total
    }

    /// Fraction (by count) of intervals in `[lo, hi)`.
    pub fn fraction_between(&self, lo: SimDuration, hi: SimDuration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let in_range: u64 = self
            .iter()
            .filter(|(start, _, _)| *start >= lo && *start < hi)
            .map(|(_, _, n)| n)
            .sum();
        in_range as f64 / self.count as f64
    }

    /// Fraction (by accumulated time) of total execution time contributed
    /// by intervals in `[lo, hi)` — the paper's "between 20 % and 50 % of
    /// the total execution time is accumulated by threads running for
    /// periods of 45 to 50 ms".
    pub fn time_fraction_between(&self, lo: SimDuration, hi: SimDuration) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        let in_range: SimDuration = self
            .iter()
            .filter(|(start, _, _)| *start >= lo && *start < hi)
            .map(|(_, time, _)| time)
            .sum();
        in_range.as_micros() as f64 / self.total.as_micros() as f64
    }

    /// The bucket start with the most intervals at or above `from`
    /// (to find the second mode past the short-interval peak).
    pub fn mode_at_or_above(&self, from: SimDuration) -> Option<SimDuration> {
        let start_idx = (from.as_micros() / self.bucket_width.as_micros()) as usize;
        self.buckets
            .iter()
            .enumerate()
            .skip(start_idx)
            .max_by_key(|(_, &n)| n)
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| self.bucket_width * i as u64)
    }

    /// Iterates `(bucket_start, bucket_count_time, count)` triples.
    fn iter(&self) -> impl Iterator<Item = (SimDuration, SimDuration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &n)| (self.bucket_width * i as u64, self.bucket_time[i], n))
    }

    /// Renders the histogram rows: `(bucket_start_ms, count, pct, time_pct)`.
    pub fn rows(&self) -> Vec<(u64, u64, f64, f64)> {
        self.iter()
            .map(|(start, time, n)| {
                let pct = if self.count == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / self.count as f64
                };
                let tpct = if self.total.is_zero() {
                    0.0
                } else {
                    100.0 * time.as_micros() as f64 / self.total.as_micros() as f64
                };
                (start.as_millis(), n, pct, tpct)
            })
            .collect()
    }
}

/// Builds an [`IntervalHistogram`] from the runtime's event stream.
///
/// Install it as (part of) a trace sink; it measures the time between
/// consecutive `Switch` events, attributing each interval to the thread
/// being switched away from.
#[derive(Debug)]
pub struct IntervalCollector {
    hist: IntervalHistogram,
    last_switch: Option<SimTime>,
}

impl IntervalCollector {
    /// Creates a collector with the paper's default bucketing.
    pub fn new() -> Self {
        IntervalCollector {
            hist: IntervalHistogram::paper_default(),
            last_switch: None,
        }
    }

    /// The histogram accumulated so far.
    pub fn histogram(&self) -> &IntervalHistogram {
        &self.hist
    }

    /// Consumes the collector, returning its histogram.
    pub fn into_histogram(self) -> IntervalHistogram {
        self.hist
    }
}

impl Default for IntervalCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl pcr::TraceSink for IntervalCollector {
    fn record(&mut self, ev: &pcr::Event) {
        if let pcr::EventKind::Switch { .. } = ev.kind {
            if let Some(prev) = self.last_switch {
                self.hist.record(ev.t.saturating_since(prev));
            }
            self.last_switch = Some(ev.t);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{micros, millis};

    #[test]
    fn records_into_correct_buckets() {
        let mut h = IntervalHistogram::new(millis(1), 61);
        h.record(micros(500)); // bucket 0
        h.record(micros(1500)); // bucket 1
        h.record(millis(45)); // bucket 45
        h.record(millis(500)); // overflow bucket 60
        assert_eq!(h.count(), 4);
        let rows = h.rows();
        assert_eq!(rows[0].1, 1);
        assert_eq!(rows[1].1, 1);
        assert_eq!(rows[45].1, 1);
        assert_eq!(rows[60].1, 1);
    }

    #[test]
    fn fraction_between_counts() {
        let mut h = IntervalHistogram::new(millis(1), 61);
        for _ in 0..3 {
            h.record(millis(2));
        }
        h.record(millis(46));
        assert!((h.fraction_between(millis(0), millis(5)) - 0.75).abs() < 1e-9);
        assert!((h.fraction_between(millis(45), millis(50)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn time_fraction_weights_by_duration() {
        let mut h = IntervalHistogram::new(millis(1), 61);
        // 5 short intervals of 1ms (5ms) + one 45ms interval (45ms).
        for _ in 0..5 {
            h.record(millis(1));
        }
        h.record(millis(45));
        let f = h.time_fraction_between(millis(45), millis(50));
        assert!((f - 0.9).abs() < 1e-9, "f = {f}");
    }

    #[test]
    fn mode_detection() {
        let mut h = IntervalHistogram::new(millis(1), 61);
        for _ in 0..10 {
            h.record(millis(3));
        }
        for _ in 0..7 {
            h.record(millis(45));
        }
        assert_eq!(h.mode_at_or_above(millis(0)), Some(millis(3)));
        assert_eq!(h.mode_at_or_above(millis(10)), Some(millis(45)));
    }

    #[test]
    fn collector_measures_switch_gaps() {
        use pcr::TraceSink;
        let mut c = IntervalCollector::new();
        let mk = |t_us: u64| pcr::Event {
            t: pcr::SimTime::from_micros(t_us),
            kind: pcr::EventKind::Switch {
                from: None,
                to: pcr::ThreadId::from_u32(0),
                to_priority: pcr::Priority::DEFAULT,
                ready_for: pcr::SimDuration::ZERO,
            },
        };
        c.record(&mk(0));
        c.record(&mk(3_000));
        c.record(&mk(48_000));
        let h = c.into_histogram();
        assert_eq!(h.count(), 2);
        assert!(h.fraction_between(millis(0), millis(5)) > 0.49);
        assert!(h.fraction_between(millis(45), millis(50)) > 0.49);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = IntervalHistogram::paper_default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.fraction_between(millis(0), millis(5)), 0.0);
        assert_eq!(h.time_fraction_between(millis(45), millis(50)), 0.0);
        assert_eq!(h.mode_at_or_above(millis(0)), None);
    }
}
