//! Comparing two runs of the simulator.
//!
//! The runtime's determinism guarantee (same seed ⇒ same event stream)
//! becomes a debugging instrument once you can *diff* runs: export two
//! JSONL traces with `repro trace --jsonl`, then `repro diff a.jsonl
//! b.jsonl` reports where they diverge. A chaos run diffed against a
//! clean run of the same seed shows exactly the injected divergences —
//! the fault kinds appear in the per-kind deltas, and the first
//! divergence pinpoints the earliest injected event.

use crate::export::OwnedEventRecord;
use std::collections::BTreeMap;

/// Event kinds that only fault injection produces; the diff names these
/// explicitly as injected fault sites.
pub const CHAOS_KINDS: [&str; 5] = [
    "spurious_wakeup",
    "notify_dropped",
    "notify_duplicated",
    "chaos_stall",
    "chaos_fork_fail",
];

/// Maps a [`pcr::FaultSiteKind`] tag (as serialized in a stored fault
/// schedule) to the trace event kind its injection emits, so a
/// schedule's decisions can be correlated against a diff's named fault
/// sites. Stall injections map via the `"stall"` pseudo-tag. Returns
/// `None` for tags that leave no dedicated event (timer jitter only
/// shifts existing timer events).
pub fn chaos_event_for_fault(tag: &str) -> Option<&'static str> {
    match tag {
        "spurious_wakeup" => Some("spurious_wakeup"),
        "drop_notify" => Some("notify_dropped"),
        "duplicate_notify" => Some("notify_duplicated"),
        "fork_fail" => Some("chaos_fork_fail"),
        "priority_change" => Some("set_priority"),
        "stall" => Some("chaos_stall"),
        _ => None,
    }
}

/// Parses a JSONL trace (one [`OwnedEventRecord`] per line, as written
/// by [`crate::write_jsonl`]). Blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<OwnedEventRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            OwnedEventRecord::from_jsonl_line(l).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// Per-event-kind occurrence counts in the two runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KindDelta {
    /// The kind tag ("switch", "spurious_wakeup", ...).
    pub kind: String,
    /// Occurrences in run A.
    pub a: u64,
    /// Occurrences in run B.
    pub b: u64,
}

impl KindDelta {
    /// Relative change from A to B, in percent (infinite when A is 0).
    pub fn pct(&self) -> f64 {
        if self.a == self.b {
            0.0
        } else if self.a == 0 {
            f64::INFINITY
        } else {
            (self.b as f64 - self.a as f64) * 100.0 / self.a as f64
        }
    }

    /// True if this kind exists in exactly one of the runs.
    pub fn one_sided(&self) -> bool {
        (self.a == 0) != (self.b == 0)
    }
}

/// The first position where the two event sequences disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Index into both event sequences.
    pub index: usize,
    /// The record run A has there (`None` if A ended).
    pub a: Option<OwnedEventRecord>,
    /// The record run B has there (`None` if B ended).
    pub b: Option<OwnedEventRecord>,
}

/// Everything [`diff_runs`] measures.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Events in run A.
    pub a_events: usize,
    /// Events in run B.
    pub b_events: usize,
    /// Kinds whose counts differ beyond the threshold, biggest relative
    /// change first. One-sided kinds (present in exactly one run) are
    /// always reported, whatever the threshold.
    pub kind_deltas: Vec<KindDelta>,
    /// Injected-fault kinds present in exactly one run, with their first
    /// occurrence — the "fault sites" a chaos-vs-clean diff must name.
    pub fault_sites: Vec<(String, OwnedEventRecord)>,
    /// Mean wakeup-to-run latency (µs) per run, from switch records.
    pub mean_latency_us: (f64, f64),
    /// Contended monitor-enter counts per run.
    pub contended_enters: (u64, u64),
    /// Where the event sequences first disagree, if they do.
    pub first_divergence: Option<Divergence>,
    /// The threshold (percent) used for count deltas.
    pub threshold_pct: f64,
}

impl DiffReport {
    /// True when the runs are identical for diff purposes: same event
    /// sequence, hence no deltas of any kind.
    pub fn is_clean(&self) -> bool {
        self.first_divergence.is_none() && self.kind_deltas.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run A: {} events; run B: {} events (threshold {}%)",
            self.a_events, self.b_events, self.threshold_pct
        );
        if self.is_clean() {
            let _ = writeln!(out, "runs are identical: no deltas");
            return out;
        }
        if let Some(d) = &self.first_divergence {
            let fmt = |r: &Option<OwnedEventRecord>| match r {
                Some(r) => {
                    let mut s = format!("t={}us kind={}", r.t_us, r.kind);
                    if let Some(d) = &r.detail {
                        s.push_str(&format!(" ({d})"));
                    }
                    s
                }
                None => "<end of run>".to_string(),
            };
            let _ = writeln!(
                out,
                "first divergence at event #{}: A {} | B {}",
                d.index,
                fmt(&d.a),
                fmt(&d.b)
            );
        }
        for (kind, first) in &self.fault_sites {
            let mut site = format!("t={}us", first.t_us);
            if let Some(tid) = first.tid {
                site.push_str(&format!(" tid={tid}"));
            }
            if let Some(cv) = first.cv {
                site.push_str(&format!(" cv={cv}"));
            }
            if let Some(m) = first.monitor {
                site.push_str(&format!(" monitor={m}"));
            }
            let _ = writeln!(out, "injected fault site: {kind} first at {site}");
        }
        for d in &self.kind_deltas {
            let pct = d.pct();
            let pct = if pct.is_finite() {
                format!("{pct:+.1}%")
            } else {
                "new".to_string()
            };
            let _ = writeln!(out, "  {:<24} {:>8} -> {:<8} ({pct})", d.kind, d.a, d.b);
        }
        let (la, lb) = self.mean_latency_us;
        let _ = writeln!(out, "mean wakeup-to-run latency: {la:.1}us -> {lb:.1}us");
        let (ca, cb) = self.contended_enters;
        let _ = writeln!(out, "contended monitor enters:   {ca} -> {cb}");
        out
    }
}

fn counts(events: &[OwnedEventRecord]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        *m.entry(e.kind.clone()).or_insert(0) += 1;
    }
    m
}

fn ready_us(r: &OwnedEventRecord) -> Option<u64> {
    let detail = r.detail.as_deref()?;
    let at = detail.find("ready_us=")?;
    let rest = &detail[at + "ready_us=".len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn mean_latency(events: &[OwnedEventRecord]) -> f64 {
    let waits: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "switch")
        .filter_map(ready_us)
        .collect();
    if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    }
}

fn contended(events: &[OwnedEventRecord]) -> u64 {
    events
        .iter()
        .filter(|e| e.kind == "ml_enter" && e.detail.as_deref() == Some("contended"))
        .count() as u64
}

/// Aligns two runs by event sequence and reports every difference:
/// per-kind count deltas beyond `threshold_pct`, injected-fault sites,
/// rate/latency/contention changes, and the first sequence divergence.
///
/// Two identical-seed clean runs produce a report whose
/// [`DiffReport::is_clean`] is true; a chaos run diffed against a clean
/// run names each injected fault kind in [`DiffReport::fault_sites`].
///
/// ```
/// use trace::diff::{diff_runs, parse_jsonl};
///
/// let clean = r#"{"t_us":10,"kind":"switch","other":1,"detail":"prio=4 ready_us=3"}"#;
/// let chaos = r#"{"t_us":10,"kind":"switch","other":1,"detail":"prio=4 ready_us=3"}
/// {"t_us":20,"kind":"spurious_wakeup","tid":2,"cv":0}"#;
/// let a = parse_jsonl(clean).unwrap();
/// let b = parse_jsonl(chaos).unwrap();
///
/// let report = diff_runs(&a, &a, 1.0);
/// assert!(report.is_clean());
///
/// let report = diff_runs(&a, &b, 1.0);
/// assert!(!report.is_clean());
/// assert_eq!(report.fault_sites[0].0, "spurious_wakeup");
/// ```
pub fn diff_runs(a: &[OwnedEventRecord], b: &[OwnedEventRecord], threshold_pct: f64) -> DiffReport {
    let ca = counts(a);
    let cb = counts(b);
    let mut kinds: Vec<&String> = ca.keys().chain(cb.keys()).collect();
    kinds.sort();
    kinds.dedup();
    let mut kind_deltas: Vec<KindDelta> = kinds
        .into_iter()
        .map(|k| KindDelta {
            kind: k.clone(),
            a: ca.get(k).copied().unwrap_or(0),
            b: cb.get(k).copied().unwrap_or(0),
        })
        .filter(|d| d.one_sided() || d.pct().abs() > threshold_pct)
        .collect();
    kind_deltas.sort_by(|x, y| {
        y.pct()
            .abs()
            .total_cmp(&x.pct().abs())
            .then_with(|| x.kind.cmp(&y.kind))
    });

    let fault_sites: Vec<(String, OwnedEventRecord)> = CHAOS_KINDS
        .iter()
        .filter(|&&k| (ca.contains_key(k)) != (cb.contains_key(k)))
        .filter_map(|&k| {
            a.iter()
                .chain(b.iter())
                .find(|e| e.kind == k)
                .map(|e| (k.to_string(), e.clone()))
        })
        .collect();

    let first_divergence = (0..a.len().max(b.len()))
        .find(|&i| a.get(i) != b.get(i))
        .map(|index| Divergence {
            index,
            a: a.get(index).cloned(),
            b: b.get(index).cloned(),
        });

    DiffReport {
        a_events: a.len(),
        b_events: b.len(),
        kind_deltas,
        fault_sites,
        mean_latency_us: (mean_latency(a), mean_latency(b)),
        contended_enters: (contended(a), contended(b)),
        first_divergence,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, kind: &str) -> OwnedEventRecord {
        OwnedEventRecord {
            t_us: t,
            kind: kind.to_string(),
            tid: Some(1),
            other: None,
            monitor: None,
            cv: None,
            detail: None,
        }
    }

    #[test]
    fn identical_runs_are_clean() {
        let a = vec![rec(1, "fork"), rec(2, "switch")];
        let r = diff_runs(&a, &a.clone(), 5.0);
        assert!(r.is_clean());
        assert!(r.render().contains("identical"));
    }

    #[test]
    fn count_threshold_filters_small_deltas() {
        let a: Vec<_> = (0..100).map(|i| rec(i, "switch")).collect();
        let mut b = a.clone();
        b.push(rec(200, "switch")); // +1%: below a 5% threshold.
        let r = diff_runs(&a, &b, 5.0);
        assert!(r.kind_deltas.is_empty());
        // The sequences still diverge (B has an extra tail event).
        assert_eq!(r.first_divergence.as_ref().unwrap().index, 100);
        assert!(!r.is_clean());
        let r = diff_runs(&a, &b, 0.5);
        assert_eq!(r.kind_deltas.len(), 1);
        assert_eq!((r.kind_deltas[0].a, r.kind_deltas[0].b), (100, 101));
    }

    #[test]
    fn chaos_kinds_are_named_as_fault_sites() {
        let a = vec![rec(1, "switch")];
        let mut b = a.clone();
        let mut fault = rec(7, "notify_dropped");
        fault.cv = Some(3);
        b.push(fault);
        let r = diff_runs(&a, &b, 50.0);
        assert_eq!(r.fault_sites.len(), 1);
        assert_eq!(r.fault_sites[0].0, "notify_dropped");
        assert_eq!(r.fault_sites[0].1.t_us, 7);
        let text = r.render();
        assert!(
            text.contains("injected fault site: notify_dropped first at t=7us tid=1 cv=3"),
            "{text}"
        );
    }

    #[test]
    fn latency_and_contention_are_compared() {
        let mut sa = rec(1, "switch");
        sa.detail = Some("prio=4 ready_us=10".to_string());
        let mut sb = rec(1, "switch");
        sb.detail = Some("prio=4 ready_us=30".to_string());
        let mut ma = rec(2, "ml_enter");
        ma.detail = Some("contended".to_string());
        let a = vec![sa, ma];
        let b = vec![sb];
        let r = diff_runs(&a, &b, 1.0);
        assert_eq!(r.mean_latency_us, (10.0, 30.0));
        assert_eq!(r.contended_enters, (1, 0));
    }

    #[test]
    fn parse_jsonl_reports_the_bad_line() {
        let err = parse_jsonl("{\"t_us\":1,\"kind\":\"fork\"}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn fault_tags_map_onto_chaos_event_kinds() {
        // Every schedule decision kind except timer jitter (which only
        // shifts existing timer events) maps to a trace event kind.
        // All but priority_change map to a chaos-exclusive CHAOS_KINDS
        // entry; PCT priority changes ride the ordinary set_priority
        // event, which ctx.set_priority emits too.
        for kind in pcr::FaultSiteKind::ALL {
            let mapped = chaos_event_for_fault(kind.tag());
            match kind {
                pcr::FaultSiteKind::TimerJitter => assert_eq!(mapped, None),
                pcr::FaultSiteKind::PriorityChange => {
                    assert_eq!(mapped, Some("set_priority"));
                }
                _ => {
                    let event = mapped.unwrap_or_else(|| panic!("{} unmapped", kind.tag()));
                    assert!(CHAOS_KINDS.contains(&event), "{event} not a chaos kind");
                }
            }
        }
        assert_eq!(chaos_event_for_fault("stall"), Some("chaos_stall"));
        assert_eq!(chaos_event_for_fault("bogus"), None);
    }
}
