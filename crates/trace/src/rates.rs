//! Per-benchmark rate summaries — the rows of the paper's Tables 1–3.

use pcr::{SimDuration, SimStats};

use crate::json::Json;

/// The measurements the paper reports per benchmark:
/// Table 1 (forks/sec, switches/sec), Table 2 (waits/sec, % timeouts,
/// ML-enters/sec, contention), Table 3 (# distinct CVs and MLs).
#[derive(Clone, Debug)]
pub struct BenchmarkRates {
    /// Benchmark label, e.g. "Keyboard input".
    pub name: String,
    /// Virtual duration the rates were measured over.
    pub elapsed_secs: f64,
    /// Table 1: thread forks per second.
    pub forks_per_sec: f64,
    /// Table 1: thread switches per second.
    pub switches_per_sec: f64,
    /// Table 2: CV waits per second.
    pub waits_per_sec: f64,
    /// Table 2: percentage of waits that timed out.
    pub timeout_pct: f64,
    /// Table 2: monitor entries per second.
    pub ml_enters_per_sec: f64,
    /// §3 text: percentage of monitor entries that were contended.
    pub contention_pct: f64,
    /// Table 3: number of distinct condition variables waited on.
    pub distinct_cvs: usize,
    /// Table 3: number of distinct monitor locks entered.
    pub distinct_mls: usize,
    /// Paper §3: maximum threads concurrently existing.
    pub max_live_threads: usize,
}

impl BenchmarkRates {
    /// The rates as a JSON object (field order matches declaration).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("elapsed_secs", Json::from(self.elapsed_secs)),
            ("forks_per_sec", Json::from(self.forks_per_sec)),
            ("switches_per_sec", Json::from(self.switches_per_sec)),
            ("waits_per_sec", Json::from(self.waits_per_sec)),
            ("timeout_pct", Json::from(self.timeout_pct)),
            ("ml_enters_per_sec", Json::from(self.ml_enters_per_sec)),
            ("contention_pct", Json::from(self.contention_pct)),
            ("distinct_cvs", Json::from(self.distinct_cvs)),
            ("distinct_mls", Json::from(self.distinct_mls)),
            ("max_live_threads", Json::from(self.max_live_threads)),
        ])
    }

    /// Summarizes a run's statistics over `elapsed` virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn from_stats(name: &str, stats: &SimStats, elapsed: SimDuration) -> Self {
        let secs = elapsed.as_secs_f64();
        assert!(secs > 0.0, "rates need a positive measurement window");
        BenchmarkRates {
            name: name.to_string(),
            elapsed_secs: secs,
            forks_per_sec: stats.forks as f64 / secs,
            switches_per_sec: stats.switches as f64 / secs,
            waits_per_sec: stats.cv_waits as f64 / secs,
            timeout_pct: stats.timeout_fraction() * 100.0,
            ml_enters_per_sec: stats.ml_enters as f64 / secs,
            contention_pct: stats.contention_fraction() * 100.0,
            distinct_cvs: stats.distinct_conditions.len(),
            distinct_mls: stats.distinct_monitors.len(),
            max_live_threads: stats.max_live_threads,
        }
    }

    /// Difference of two cumulative stats snapshots, for measuring a
    /// window that excludes warm-up: `end - start` over `elapsed`.
    pub fn from_window(name: &str, start: &SimStats, end: &SimStats, elapsed: SimDuration) -> Self {
        let secs = elapsed.as_secs_f64();
        assert!(secs > 0.0, "rates need a positive measurement window");
        let d = |a: u64, b: u64| (b - a) as f64 / secs;
        let waits = end.cv_waits - start.cv_waits;
        let touts = end.cv_timeouts - start.cv_timeouts;
        let enters = end.ml_enters - start.ml_enters;
        let cont = end.ml_contended - start.ml_contended;
        BenchmarkRates {
            name: name.to_string(),
            elapsed_secs: secs,
            forks_per_sec: d(start.forks, end.forks),
            switches_per_sec: d(start.switches, end.switches),
            waits_per_sec: d(start.cv_waits, end.cv_waits),
            timeout_pct: if waits == 0 {
                0.0
            } else {
                100.0 * touts as f64 / waits as f64
            },
            ml_enters_per_sec: d(start.ml_enters, end.ml_enters),
            contention_pct: if enters == 0 {
                0.0
            } else {
                100.0 * cont as f64 / enters as f64
            },
            distinct_cvs: end.distinct_conditions.len(),
            distinct_mls: end.distinct_monitors.len(),
            max_live_threads: end.max_live_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::secs;

    fn stats(forks: u64, switches: u64, waits: u64, touts: u64, enters: u64) -> SimStats {
        SimStats {
            forks,
            switches,
            cv_waits: waits,
            cv_timeouts: touts,
            ml_enters: enters,
            ..Default::default()
        }
    }

    #[test]
    fn rates_divide_by_elapsed() {
        let s = stats(10, 1320, 1150, 820, 4140);
        let r = BenchmarkRates::from_stats("Idle", &s, secs(10));
        assert!((r.forks_per_sec - 1.0).abs() < 1e-9);
        assert!((r.switches_per_sec - 132.0).abs() < 1e-9);
        assert!((r.waits_per_sec - 115.0).abs() < 1e-9);
        assert!((r.timeout_pct - 71.3).abs() < 0.1);
        assert!((r.ml_enters_per_sec - 414.0).abs() < 1e-9);
    }

    #[test]
    fn window_subtracts_warmup() {
        let a = stats(5, 100, 50, 25, 200);
        let b = stats(15, 1420, 1200, 850, 4340);
        let r = BenchmarkRates::from_window("X", &a, &b, secs(10));
        assert!((r.forks_per_sec - 1.0).abs() < 1e-9);
        assert!((r.switches_per_sec - 132.0).abs() < 1e-9);
        assert!((r.timeout_pct - (825.0 / 1150.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive measurement window")]
    fn zero_window_panics() {
        let s = SimStats::default();
        let _ = BenchmarkRates::from_stats("bad", &s, SimDuration::ZERO);
    }
}
