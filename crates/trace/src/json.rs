//! A minimal JSON value type, serializer, and parser.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so
//! the trace and bench crates emit JSON through this hand-rolled tree:
//! insertion-ordered objects, compact `Display`, and a `pretty` renderer
//! for human-facing summary files. [`Json::parse`] is the matching
//! recursive-descent reader, used by the run-diff tool and the trace
//! validation tests to round-trip what the writers produce.

use std::fmt;

/// A JSON document node. Object keys keep insertion order so exported
/// records are stable across runs (a determinism requirement for the
/// byte-identical-trace checks).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer wider than `i64` allows.
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Parses a JSON document, rejecting trailing garbage.
    ///
    /// Numbers parse as [`Json::Int`] when they fit an `i64`, as
    /// [`Json::UInt`] for larger non-negative integers, and as
    /// [`Json::Float`] otherwise — the same split the writers use, so
    /// `parse(x.to_string()) == x` for every tree this module emits.
    ///
    /// ```
    /// use trace::Json;
    /// let v = Json::parse(r#"{"kind":"switch","t_us":123}"#).unwrap();
    /// assert_eq!(v.get("kind").and_then(Json::as_str), Some("switch"));
    /// assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(123));
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }

    /// Looks up a field of an object (`None` for other node types).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) if n >= 0 => Some(n as u64),
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// The node as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::UInt(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The node as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The node's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    let _ = write!(out, "{pad}{}: ", Escaped(k));
                    v.write_pretty(out, depth + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_char(c)?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

use std::fmt::Write as _;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.at
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Copy the longest escape-free ASCII/UTF-8 run wholesale.
            while let Some(&b) = self.bytes.get(self.at) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.at)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                char::from(other),
                                self.at
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        let s = self
            .bytes
            .get(self.at..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.at))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.at))?;
        self.at = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            ("b", Json::from("x\"y")),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn floats_and_ints_distinct() {
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn escaping_control_chars() {
        let v = Json::from("line\nbreak\ttab \u{1}");
        assert_eq!(v.to_string(), "\"line\\nbreak\\ttab \\u0001\"");
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Json::obj([("xs", Json::arr([Json::Int(1), Json::Int(2)]))]);
        let p = v.pretty();
        assert_eq!(p, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Json::from(None::<u32>), Json::Null);
        assert_eq!(Json::from(Some(3u32)).to_string(), "3");
        assert_eq!(Json::from(vec![1u64, 2]).to_string(), "[1,2]");
    }

    #[test]
    fn ordered_object_keys() {
        let mut v = Json::obj([("z", Json::Int(1))]);
        v.push("a", Json::Int(2));
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("a", Json::Int(-3)),
            ("b", Json::from("x\"y\\z\nnl \u{1} ü")),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
            ("d", Json::Float(1.5)),
            ("e", Json::UInt(u64::MAX)),
            ("f", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"n":7,"s":"hi","ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""a\u00fcb\ud83d\ude00c""#).unwrap(),
            Json::from("aüb\u{1F600}c")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\"}",
            "1 2",
            "{}x",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
