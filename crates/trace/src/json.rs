//! A minimal JSON value type and serializer.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so
//! the trace and bench crates emit JSON through this hand-rolled tree:
//! insertion-ordered objects, compact `Display`, and a `pretty` renderer
//! for human-facing summary files. Only what export needs — no parser.

use std::fmt;

/// A JSON document node. Object keys keep insertion order so exported
/// records are stable across runs (a determinism requirement for the
/// byte-identical-trace checks).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer wider than `i64` allows.
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Renders with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    let _ = write!(out, "{pad}{}: ", Escaped(k));
                    v.write_pretty(out, depth + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_char(c)?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

use std::fmt::Write as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            ("b", Json::from("x\"y")),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn floats_and_ints_distinct() {
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn escaping_control_chars() {
        let v = Json::from("line\nbreak\ttab \u{1}");
        assert_eq!(v.to_string(), "\"line\\nbreak\\ttab \\u0001\"");
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Json::obj([("xs", Json::arr([Json::Int(1), Json::Int(2)]))]);
        let p = v.pretty();
        assert_eq!(p, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Json::from(None::<u32>), Json::Null);
        assert_eq!(Json::from(Some(3u32)).to_string(), "3");
        assert_eq!(Json::from(vec![1u64, 2]).to_string(), "[1,2]");
    }

    #[test]
    fn ordered_object_keys() {
        let mut v = Json::obj([("z", Json::Int(1))]);
        v.push("a", Json::Int(2));
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
