//! Chrome trace-event (Perfetto) export.
//!
//! Turns the raw event stream into the JSON object format consumed by
//! `ui.perfetto.dev` and `chrome://tracing`, making the paper's "100 ms
//! event history" (§7) something you can actually scroll:
//!
//! * **process 1 — threads**: one track per thread with an `X` span for
//!   every run slice (from [`pcr::EventKind::Switch`] to the next
//!   switch), instant markers for chaos injections and §6.1 spurious
//!   lock conflicts, and flow arrows from forker to forked and from
//!   notifier to notified;
//! * **process 2 — monitors**: one track per monitor lock, with a span
//!   for every hold (an uncontended enter or a grant, to the exit or the
//!   releasing CV wait), named after the holding thread;
//! * **process 3 — waits**: one track per thread showing what it was
//!   blocked on — `lock:<monitor>` from a contended enter to its grant,
//!   `wait:<cv>` from a CV wait to its wake. A lock wait that happens
//!   while reacquiring inside a CV wait nests properly.
//!
//! Output is fully deterministic: events are sorted by
//! `(pid, tid, ts, -dur)`, so identical runs export byte-identical
//! traces (an acceptance criterion the CLI tests pin).

use std::collections::BTreeMap;
use std::io::Write;

use pcr::{Event, EventKind, Sim, SimTime};

use crate::json::Json;

/// Display names for the ids appearing in a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceLabels {
    /// Thread names, indexed by raw thread id.
    pub threads: Vec<String>,
    /// Monitor names, indexed by raw monitor id.
    pub monitors: Vec<String>,
    /// Condition-variable names, indexed by raw cv id.
    pub conditions: Vec<String>,
}

impl TraceLabels {
    /// Collects every name from a finished simulator.
    pub fn from_sim(sim: &Sim) -> TraceLabels {
        TraceLabels {
            threads: sim.threads_iter().map(|t| t.name.to_string()).collect(),
            monitors: sim.monitor_names(),
            conditions: sim.condition_info().into_iter().map(|(n, _)| n).collect(),
        }
    }

    fn thread(&self, id: u32) -> String {
        match self.threads.get(id as usize) {
            Some(n) if !n.is_empty() => format!("{n} (t{id})"),
            _ => format!("t{id}"),
        }
    }

    fn monitor(&self, id: u32) -> String {
        match self.monitors.get(id as usize) {
            Some(n) if !n.is_empty() => n.clone(),
            _ => format!("ML{id}"),
        }
    }

    fn condition(&self, id: u32) -> String {
        match self.conditions.get(id as usize) {
            Some(n) if !n.is_empty() => n.clone(),
            _ => format!("CV{id}"),
        }
    }
}

const PID_THREADS: u32 = 1;
const PID_MONITORS: u32 = 2;
const PID_WAITS: u32 = 3;

struct SortableEvent {
    pid: u32,
    tid: u32,
    ts: u64,
    dur: u64,
    /// 0 = metadata, 1 = everything else: metadata sorts first per track.
    class: u8,
    json: Json,
}

fn span(pid: u32, tid: u32, ts: u64, end: u64, name: &str, args: Json) -> SortableEvent {
    let dur = end.saturating_sub(ts);
    SortableEvent {
        pid,
        tid,
        ts,
        dur,
        class: 1,
        json: Json::obj([
            ("name", Json::from(name)),
            ("ph", Json::from("X")),
            ("ts", Json::from(ts)),
            ("dur", Json::from(dur)),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            ("args", args),
        ]),
    }
}

fn instant(pid: u32, tid: u32, ts: u64, name: &str) -> SortableEvent {
    SortableEvent {
        pid,
        tid,
        ts,
        dur: 0,
        class: 1,
        json: Json::obj([
            ("name", Json::from(name)),
            ("ph", Json::from("i")),
            ("ts", Json::from(ts)),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            ("s", Json::from("t")),
        ]),
    }
}

fn flow(ph: &str, id: u64, name: &str, pid: u32, tid: u32, ts: u64) -> SortableEvent {
    let mut json = Json::obj([
        ("name", Json::from(name)),
        ("cat", Json::from("flow")),
        ("ph", Json::from(ph)),
        ("id", Json::from(id)),
        ("ts", Json::from(ts)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
    ]);
    if ph == "f" {
        // Bind to the enclosing slice even when ts equals its start.
        json.push("bp", Json::from("e"));
    }
    SortableEvent {
        pid,
        tid,
        ts,
        dur: 0,
        class: 1,
        json,
    }
}

fn metadata(pid: u32, tid: Option<u32>, key: &str, name: &str) -> SortableEvent {
    let mut json = Json::obj([
        ("name", Json::from(key)),
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
    ]);
    if let Some(t) = tid {
        json.push("tid", Json::from(t));
    }
    json.push("args", Json::obj([("name", Json::from(name))]));
    SortableEvent {
        pid,
        tid: tid.unwrap_or(0),
        ts: 0,
        dur: u64::MAX, // Sorts before any real event on the track.
        class: 0,
        json,
    }
}

/// Builds the Chrome trace-event document for an event stream.
///
/// The result is the object form (`{"traceEvents": [...]}`), directly
/// loadable in `ui.perfetto.dev`. Pass [`TraceLabels::from_sim`] to get
/// human-readable track names; [`TraceLabels::default`] falls back to
/// numeric ids.
///
/// ```
/// use pcr::{millis, Priority, RunLimit, Sim, SimConfig, VecSink};
/// use trace::export::chrome::{chrome_trace, TraceLabels};
///
/// let mut sim = Sim::new(SimConfig::default());
/// sim.set_sink(Box::new(VecSink::default()));
/// let _ = sim.fork_root("worker", Priority::DEFAULT, |ctx| ctx.work(millis(1)));
/// sim.run(RunLimit::ToCompletion);
/// let labels = TraceLabels::from_sim(&sim);
/// let sink = sim.take_sink().unwrap();
/// let events = sink.into_any().downcast::<VecSink>().unwrap().events;
///
/// let doc = chrome_trace(&events, &labels);
/// let spans = doc.get("traceEvents").and_then(trace::Json::as_array).unwrap();
/// assert!(spans.iter().any(|e| {
///     e.get("ph").and_then(trace::Json::as_str) == Some("X")
/// }));
/// ```
pub fn chrome_trace(events: &[Event], labels: &TraceLabels) -> Json {
    let end = events.last().map(|e| e.t).unwrap_or(SimTime::ZERO);
    let end_us = end.as_micros();
    let mut out: Vec<SortableEvent> = Vec::new();

    // -- Pass 1: run slices per thread (needed for flow-arrow targets).
    let mut slices: Vec<(u32, u64, u64, String)> = Vec::new(); // (tid, start, end, detail)
    let mut running: Option<(u32, u64, String)> = None;
    for ev in events {
        if let EventKind::Switch {
            to,
            to_priority,
            ready_for,
            ..
        } = ev.kind
        {
            let t = ev.t.as_micros();
            if let Some((tid, start, detail)) = running.take() {
                slices.push((tid, start, t, detail));
            }
            running = Some((
                to.as_u32(),
                t,
                format!("prio={to_priority} ready_us={}", ready_for.as_micros()),
            ));
        }
    }
    if let Some((tid, start, detail)) = running.take() {
        slices.push((tid, start, end_us, detail));
    }
    // Slice starts per thread, in time order, for flow-target lookup.
    let mut starts: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for &(tid, start, _, _) in &slices {
        starts.entry(tid).or_default().push(start);
    }
    let first_run_at = |tid: u32, at: u64| -> Option<u64> {
        let v = starts.get(&tid)?;
        let i = v.partition_point(|&s| s < at);
        v.get(i).copied()
    };
    for (tid, start, stop, detail) in &slices {
        out.push(span(
            PID_THREADS,
            *tid,
            *start,
            *stop,
            "run",
            Json::obj([("detail", Json::from(detail.clone()))]),
        ));
    }

    // -- Pass 2: everything else.
    let mut flow_id: u64 = 0;
    // Open monitor holds: monitor → (holder, start).
    let mut holds: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    // Open waits on the waits track: (tid, name) kept in stacks per tid.
    let mut lock_waits: BTreeMap<(u32, u32), u64> = BTreeMap::new(); // (tid, monitor) → start
    let mut cv_waits: BTreeMap<u32, (u32, u64)> = BTreeMap::new(); // tid → (cv, start)
                                                                   // cv → monitor is not in the event stream; learn holds only.
    let close_hold =
        |holds: &mut BTreeMap<u32, (u32, u64)>, out: &mut Vec<SortableEvent>, m: u32, t: u64| {
            if let Some((holder, start)) = holds.remove(&m) {
                out.push(span(
                    PID_MONITORS,
                    m,
                    start,
                    t,
                    &format!("held by {}", labels.thread(holder)),
                    Json::obj([("tid", Json::from(holder))]),
                ));
            }
        };
    for ev in events {
        let t = ev.t.as_micros();
        match ev.kind {
            EventKind::Fork { parent, child, .. } => {
                if let (Some(p), Some(target)) = (parent, first_run_at(child.as_u32(), t)) {
                    flow_id += 1;
                    out.push(flow("s", flow_id, "fork", PID_THREADS, p.as_u32(), t));
                    out.push(flow(
                        "f",
                        flow_id,
                        "fork",
                        PID_THREADS,
                        child.as_u32(),
                        target,
                    ));
                }
            }
            EventKind::Notify {
                tid,
                woken: Some(w),
                ..
            } => {
                if let Some(target) = first_run_at(w.as_u32(), t) {
                    flow_id += 1;
                    out.push(flow("s", flow_id, "notify", PID_THREADS, tid.as_u32(), t));
                    out.push(flow(
                        "f",
                        flow_id,
                        "notify",
                        PID_THREADS,
                        w.as_u32(),
                        target,
                    ));
                }
            }
            EventKind::MlEnter {
                tid,
                monitor,
                contended,
            } => {
                let (tid, m) = (tid.as_u32(), monitor.as_u32());
                if contended {
                    lock_waits.insert((tid, m), t);
                } else {
                    holds.insert(m, (tid, t));
                }
            }
            EventKind::MlAcquired { tid, monitor } => {
                let (tid, m) = (tid.as_u32(), monitor.as_u32());
                if let Some(start) = lock_waits.remove(&(tid, m)) {
                    out.push(span(
                        PID_WAITS,
                        tid,
                        start,
                        t,
                        &format!("lock:{}", labels.monitor(m)),
                        Json::obj([("monitor", Json::from(m))]),
                    ));
                }
                // The previous hold (if any) ended at the owner's release.
                close_hold(&mut holds, &mut out, m, t);
                holds.insert(m, (tid, t));
            }
            EventKind::MlExit { tid: _, monitor } => {
                close_hold(&mut holds, &mut out, monitor.as_u32(), t);
            }
            EventKind::CvWait { tid, cv } => {
                let tid = tid.as_u32();
                cv_waits.insert(tid, (cv.as_u32(), t));
                // WAIT releases the cv's monitor: close the hold owned by
                // this thread (the stream does not carry the cv→monitor
                // mapping, so find it by owner).
                let owned: Vec<u32> = holds
                    .iter()
                    .filter(|(_, &(h, _))| h == tid)
                    .map(|(&m, _)| m)
                    .collect();
                if let [m] = owned[..] {
                    close_hold(&mut holds, &mut out, m, t);
                }
            }
            EventKind::CvWake { tid, .. } => {
                let tid = tid.as_u32();
                if let Some((cv, start)) = cv_waits.remove(&tid) {
                    out.push(span(
                        PID_WAITS,
                        tid,
                        start,
                        t,
                        &format!("wait:{}", labels.condition(cv)),
                        Json::obj([("cv", Json::from(cv))]),
                    ));
                }
            }
            EventKind::SpuriousLockConflict { tid, .. } => {
                out.push(instant(
                    PID_THREADS,
                    tid.as_u32(),
                    t,
                    "spurious-lock-conflict",
                ));
            }
            EventKind::MetalockStall { tid, .. } => {
                out.push(instant(PID_THREADS, tid.as_u32(), t, "metalock-stall"));
            }
            EventKind::SpuriousWakeup { tid, .. } => {
                out.push(instant(
                    PID_THREADS,
                    tid.as_u32(),
                    t,
                    "chaos:spurious-wakeup",
                ));
            }
            EventKind::NotifyDropped { tid, .. } => {
                out.push(instant(
                    PID_THREADS,
                    tid.as_u32(),
                    t,
                    "chaos:notify-dropped",
                ));
            }
            EventKind::NotifyDuplicated { tid, .. } => {
                out.push(instant(
                    PID_THREADS,
                    tid.as_u32(),
                    t,
                    "chaos:notify-duplicated",
                ));
            }
            EventKind::ChaosStall { tid, .. } => {
                out.push(instant(PID_THREADS, tid.as_u32(), t, "chaos:stall"));
            }
            EventKind::ChaosForkFail { tid } => {
                out.push(instant(PID_THREADS, tid.as_u32(), t, "chaos:fork-fail"));
            }
            _ => {}
        }
    }
    // Close anything still open at the end of the trace.
    for (&(tid, m), &start) in &lock_waits {
        out.push(span(
            PID_WAITS,
            tid,
            start,
            end_us,
            &format!("lock:{}", labels.monitor(m)),
            Json::obj([("monitor", Json::from(m))]),
        ));
    }
    for (&tid, &(cv, start)) in &cv_waits {
        out.push(span(
            PID_WAITS,
            tid,
            start,
            end_us,
            &format!("wait:{}", labels.condition(cv)),
            Json::obj([("cv", Json::from(cv))]),
        ));
    }
    let open_holds: Vec<u32> = holds.keys().copied().collect();
    for m in open_holds {
        close_hold(&mut holds, &mut out, m, end_us);
    }

    // -- Metadata: track names.
    out.push(metadata(PID_THREADS, None, "process_name", "threads"));
    out.push(metadata(PID_MONITORS, None, "process_name", "monitors"));
    out.push(metadata(PID_WAITS, None, "process_name", "waits"));
    let mut thread_tracks: Vec<u32> = out
        .iter()
        .filter(|e| e.class == 1 && (e.pid == PID_THREADS || e.pid == PID_WAITS))
        .map(|e| e.tid)
        .collect();
    thread_tracks.sort_unstable();
    thread_tracks.dedup();
    for tid in thread_tracks {
        let name = labels.thread(tid);
        out.push(metadata(PID_THREADS, Some(tid), "thread_name", &name));
        out.push(metadata(PID_WAITS, Some(tid), "thread_name", &name));
    }
    let mut monitor_tracks: Vec<u32> = out
        .iter()
        .filter(|e| e.class == 1 && e.pid == PID_MONITORS)
        .map(|e| e.tid)
        .collect();
    monitor_tracks.sort_unstable();
    monitor_tracks.dedup();
    for m in monitor_tracks {
        out.push(metadata(
            PID_MONITORS,
            Some(m),
            "thread_name",
            &labels.monitor(m),
        ));
    }

    // Deterministic order; longer spans first at equal ts so nested
    // spans arrive parent-before-child.
    out.sort_by(|a, b| {
        (a.pid, a.tid, a.class, a.ts, std::cmp::Reverse(a.dur)).cmp(&(
            b.pid,
            b.tid,
            b.class,
            b.ts,
            std::cmp::Reverse(b.dur),
        ))
    });
    Json::obj([
        ("displayTimeUnit", Json::from("ms")),
        (
            "traceEvents",
            Json::Arr(out.into_iter().map(|e| e.json).collect()),
        ),
    ])
}

/// Writes [`chrome_trace`] output as compact JSON, one trace event per
/// line (still a single valid JSON document).
pub fn write_chrome<W: Write>(
    events: &[Event],
    labels: &TraceLabels,
    mut w: W,
) -> std::io::Result<()> {
    let doc = chrome_trace(events, labels);
    let (unit, items) = match (doc.get("displayTimeUnit"), doc.get("traceEvents")) {
        (Some(u), Some(Json::Arr(items))) => (u.clone(), items),
        _ => unreachable!("chrome_trace always returns the object form"),
    };
    writeln!(w, "{{\"displayTimeUnit\":{unit},\"traceEvents\":[")?;
    for (i, item) in items.iter().enumerate() {
        let sep = if i + 1 == items.len() { "" } else { "," };
        writeln!(w, "{item}{sep}")?;
    }
    writeln!(w, "]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, SimConfig, VecSink};

    fn run_world(seed: u64) -> (Vec<Event>, TraceLabels) {
        // Immediate-notify + a waiter that outranks the notifier: the
        // §6.1 shape, so the stream contains SpuriousLockConflict
        // instants alongside forks, holds, waits, and flows.
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_notify_mode(pcr::NotifyMode::Immediate);
        let mut sim = Sim::new(cfg);
        sim.set_sink(Box::new(VecSink::default()));
        let m = sim.monitor("mon", 0u32);
        let cv = sim.condition(&m, "cv", Some(millis(20)));
        let (m2, cv2) = (m.clone(), cv.clone());
        let _ = sim.fork_root("pinger", Priority::of(3), move |ctx| {
            for _ in 0..10 {
                ctx.sleep_precise(millis(5));
                let mut g = ctx.enter(&m2);
                ctx.sleep_precise(millis(1)); // threadlint: allow(blocking-call-in-monitor) -- hold across a block: contention.
                g.with_mut(|v| *v += 1);
                g.notify(&cv2);
                ctx.work(pcr::micros(50)); // Still held: the wasted trip.
                drop(g);
            }
        });
        let _ = sim.fork_root("waiter", Priority::of(6), move |ctx| {
            let mut g = ctx.enter(&m);
            for _ in 0..10 {
                let _ = g.wait(&cv);
            }
        });
        sim.run(RunLimit::For(secs(1)));
        let labels = TraceLabels::from_sim(&sim);
        let sink = sim.take_sink().unwrap();
        (
            sink.into_any().downcast::<VecSink>().unwrap().events,
            labels,
        )
    }

    fn x_spans(doc: &Json) -> Vec<(u64, u64, u64, u64)> {
        doc.get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_u64).unwrap(),
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                    e.get("ts").and_then(Json::as_u64).unwrap(),
                    e.get("dur").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn produces_all_three_processes_and_flows() {
        let (events, labels) = run_world(7);
        let doc = chrome_trace(&events, &labels);
        let spans = x_spans(&doc);
        for pid in [1, 2, 3] {
            assert!(
                spans.iter().any(|s| s.0 == pid),
                "no X span in process {pid}"
            );
        }
        let all = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        for ph in ["s", "f", "M", "i"] {
            // "i" needs chaos or a spurious conflict; this world has the
            // §6.1 conflict because the notifier holds across a block.
            assert!(
                all.iter()
                    .any(|e| e.get("ph").and_then(Json::as_str) == Some(ph)),
                "no {ph:?} event"
            );
        }
        // Flow starts and finishes pair up by id.
        let ids = |phase: &str| -> Vec<u64> {
            let mut v: Vec<u64> = all
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(phase))
                .map(|e| e.get("id").and_then(Json::as_u64).unwrap())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids("s"), ids("f"));
        assert!(!ids("s").is_empty());
    }

    #[test]
    fn spans_are_monotonic_and_nested_per_track() {
        let (events, labels) = run_world(11);
        let doc = chrome_trace(&events, &labels);
        let spans = x_spans(&doc);
        let mut last: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut open: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new(); // stack of span ends
        for (pid, tid, ts, dur) in spans {
            let track = (pid, tid);
            let prev = last.insert(track, ts).unwrap_or(0);
            assert!(ts >= prev, "track {track:?} ts went backwards");
            let stack = open.entry(track).or_default();
            while let Some(&end) = stack.last() {
                if end <= ts {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                assert!(
                    ts + dur <= end,
                    "track {track:?}: span [{ts},{}] not nested in [..{end}]",
                    ts + dur
                );
            }
            stack.push(ts + dur);
        }
    }

    #[test]
    fn export_is_deterministic() {
        let (ea, la) = run_world(42);
        let (eb, lb) = run_world(42);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_chrome(&ea, &la, &mut a).unwrap();
        write_chrome(&eb, &lb, &mut b).unwrap();
        assert_eq!(a, b, "same seed must export byte-identical traces");
        assert!(Json::parse(std::str::from_utf8(&a).unwrap()).is_ok());
    }

    #[test]
    fn empty_stream_exports_an_empty_document() {
        let doc = chrome_trace(&[], &TraceLabels::default());
        assert!(x_spans(&doc).is_empty());
        assert!(Json::parse(&doc.to_string()).is_ok());
    }
}
