//! Plain-text table rendering for the experiment harness.
//!
//! Renders aligned monospace tables (and Markdown) so `repro` can print
//! rows shaped exactly like the paper's Tables 1–4.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; the first column is left-aligned, the rest right.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as an aligned monospace table.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let fmt_row = |cells: &[String], w: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w[i].saturating_sub(c.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(c);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(c);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &w, &self.aligns));
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &w, &self.aligns));
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Renders a per-thread summary table from [`pcr::Sim::threads`] output:
/// name, priority, CPU consumed, lifecycle — the "who is doing what"
/// view the authors used alongside their event histories.
pub fn thread_table(infos: &[pcr::ThreadInfo]) -> Table {
    let mut t = Table::new("Threads", &["Thread", "Prio", "CPU", "Gen", "State"]);
    let mut sorted: Vec<&pcr::ThreadInfo> = infos.iter().collect();
    sorted.sort_by_key(|t| std::cmp::Reverse(t.cpu));
    for info in sorted {
        let state = if info.panicked {
            "panicked"
        } else if info.exited {
            "exited"
        } else {
            "alive"
        };
        t.row(vec![
            info.name.clone(),
            info.priority.to_string(),
            info.cpu.to_string(),
            info.generation.to_string(),
            state.to_string(),
        ]);
    }
    t
}

/// Renders the per-kind hazard tallies from a run as a table: one row
/// per detector plus a total, so chaos runs can surface what the
/// [`pcr::HazardMonitor`] caught next to the benchmark tables.
pub fn hazard_table(counts: &pcr::HazardCounts) -> Table {
    let mut t = Table::new("Hazards", &["Hazard", "Count"]);
    t.row(vec![
        "naked notify (§5.3)".to_string(),
        counts.naked_notifies.to_string(),
    ]);
    t.row(vec![
        "wait without re-check (§5.3)".to_string(),
        counts.wait_without_recheck.to_string(),
    ]);
    t.row(vec![
        "starvation / inversion (§6.2)".to_string(),
        counts.starvations.to_string(),
    ]);
    t.row(vec![
        "livelock (§5.2)".to_string(),
        counts.livelocks.to_string(),
    ]);
    t.row(vec![
        "spurious-conflict storm (§6.1)".to_string(),
        counts.spurious_conflict_storms.to_string(),
    ]);
    t.row(vec!["total".to_string(), counts.total().to_string()]);
    t
}

/// Renders the §6.1 per-monitor contention profile as a table, hottest
/// monitor first: how often each lock was entered, how many of those
/// entries had to queue, and the hold/wait times behind the queueing.
/// Rows come from [`crate::ContentionProfiler::rows`].
pub fn contention_table(rows: &[crate::MonitorProfileRow]) -> Table {
    let mut t = Table::new(
        "Monitor contention (§6.1)",
        &[
            "Monitor",
            "Enters",
            "Contended",
            "Cont%",
            "Mean hold µs",
            "Max hold µs",
            "Mean wait µs",
            "Max wait µs",
        ],
    );
    for r in rows {
        let p = &r.profile;
        let us = |d: Option<pcr::SimDuration>| {
            d.map_or_else(|| "-".to_string(), |d| d.as_micros().to_string())
        };
        t.row(vec![
            r.name.clone(),
            p.enters.to_string(),
            p.contended.to_string(),
            pct(p.contention_fraction() * 100.0),
            us(p.mean_hold()),
            p.max_hold.as_micros().to_string(),
            us(p.mean_wait()),
            p.max_wait.as_micros().to_string(),
        ]);
    }
    t
}

/// ASCII sparkline over the log₂-µs buckets of one priority level,
/// trimmed to the last non-empty bucket and scaled to the fullest one.
fn bucket_spark(buckets: &[u64]) -> String {
    const GLYPHS: &[u8] = b" .:-=+*#@";
    let top = match buckets.iter().rposition(|&c| c > 0) {
        Some(i) => i,
        None => return String::new(),
    };
    let peak = *buckets.iter().max().unwrap();
    buckets[..=top]
        .iter()
        .map(|&c| {
            let i = if c == 0 {
                0
            } else {
                // Non-zero counts always get at least the faintest glyph.
                1 + (c * (GLYPHS.len() as u64 - 2) / peak) as usize
            };
            GLYPHS[i] as char
        })
        .collect()
}

/// Renders the §6.2/§6.3 wakeup-to-run latency profile as a table: one
/// row per priority level that dispatched anything, with mean / p50 /
/// p99 / max ready-queue waits and a log₂-µs histogram sparkline.
///
/// p50 and p99 are the floors of the histogram bucket in which the
/// quantile falls, so they are resolved to a power of two of
/// microseconds, not exact.
pub fn latency_table(lat: &pcr::SchedLatency) -> Table {
    let mut t = Table::new(
        "Wakeup-to-run latency (§6.2)",
        &[
            "Priority",
            "Dispatches",
            "Mean µs",
            "p50 µs",
            "p99 µs",
            "Max µs",
            "log₂-µs histogram",
        ],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    let quantile = |buckets: &[u64], total: u64, q: f64| -> u64 {
        let target = (total as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return pcr::SchedLatency::bucket_floor_us(b);
            }
        }
        pcr::SchedLatency::bucket_floor_us(buckets.len() - 1)
    };
    for p in 0..pcr::Priority::LEVELS {
        let n = lat.samples[p];
        if n == 0 {
            continue;
        }
        t.row(vec![
            (p + 1).to_string(),
            n.to_string(),
            lat.mean_wait(p).map_or(0, |d| d.as_micros()).to_string(),
            quantile(&lat.buckets[p], n, 0.50).to_string(),
            quantile(&lat.buckets[p], n, 0.99).to_string(),
            lat.max_wait[p].as_micros().to_string(),
            bucket_spark(&lat.buckets[p]),
        ]);
    }
    t
}

/// Formats a float with one decimal, the paper's table style.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float as a whole number.
pub fn f0(x: f64) -> String {
    format!("{x:.0}")
}

/// Formats a percentage like the paper ("82%").
pub fn pct(x: f64) -> String {
    format!("{x:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Table 1", &["Benchmark", "Forks/sec"]);
        t.row(vec!["Idle Cedar", "0.9"]);
        t.row(vec!["Keyboard input", "5.0"]);
        let s = t.to_text();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Idle Cedar"));
        // Numbers right-aligned under the header.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].ends_with("Forks/sec"));
        assert!(lines[3].ends_with("0.9"));
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", &["A", "B"]);
        t.row(vec!["x", "1"]);
        let md = t.to_markdown();
        assert!(md.contains("| A | B |"));
        assert!(md.contains("| :--- | ---: |"));
        assert!(md.contains("| x | 1 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("T", &["A", "B"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(3.16), "3.2");
        assert_eq!(f0(131.7), "132");
        assert_eq!(pct(81.9), "82%");
    }

    #[test]
    fn thread_table_sorts_by_cpu() {
        use pcr::{millis, Priority, RunLimit, Sim, SimConfig};
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.fork_root("big", Priority::of(3), |ctx| ctx.work(millis(30)));
        let _ = sim.fork_root("small", Priority::of(4), |ctx| ctx.work(millis(5)));
        sim.run(RunLimit::ToCompletion);
        let t = thread_table(&sim.threads());
        let text = t.to_text();
        let big_pos = text.find("big").unwrap();
        let small_pos = text.find("small").unwrap();
        assert!(big_pos < small_pos, "rows not CPU-sorted:\n{text}");
        assert!(text.contains("exited"));
    }

    #[test]
    fn hazard_table_rows_and_total() {
        let counts = pcr::HazardCounts {
            naked_notifies: 2,
            livelocks: 1,
            ..Default::default()
        };
        let t = hazard_table(&counts);
        assert_eq!(t.len(), 6);
        let text = t.to_text();
        assert!(text.contains("naked notify"));
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("total"), "{last}");
        assert!(last.ends_with('3'), "{last}");
    }

    #[test]
    fn contention_table_renders_rows() {
        use crate::{MonitorProfile, MonitorProfileRow};
        let rows = vec![MonitorProfileRow {
            monitor: 0,
            name: "heap".to_string(),
            profile: MonitorProfile {
                enters: 10,
                contended: 4,
                total_hold: pcr::micros(1000),
                max_hold: pcr::micros(300),
                total_wait: pcr::micros(400),
                max_wait: pcr::micros(250),
            },
        }];
        let t = contention_table(&rows);
        let text = t.to_text();
        assert!(text.contains("heap"), "{text}");
        assert!(text.contains("40%"), "{text}");
        assert!(text.contains("100"), "mean hold missing:\n{text}");
    }

    #[test]
    fn latency_table_skips_idle_priorities() {
        let mut lat = pcr::SchedLatency::default();
        lat.record(pcr::Priority::of(3), pcr::micros(0));
        lat.record(pcr::Priority::of(3), pcr::micros(9));
        let t = latency_table(&lat);
        assert_eq!(t.len(), 1, "only priority 3 dispatched");
        let text = t.to_text();
        assert!(text.contains('3'), "{text}");
        assert!(text.contains('9'), "max missing:\n{text}");
    }

    #[test]
    fn bucket_spark_trims_and_scales() {
        assert_eq!(bucket_spark(&[0, 0, 0]), "");
        let s = bucket_spark(&[8, 0, 1, 8]);
        assert_eq!(s.len(), 4, "{s}");
        assert_eq!(s.chars().nth(1).unwrap(), ' ', "{s}");
        assert_eq!(s.chars().next(), s.chars().last(), "{s}");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("", &["A"]);
        assert!(t.is_empty());
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
    }
}
