//! Fork-genealogy statistics (paper §3).
//!
//! The paper classifies dynamic threads as *eternal* (live the whole
//! run), *workers* (forked to carry out an activity), and *transients*
//! (short-lived children), and observes that in every benchmark "every
//! transient thread was either the child or grandchild of some worker or
//! long-lived thread" — forking generations never exceeded 2.

use std::collections::HashMap;

use pcr::{Event, EventKind, SimDuration, SimTime, ThreadId, TraceSink};

/// Dynamic classification of a thread by lifetime (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifetimeClass {
    /// Alive from (nearly) the start of the run to its end.
    Eternal,
    /// Lived a substantial fraction of the run.
    Worker,
    /// Short-lived (the paper: "average lifetime for non-eternal threads
    /// ... well under 1 second").
    Transient,
}

#[derive(Clone, Debug)]
struct ThreadBirth {
    parent: Option<ThreadId>,
    generation: u32,
    born: SimTime,
    died: Option<SimTime>,
}

/// Collects fork parentage and lifetimes from the event stream.
#[derive(Debug, Default)]
pub struct GenealogyCollector {
    threads: HashMap<ThreadId, ThreadBirth>,
    end: SimTime,
}

impl GenealogyCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum fork generation observed (roots are generation 0; the
    /// paper reports ≤ 2 counting from the forking worker, i.e. ≤ 2
    /// generations of transient forks below any long-lived thread).
    pub fn max_generation(&self) -> u32 {
        self.threads
            .values()
            .map(|t| t.generation)
            .max()
            .unwrap_or(0)
    }

    /// Number of threads at each generation, indexed by generation.
    pub fn generation_counts(&self) -> Vec<usize> {
        let max = self.max_generation() as usize;
        let mut counts = vec![0usize; max + 1];
        for t in self.threads.values() {
            counts[t.generation as usize] += 1;
        }
        counts
    }

    /// Mean lifetime of threads that exited during the run.
    pub fn mean_lifetime_of_exited(&self) -> Option<SimDuration> {
        let exited: Vec<SimDuration> = self
            .threads
            .values()
            .filter_map(|t| t.died.map(|d| d.saturating_since(t.born)))
            .collect();
        if exited.is_empty() {
            return None;
        }
        let total: SimDuration = exited.iter().copied().sum();
        Some(total / exited.len() as u64)
    }

    /// Classifies every observed thread by lifetime. `run_span` is the
    /// virtual duration of the observed run.
    pub fn classify(&self, run_span: SimDuration) -> HashMap<ThreadId, LifetimeClass> {
        let span = run_span.as_micros().max(1);
        self.threads
            .iter()
            .map(|(&tid, t)| {
                let lifetime = t
                    .died
                    .unwrap_or(self.end)
                    .saturating_since(t.born)
                    .as_micros();
                let class = if t.died.is_none() && lifetime * 10 >= span * 9 {
                    LifetimeClass::Eternal
                } else if lifetime * 10 >= span * 2 {
                    LifetimeClass::Worker
                } else {
                    LifetimeClass::Transient
                };
                (tid, class)
            })
            .collect()
    }

    /// Number of threads observed.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The recorded parent of a thread, if any.
    pub fn parent_of(&self, tid: ThreadId) -> Option<ThreadId> {
        self.threads.get(&tid).and_then(|t| t.parent)
    }
}

impl TraceSink for GenealogyCollector {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn record(&mut self, ev: &Event) {
        self.end = self.end.max(ev.t);
        match ev.kind {
            EventKind::Fork {
                parent,
                child,
                generation,
                ..
            } => {
                self.threads.insert(
                    child,
                    ThreadBirth {
                        parent,
                        generation,
                        born: ev.t,
                        died: None,
                    },
                );
            }
            EventKind::Exit { tid, .. } => {
                if let Some(t) = self.threads.get_mut(&tid) {
                    t.died = Some(ev.t);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, Priority};

    fn fork(t: u64, parent: Option<u32>, child: u32, generation: u32) -> Event {
        Event {
            t: SimTime::from_micros(t),
            kind: EventKind::Fork {
                parent: parent.map(ThreadId::from_u32),
                child: ThreadId::from_u32(child),
                priority: Priority::DEFAULT,
                generation,
            },
        }
    }

    fn exit(t: u64, tid: u32) -> Event {
        Event {
            t: SimTime::from_micros(t),
            kind: EventKind::Exit {
                tid: ThreadId::from_u32(tid),
                panicked: false,
            },
        }
    }

    #[test]
    fn tracks_generations() {
        let mut g = GenealogyCollector::new();
        g.record(&fork(0, None, 0, 0));
        g.record(&fork(10, Some(0), 1, 1));
        g.record(&fork(20, Some(1), 2, 2));
        assert_eq!(g.max_generation(), 2);
        assert_eq!(g.generation_counts(), vec![1, 1, 1]);
        assert_eq!(
            g.parent_of(ThreadId::from_u32(2)),
            Some(ThreadId::from_u32(1))
        );
    }

    #[test]
    fn lifetime_classification() {
        let mut g = GenealogyCollector::new();
        let span = millis(1000);
        g.record(&fork(0, None, 0, 0)); // Never exits: eternal.
        g.record(&fork(0, Some(0), 1, 1)); // Lives 600ms: worker.
        g.record(&fork(100_000, Some(1), 2, 2)); // Lives 5ms: transient.
        g.record(&exit(105_000, 2));
        g.record(&exit(600_000, 1));
        g.record(&Event {
            t: SimTime::from_micros(1_000_000),
            kind: EventKind::QuantumExpired {
                tid: ThreadId::from_u32(0),
            },
        });
        let classes = g.classify(span);
        assert_eq!(classes[&ThreadId::from_u32(0)], LifetimeClass::Eternal);
        assert_eq!(classes[&ThreadId::from_u32(1)], LifetimeClass::Worker);
        assert_eq!(classes[&ThreadId::from_u32(2)], LifetimeClass::Transient);
    }

    #[test]
    fn mean_lifetime_only_counts_exited() {
        let mut g = GenealogyCollector::new();
        g.record(&fork(0, None, 0, 0));
        g.record(&fork(0, Some(0), 1, 1));
        g.record(&exit(40_000, 1));
        assert_eq!(g.mean_lifetime_of_exited(), Some(millis(40)));
    }

    #[test]
    fn empty_collector() {
        let g = GenealogyCollector::new();
        assert_eq!(g.max_generation(), 0);
        assert_eq!(g.mean_lifetime_of_exited(), None);
        assert_eq!(g.thread_count(), 0);
    }
}
