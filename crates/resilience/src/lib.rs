//! # resilience — fuzz, shrink, recover
//!
//! The robustness harness over the [`pcr`] simulator and the
//! [`workloads`] worlds, motivated by the pathologies of §5–§6 of the
//! paper (fork outages, unresponsive components, priority-inversion
//! wedges):
//!
//! * [`fuzz`] sweeps seeds and chaos-intensity grids over the full
//!   benchmark matrix — plus the multiprocessor transfer mesh, the
//!   §5.5 weak-memory race, and the overload-resilient serve world's
//!   burst and outage cells ([`TrialWorld`]) — classifies every failing
//!   run by a seed-independent [`signature`], and stores each unique
//!   failure as a replayable [`StoredCase`] carrying the exact
//!   [`pcr::FaultSchedule`] that produced it.
//! * [`guided_fuzz`] spends the same budget smarter: a corpus of cases
//!   keyed by failure signature, mutated (stall splices, parameter
//!   perturbations, PCT priority-change injection, reseeds) with energy
//!   biased toward the entries whose mutations keep finding new
//!   signatures. Its yardstick is distinct signatures per CPU-minute.
//! * [`shrink`] delta-debugs a failing schedule down to a locally
//!   minimal one that still reproduces the same failure signature —
//!   dropping injection decisions, halving stall durations — so the
//!   repro a human reads is the smallest one the oracle accepts.
//! * [`supervise`] runs a world in slices under a wait-for-graph watch
//!   and pulls the paper's recovery levers when it wedges: failing
//!   pending forks (§5.4), rejuvenating stalled components (§5.2), and
//!   as a last resort restarting the attempt with exponential backoff.
//!   [`supervise_benchmark`] scores the result as a *degradation*
//!   fraction against a clean run of the same cell.
//!
//! Everything here is deterministic per `(cell, chaos, seed)`: a fuzz
//! finding replays byte-for-byte, a shrunk schedule carries a
//! ready-to-paste repro command, and the supervisor's action log is
//! stable across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod confirm;
mod fuzz;
mod guided;
mod observe;
mod shrink;
mod signature;
mod supervisor;

pub use case::StoredCase;
pub use confirm::{case_evidence, corpus_evidence, Evidence};
pub use fuzz::{
    default_cells, fuzz, fuzz_with, intensity_ladder, BatchRunner, FoundCase, FuzzCell, FuzzConfig,
    FuzzOutcome, Intensity,
};
pub use guided::{guided_fuzz, signatures_per_cpu_minute, GuidedOutcome, MutationDiscovery};
pub use observe::{observe, replay, replay_schedule, Observation, TrialSpec, TrialWorld};
pub use shrink::{shrink, ShrinkConfig, ShrinkReport};
pub use signature::{normalize_name, signature, Failure, FailureClass};
pub use supervisor::{
    recover_preset, supervise, supervise_benchmark, unsupervised_wedges, RecoveryAction,
    RecoveryKind, SupervisedBench, Supervision, SupervisorConfig,
};
