//! Dynamic evidence for static findings: the replay side of
//! `repro lint --confirm`.
//!
//! The static analyzer names monitors by source binding; the runtime
//! names them by construction literal (`sim.monitor("gvx-screen", …)`),
//! often with instance numbers interpolated. This module replays a
//! stored fuzz corpus and distills each case into an [`Evidence`]
//! record whose names are normalized the same way the lint side
//! normalizes its literals (digit runs folded to `#`), so the join is
//! a plain set intersection.

use std::path::{Path, PathBuf};

use crate::case::StoredCase;
use crate::observe::replay;
use crate::signature::normalize_name;

/// What one replayed corpus case proves.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// File name of the stored case (not the full path).
    pub case_file: String,
    /// The signature the replay actually produced, if it failed.
    pub signature: Option<String>,
    /// Normalized resource names (monitors/CVs) the stranded threads
    /// were blocked on. Empty when the replay did not fail.
    pub resources: Vec<String>,
    /// Normalized bare thread names of the stranded parties, with the
    /// `(kind)` suffix stripped.
    pub parties: Vec<String>,
    /// Normalized names of every monitor the world had live — the
    /// "this lock exists and was exercised here" channel.
    pub monitors: Vec<String>,
}

fn strip_kind(party: &str) -> &str {
    party.split('(').next().unwrap_or(party)
}

/// Replays one stored case into evidence.
pub fn case_evidence(path: &Path) -> Result<Evidence, String> {
    let case = StoredCase::load(path)?;
    let obs = replay(&case);
    let mut resources = Vec::new();
    let mut parties = Vec::new();
    if let Some(f) = &obs.failure {
        resources = f.resources.iter().map(|r| normalize_name(r)).collect();
        parties = f
            .parties
            .iter()
            .map(|p| normalize_name(strip_kind(p)))
            .collect();
        resources.sort();
        resources.dedup();
        parties.sort();
        parties.dedup();
    }
    let mut monitors: Vec<String> = obs.monitors.iter().map(|m| normalize_name(m)).collect();
    monitors.sort();
    monitors.dedup();
    Ok(Evidence {
        case_file: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        signature: obs.failure.as_ref().map(|f| f.signature()),
        resources,
        parties,
        monitors,
    })
}

/// Replays every `.json` case under `dir`, in sorted order, into
/// evidence records. Unreadable cases are errors — a corrupt corpus
/// must not silently weaken the precision report.
pub fn corpus_evidence(dir: &Path) -> Result<Vec<Evidence>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| case_evidence(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{TrialSpec, TrialWorld};
    use pcr::FaultSchedule;
    use threadstudy_core::System;
    use workloads::Benchmark;

    #[test]
    fn party_kind_suffix_is_stripped_and_normalized() {
        assert_eq!(strip_kind("GVX.InputPoller(monitor)"), "GVX.InputPoller");
        assert_eq!(strip_kind("bare"), "bare");
        assert_eq!(normalize_name(strip_kind("window-3(monitor)")), "window-#");
    }

    #[test]
    fn corpus_evidence_round_trips_a_saved_case() {
        // Build a case for the multiprocessor ABBA world (its failure
        // is seed-deterministic with an empty schedule for seed 3), save
        // it, and distill evidence from the replay.
        let dir = std::env::temp_dir().join(format!("confirm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut found = None;
        for seed in 0..64u64 {
            let spec = TrialSpec {
                world: TrialWorld::MultiCore { cpus: 2 },
                system: System::Gvx,
                benchmark: Benchmark::Idle,
                seed,
                window: pcr::secs(2),
                slice: pcr::millis(100),
                wedge_threshold: pcr::millis(400),
                max_threads: None,
                policy: pcr::PolicyKind::RoundRobin,
            };
            let obs = crate::observe::observe(&spec, pcr::ChaosConfig::none());
            if let Some(f) = &obs.failure {
                found = Some((spec, f.signature()));
                break;
            }
        }
        let (spec, signature) = found.expect("some seed deadlocks the teller mesh");
        let case = StoredCase {
            world: spec.world,
            system: spec.system,
            benchmark: spec.benchmark,
            seed: spec.seed,
            window: spec.window,
            slice: spec.slice,
            wedge_threshold: spec.wedge_threshold,
            max_threads: spec.max_threads,
            policy: spec.policy,
            intensity: "baseline".to_string(),
            signature: signature.clone(),
            schedule: FaultSchedule::default(),
        };
        case.save(&dir).unwrap();
        let ev = corpus_evidence(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].signature.as_deref(), Some(signature.as_str()));
        // The tellers deadlock on the account monitors: the resource
        // channel must carry their (normalized) names.
        assert!(
            ev[0].resources.iter().any(|r| r.contains("account")),
            "{:?}",
            ev[0]
        );
        assert!(
            ev[0].parties.iter().any(|p| p.starts_with("teller")),
            "{:?}",
            ev[0]
        );
    }
}
