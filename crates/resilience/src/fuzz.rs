//! Chaos-schedule fuzzing over the benchmark grid.
//!
//! The fuzzer enumerates trials deterministically from a budget: trial
//! `i` maps to a `(cell, intensity, seed)` triple by mixed-radix
//! decomposition, so the same budget and base seed always visit the
//! same grid in the same order. Intensity ladders are per-system and
//! front-load the fault mixes the worlds are known not to tolerate
//! (fork-table exhaustion for Cedar, a gated stall inside the screen
//! monitor for GVX), so small budgets still find real failures.
//!
//! Every failing trial is classified by its seed-independent signature;
//! the first trial to exhibit each signature becomes a [`StoredCase`],
//! later ones only bump its count.

use pcr::{millis, secs, ChaosConfig, SimDuration, SimTime};
use threadstudy_core::System;
use workloads::{chaos_preset, eternal_thread_count, Benchmark};

use crate::case::StoredCase;
use crate::observe::{observe, TrialSpec};

/// One rung of a system's chaos-intensity ladder.
#[derive(Clone, Debug)]
pub struct Intensity {
    /// Short name shown in reports and stored with each case.
    pub name: &'static str,
    /// The fault mix.
    pub chaos: ChaosConfig,
    /// Optional thread-table cap applied with this rung.
    pub max_threads: Option<usize>,
}

fn cv_storm() -> ChaosConfig {
    ChaosConfig::none()
        .spurious_wakeups(0.3)
        .duplicate_notifies(0.3)
        .jitter_timers(millis(8))
}

fn lost_wakeup() -> ChaosConfig {
    ChaosConfig::none().spurious_wakeups(0.1).drop_notifies(0.3)
}

/// The stall the GVX ladder injects: catch the input poller inside the
/// screen monitor (it holds `gvx-screen` while painting) and keep it
/// there far longer than any watchdog timeout.
fn gvx_screen_stall(chaos: ChaosConfig) -> ChaosConfig {
    chaos.stall_while_holding(
        "GVX.InputPoller",
        "gvx-screen",
        SimTime::from_micros(2_000_000),
        secs(120),
    )
}

/// The per-system intensity ladder, mildest first, with the
/// guaranteed-failure rungs early so small budgets reach them.
pub fn intensity_ladder(system: System) -> Vec<Intensity> {
    let rung = |name, chaos| Intensity {
        name,
        chaos,
        max_threads: None,
    };
    match system {
        System::Cedar => vec![
            rung("preset", chaos_preset()),
            Intensity {
                name: "fork-cap",
                chaos: chaos_preset(),
                // Exactly the eternal population fits: the first runtime
                // fork (the Notifier's keystroke action) blocks forever.
                max_threads: Some(eternal_thread_count(System::Cedar)),
            },
            rung("cv-storm", cv_storm()),
            rung("lost-wakeup", lost_wakeup()),
            rung("fork-storm", chaos_preset().fail_forks(0.5)),
            rung(
                "kitchen-sink",
                cv_storm().drop_notifies(0.2).fail_forks(0.3),
            ),
        ],
        System::Gvx => vec![
            rung("preset", chaos_preset()),
            rung("stall-gated", gvx_screen_stall(chaos_preset())),
            rung("cv-storm", cv_storm()),
            rung("lost-wakeup", lost_wakeup()),
            rung(
                "kitchen-sink",
                gvx_screen_stall(cv_storm().drop_notifies(0.2)),
            ),
        ],
    }
}

/// Fuzzer parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of trials to run.
    pub budget: u32,
    /// Base seed; trial seeds are derived from it deterministically.
    pub base_seed: u64,
    /// The benchmark cells to sweep.
    pub cells: Vec<(System, Benchmark)>,
    /// Per-trial virtual window.
    pub window: SimDuration,
    /// Failure-check slice.
    pub slice: SimDuration,
    /// Wedge age threshold.
    pub wedge_threshold: SimDuration,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            budget: 64,
            base_seed: 0x5EED,
            cells: vec![
                (System::Cedar, Benchmark::Keyboard),
                (System::Gvx, Benchmark::Scroll),
            ],
            window: secs(6),
            slice: millis(250),
            wedge_threshold: millis(1500),
        }
    }
}

/// One unique failure found by a fuzz sweep.
#[derive(Debug)]
pub struct FoundCase {
    /// The first trial that exhibited this signature, replayable.
    pub case: StoredCase,
    /// How many trials in the sweep hit this signature.
    pub count: u32,
}

/// The result of a fuzz sweep.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Trials actually run.
    pub trials: u32,
    /// Trials that failed (including duplicates of known signatures).
    pub failures: u32,
    /// Unique failures, in discovery order.
    pub cases: Vec<FoundCase>,
}

/// Sweeps `cfg.budget` trials over the cell × intensity × seed grid and
/// returns the deduplicated failures. `progress` is called once per
/// trial with a one-line description.
pub fn fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(&str)) -> FuzzOutcome {
    assert!(!cfg.cells.is_empty(), "fuzz needs at least one cell");
    let ladders: Vec<Vec<Intensity>> = cfg
        .cells
        .iter()
        .map(|(system, _)| intensity_ladder(*system))
        .collect();
    let mut failures = 0u32;
    let mut cases: Vec<FoundCase> = Vec::new();
    for i in 0..cfg.budget {
        let cell = (i as usize) % cfg.cells.len();
        let (system, benchmark) = cfg.cells[cell];
        let ladder = &ladders[cell];
        let layer = (i as usize) / cfg.cells.len();
        let rung = &ladder[layer % ladder.len()];
        let seed_index = (layer / ladder.len()) as u64;
        // SplitMix-style spread so consecutive seed indices land far
        // apart in the simulator's seed space.
        let seed = cfg
            .base_seed
            .wrapping_add(seed_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let spec = TrialSpec {
            system,
            benchmark,
            seed,
            window: cfg.window,
            slice: cfg.slice,
            wedge_threshold: cfg.wedge_threshold,
            max_threads: rung.max_threads,
        };
        let obs = observe(&spec, rung.chaos.clone());
        match obs.failure {
            None => progress(&format!(
                "trial {i}: {}/{benchmark} {} seed={seed:x} — clean",
                system.name(),
                rung.name
            )),
            Some(failure) => {
                failures += 1;
                let signature = failure.signature();
                progress(&format!(
                    "trial {i}: {}/{benchmark} {} seed={seed:x} — {} after {}",
                    system.name(),
                    rung.name,
                    signature,
                    obs.elapsed
                ));
                match cases.iter_mut().find(|c| c.case.signature == signature) {
                    Some(known) => known.count += 1,
                    None => cases.push(FoundCase {
                        case: StoredCase {
                            system,
                            benchmark,
                            seed,
                            window: cfg.window,
                            slice: cfg.slice,
                            wedge_threshold: cfg.wedge_threshold,
                            max_threads: rung.max_threads,
                            intensity: rung.name.to_string(),
                            signature,
                            schedule: obs.schedule,
                        },
                        count: 1,
                    }),
                }
            }
        }
    }
    FuzzOutcome {
        trials: cfg.budget,
        failures,
        cases,
    }
}
