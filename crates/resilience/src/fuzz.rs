//! Chaos-schedule fuzzing over the benchmark grid.
//!
//! The fuzzer enumerates trials deterministically from a budget: trial
//! `i` maps to a `(cell, intensity, seed)` triple by mixed-radix
//! decomposition, so the same budget and base seed always visit the
//! same grid in the same order. Intensity ladders are per-system and
//! front-load the fault mixes the worlds are known not to tolerate
//! (fork-table exhaustion for Cedar, a gated stall inside the screen
//! monitor for GVX), so small budgets still find real failures.
//!
//! The default grid covers the paper's full benchmark matrix — all
//! twelve `(system, benchmark)` cells of Table 1 — plus the worlds
//! outside the matrix: the multiprocessor transfer mesh on
//! [`pcr::MpSim`] (§5.3), the §5.5 weak-memory publication race, and
//! two hot cells of the overload-resilient serve world
//! (`serve:burst`, `serve:outage`).
//!
//! Every failing trial is classified by its seed-independent signature;
//! the first trial to exhibit each signature becomes a [`StoredCase`],
//! later ones only bump its count. The returned case list is sorted by
//! signature, so the corpus a sweep writes to disk is byte-deterministic
//! regardless of discovery order.

use pcr::{millis, secs, ChaosConfig, PolicyKind, SimDuration, SimTime};
use threadstudy_core::System;
use workloads::{chaos_preset, eternal_thread_count, Benchmark};

use crate::case::StoredCase;
use crate::observe::{observe, Observation, TrialSpec, TrialWorld};

/// One rung of a system's chaos-intensity ladder.
#[derive(Clone, Debug)]
pub struct Intensity {
    /// Short name shown in reports and stored with each case.
    pub name: &'static str,
    /// The fault mix.
    pub chaos: ChaosConfig,
    /// Optional thread-table cap applied with this rung.
    pub max_threads: Option<usize>,
}

/// One cell of the fuzz grid: a world plus the `(system, benchmark)`
/// pair that selects it when the world is [`TrialWorld::Cell`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzCell {
    /// Which world family this cell runs.
    pub world: TrialWorld,
    /// System (selects the cell world and its intensity ladder).
    pub system: System,
    /// Benchmark driving the cell world.
    pub benchmark: Benchmark,
}

impl FuzzCell {
    /// A matrix cell.
    pub fn cell(system: System, benchmark: Benchmark) -> FuzzCell {
        FuzzCell {
            world: TrialWorld::Cell,
            system,
            benchmark,
        }
    }

    /// One-line label for progress output.
    pub fn label(&self) -> String {
        match self.world {
            TrialWorld::Cell => format!("{}/{}", self.system.name(), self.benchmark),
            other => other.tag(),
        }
    }
}

fn cv_storm() -> ChaosConfig {
    ChaosConfig::none()
        .spurious_wakeups(0.3)
        .duplicate_notifies(0.3)
        .jitter_timers(millis(8))
}

fn lost_wakeup() -> ChaosConfig {
    ChaosConfig::none().spurious_wakeups(0.1).drop_notifies(0.3)
}

/// The stall the GVX ladder injects: catch the input poller inside the
/// screen monitor (it holds `gvx-screen` while painting) and keep it
/// there far longer than any watchdog timeout.
fn gvx_screen_stall(chaos: ChaosConfig) -> ChaosConfig {
    chaos.stall_while_holding(
        "GVX.InputPoller",
        "gvx-screen",
        SimTime::from_micros(2_000_000),
        secs(120),
    )
}

/// The per-system intensity ladder, mildest first, with the
/// guaranteed-failure rungs early so small budgets reach them.
pub fn intensity_ladder(system: System) -> Vec<Intensity> {
    let rung = |name, chaos| Intensity {
        name,
        chaos,
        max_threads: None,
    };
    match system {
        System::Cedar => vec![
            rung("preset", chaos_preset()),
            Intensity {
                name: "fork-cap",
                chaos: chaos_preset(),
                // Exactly the eternal population fits: the first runtime
                // fork (the Notifier's keystroke action) blocks forever.
                max_threads: Some(eternal_thread_count(System::Cedar)),
            },
            rung("cv-storm", cv_storm()),
            rung("lost-wakeup", lost_wakeup()),
            rung("fork-storm", chaos_preset().fail_forks(0.5)),
            rung(
                "kitchen-sink",
                cv_storm().drop_notifies(0.2).fail_forks(0.3),
            ),
            rung("pct", chaos_preset().pct(4, 4096)),
        ],
        System::Gvx => vec![
            rung("preset", chaos_preset()),
            rung("stall-gated", gvx_screen_stall(chaos_preset())),
            rung("cv-storm", cv_storm()),
            rung("lost-wakeup", lost_wakeup()),
            rung(
                "kitchen-sink",
                gvx_screen_stall(cv_storm().drop_notifies(0.2)),
            ),
            rung("pct", chaos_preset().pct(4, 4096)),
        ],
    }
}

/// The intensity ladder for one fuzz cell. Matrix cells get the
/// per-system ladder; the out-of-matrix worlds get their own short
/// ladders (the multiprocessor mesh ignores chaos entirely — its grid
/// dimension is the seed-derived lock order).
pub fn cell_ladder(cell: &FuzzCell) -> Vec<Intensity> {
    let rung = |name, chaos| Intensity {
        name,
        chaos,
        max_threads: None,
    };
    match cell.world {
        TrialWorld::Cell => intensity_ladder(cell.system),
        TrialWorld::MultiCore { .. } => vec![rung("mp-mesh", ChaosConfig::none())],
        TrialWorld::WeakMemory { .. } => vec![
            rung("wm-race", ChaosConfig::none()),
            rung("wm-race-pct", ChaosConfig::none().pct(4, 2048)),
        ],
        TrialWorld::Serve { .. } => vec![
            // The serve world carries its own stressors (bursts, X-server
            // outages); the clean rung probes those alone.
            rung("serve-clean", ChaosConfig::none()),
            Intensity {
                name: "serve-fork-cap",
                chaos: ChaosConfig::none(),
                // Serve.Main plus its pipeline threads need more slots
                // than this: the worker fork blocks forever (§5.4).
                max_threads: Some(2),
            },
            rung(
                "serve-stall-xconn",
                ChaosConfig::none().stall_while_holding(
                    "Serve.XConn",
                    "serve.xq",
                    SimTime::from_micros(1_000_000),
                    secs(120),
                ),
            ),
            rung("serve-cv-storm", cv_storm()),
            rung("serve-pct", chaos_preset().pct(4, 2048)),
        ],
    }
}

/// Fuzzer parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of trials to run.
    pub budget: u32,
    /// Optional wall-clock cap in milliseconds: the sweep stops early
    /// once it is exceeded (the fixed-budget mode the guided-vs-grid
    /// comparison runs under). `None` means budget-only.
    pub wall_budget_ms: Option<u64>,
    /// Base seed; trial seeds are derived from it deterministically.
    pub base_seed: u64,
    /// The grid cells to sweep.
    pub cells: Vec<FuzzCell>,
    /// Per-trial virtual window.
    pub window: SimDuration,
    /// Failure-check slice.
    pub slice: SimDuration,
    /// Wedge age threshold.
    pub wedge_threshold: SimDuration,
    /// Scheduling policy every trial runs under (the multiprocessor mesh
    /// ignores it; see [`TrialSpec::policy`]).
    pub policy: PolicyKind,
}

/// The full default grid: every Table 1 matrix cell plus the
/// multiprocessor mesh and the weak-memory race.
pub fn default_cells() -> Vec<FuzzCell> {
    let mut cells = Vec::new();
    for system in [System::Cedar, System::Gvx] {
        for benchmark in Benchmark::suite(system) {
            cells.push(FuzzCell::cell(system, *benchmark));
        }
    }
    cells.push(FuzzCell {
        world: TrialWorld::MultiCore { cpus: 2 },
        system: System::Cedar,
        benchmark: Benchmark::Idle,
    });
    cells.push(FuzzCell {
        world: TrialWorld::WeakMemory { max_delay_us: 200 },
        system: System::Cedar,
        benchmark: Benchmark::Idle,
    });
    for scenario in [
        workloads::serve::ServeScenario::Burst,
        workloads::serve::ServeScenario::Outage,
    ] {
        cells.push(FuzzCell {
            world: TrialWorld::Serve { scenario },
            system: System::Cedar,
            benchmark: Benchmark::Idle,
        });
    }
    cells
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            budget: 64,
            wall_budget_ms: None,
            base_seed: 0x5EED,
            cells: default_cells(),
            window: secs(6),
            slice: millis(250),
            wedge_threshold: millis(1500),
            policy: PolicyKind::RoundRobin,
        }
    }
}

/// One unique failure found by a fuzz sweep.
#[derive(Debug)]
pub struct FoundCase {
    /// The first trial that exhibited this signature, replayable.
    pub case: StoredCase,
    /// How many trials in the sweep hit this signature.
    pub count: u32,
    /// Threads still live when the failing trial ended — the guided
    /// fuzzer's stall-splice targets.
    pub live_threads: Vec<String>,
}

/// The result of a fuzz sweep.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Trials actually run (may be under budget when a wall-clock cap
    /// fires).
    pub trials: u32,
    /// Trials that failed (including duplicates of known signatures).
    pub failures: u32,
    /// Unique failures, sorted by signature.
    pub cases: Vec<FoundCase>,
}

/// Maps grid-trial index `i` to its `(cell, rung, seed)` triple by
/// mixed-radix decomposition — the shared enumeration behind both the
/// plain sweep and the guided fuzzer's exploration trials.
pub(crate) fn grid_trial<'a>(
    cfg: &FuzzConfig,
    ladders: &'a [Vec<Intensity>],
    i: u32,
) -> (FuzzCell, &'a Intensity, u64) {
    let cell_index = (i as usize) % cfg.cells.len();
    let cell = cfg.cells[cell_index];
    let ladder = &ladders[cell_index];
    let layer = (i as usize) / cfg.cells.len();
    let rung = &ladder[layer % ladder.len()];
    let seed_index = (layer / ladder.len()) as u64;
    // SplitMix-style spread so consecutive seed indices land far
    // apart in the simulator's seed space.
    let seed = cfg
        .base_seed
        .wrapping_add(seed_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (cell, rung, seed)
}

/// The trial spec for one grid triple under `cfg`'s watch parameters.
pub(crate) fn grid_spec(
    cfg: &FuzzConfig,
    cell: FuzzCell,
    rung: &Intensity,
    seed: u64,
) -> TrialSpec {
    TrialSpec {
        world: cell.world,
        system: cell.system,
        benchmark: cell.benchmark,
        seed,
        window: cfg.window,
        slice: cfg.slice,
        wedge_threshold: cfg.wedge_threshold,
        max_threads: rung.max_threads,
        policy: cfg.policy,
    }
}

/// Sweeps `cfg.budget` trials over the cell × intensity × seed grid and
/// returns the deduplicated failures. `progress` is called once per
/// trial with a one-line description.
///
/// Serial reference driver: runs each trial on the calling thread, in
/// grid order. [`fuzz_with`] generalizes it to batched execution; this
/// wrapper is `fuzz_with` with a batch size of one and an inline runner,
/// so both paths share every line of grid enumeration and dedup logic.
pub fn fuzz(cfg: &FuzzConfig, progress: impl FnMut(&str)) -> FuzzOutcome {
    fuzz_with(cfg, progress, 1, &mut |batch| {
        batch
            .iter()
            .map(|(spec, chaos)| observe(spec, chaos.clone()))
            .collect()
    })
}

/// A batch executor for [`fuzz_with`]: given `(spec, chaos)` pairs, it
/// must return one [`Observation`] per pair, in pair order, each equal
/// to what [`observe`] would produce for that pair.
pub type BatchRunner<'a> = dyn FnMut(&[(TrialSpec, ChaosConfig)]) -> Vec<Observation> + 'a;

/// [`fuzz`], with trial execution delegated to `run_batch`.
///
/// Trials are enumerated in grid order and handed to `run_batch` in
/// consecutive chunks of up to `batch_size`; the runner must return one
/// [`Observation`] per spec, in spec order, each equal to what
/// [`observe`] would produce (every trial is an independent
/// deterministic simulation, so a parallel runner satisfies this for
/// free). Results are processed strictly in trial order, so signature
/// dedup, progress lines, and the final case list are identical at every
/// batch size; the wall-clock budget is checked at batch boundaries,
/// which with `batch_size == 1` is exactly the per-trial check.
pub fn fuzz_with(
    cfg: &FuzzConfig,
    mut progress: impl FnMut(&str),
    batch_size: usize,
    run_batch: &mut BatchRunner<'_>,
) -> FuzzOutcome {
    assert!(!cfg.cells.is_empty(), "fuzz needs at least one cell");
    let batch_size = (batch_size.max(1) as u32).min(cfg.budget.max(1));
    let ladders: Vec<Vec<Intensity>> = cfg.cells.iter().map(cell_ladder).collect();
    let start = std::time::Instant::now();
    let mut trials = 0u32;
    let mut failures = 0u32;
    let mut cases: Vec<FoundCase> = Vec::new();
    let mut next = 0u32;
    while next < cfg.budget {
        if let Some(ms) = cfg.wall_budget_ms {
            if start.elapsed().as_millis() as u64 >= ms {
                progress(&format!("wall budget exhausted after {next} trials"));
                break;
            }
        }
        let end = (next + batch_size).min(cfg.budget);
        let triples: Vec<(u32, FuzzCell, &Intensity, u64)> = (next..end)
            .map(|i| {
                let (cell, rung, seed) = grid_trial(cfg, &ladders, i);
                (i, cell, rung, seed)
            })
            .collect();
        let specs: Vec<(TrialSpec, ChaosConfig)> = triples
            .iter()
            .map(|&(_, cell, rung, seed)| (grid_spec(cfg, cell, rung, seed), rung.chaos.clone()))
            .collect();
        let observations = run_batch(&specs);
        assert_eq!(
            observations.len(),
            specs.len(),
            "batch runner must return one observation per spec"
        );
        for (&(i, cell, rung, seed), obs) in triples.iter().zip(observations) {
            trials += 1;
            match obs.failure {
                None => progress(&format!(
                    "trial {i}: {} {} seed={seed:x} — clean",
                    cell.label(),
                    rung.name
                )),
                Some(failure) => {
                    failures += 1;
                    let signature = failure.signature();
                    progress(&format!(
                        "trial {i}: {} {} seed={seed:x} — {} after {}",
                        cell.label(),
                        rung.name,
                        signature,
                        obs.elapsed
                    ));
                    match cases.iter_mut().find(|c| c.case.signature == signature) {
                        Some(known) => known.count += 1,
                        None => cases.push(FoundCase {
                            case: StoredCase {
                                world: cell.world,
                                system: cell.system,
                                benchmark: cell.benchmark,
                                seed,
                                window: cfg.window,
                                slice: cfg.slice,
                                wedge_threshold: cfg.wedge_threshold,
                                max_threads: rung.max_threads,
                                policy: cfg.policy,
                                intensity: rung.name.to_string(),
                                signature,
                                schedule: obs.schedule,
                            },
                            count: 1,
                            live_threads: obs.live_threads,
                        }),
                    }
                }
            }
        }
        next = end;
    }
    cases.sort_by(|a, b| a.case.signature.cmp(&b.case.signature));
    FuzzOutcome {
        trials,
        failures,
        cases,
    }
}
