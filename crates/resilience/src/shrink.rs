//! Delta-debugging minimization of failing fault schedules.
//!
//! The oracle is deterministic replay: a candidate schedule "passes"
//! when scripting it over the case's trial reproduces the original
//! failure signature. Passes run in a fixed order — try the empty
//! schedule first (the failure may be environmental, e.g. a thread-table
//! cap), then drop stalls, then ddmin the injection decisions, then
//! halve the surviving parameters — and every replay is counted against
//! a budget so a stubborn case terminates with the best schedule found
//! so far rather than running forever.

use pcr::FaultSchedule;

use crate::case::StoredCase;
use crate::observe::replay_schedule;

/// Shrinker parameters.
#[derive(Clone, Debug)]
pub struct ShrinkConfig {
    /// Maximum number of oracle replays before stopping with the best
    /// schedule found so far.
    pub max_replays: u32,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_replays: 150 }
    }
}

/// What the shrinker did.
#[derive(Debug)]
pub struct ShrinkReport {
    /// The case with its schedule replaced by the minimized one (same
    /// signature, same trial parameters).
    pub case: StoredCase,
    /// Injection decisions before shrinking.
    pub original_decisions: usize,
    /// Stalls before shrinking.
    pub original_stalls: usize,
    /// Oracle replays spent.
    pub replays: u32,
    /// True when the replay budget ran out before the passes finished
    /// (the result is still valid, just possibly not locally minimal).
    pub exhausted: bool,
}

struct Oracle<'a> {
    case: &'a StoredCase,
    replays: u32,
    budget: u32,
}

impl Oracle<'_> {
    fn out_of_budget(&self) -> bool {
        self.replays >= self.budget
    }

    /// Does `candidate` still reproduce the original signature?
    /// Returns `None` when the budget is exhausted.
    fn accepts(&mut self, candidate: &FaultSchedule) -> Option<bool> {
        if self.out_of_budget() {
            return None;
        }
        self.replays += 1;
        let obs = replay_schedule(self.case, candidate);
        Some(obs.signature().as_deref() == Some(self.case.signature.as_str()))
    }
}

/// One ddmin-style reduction pass over the decision list: repeatedly try
/// removing chunks, refining granularity when nothing removable remains.
fn ddmin_decisions(cur: &mut FaultSchedule, oracle: &mut Oracle<'_>) {
    let mut chunks = 2usize;
    while cur.decisions.len() > 1 && chunks <= cur.decisions.len() {
        let chunk_len = cur.decisions.len().div_ceil(chunks);
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.decisions.len() {
            let end = (start + chunk_len).min(cur.decisions.len());
            let mut candidate = cur.clone();
            candidate.decisions.drain(start..end);
            match oracle.accepts(&candidate) {
                None => return,
                Some(true) => {
                    *cur = candidate;
                    removed_any = true;
                    // Same start now addresses the next chunk.
                }
                Some(false) => start = end,
            }
        }
        if removed_any {
            chunks = chunks.saturating_sub(1).max(2);
        } else {
            chunks *= 2;
        }
    }
}

/// Halve a microsecond quantity toward 1, keeping each halving only if
/// the oracle still accepts it.
fn halve_param(
    cur: &mut FaultSchedule,
    oracle: &mut Oracle<'_>,
    read: impl Fn(&FaultSchedule) -> u64,
    write: impl Fn(&mut FaultSchedule, u64),
) {
    while read(cur) > 1 {
        let mut candidate = cur.clone();
        write(&mut candidate, read(cur) / 2);
        match oracle.accepts(&candidate) {
            Some(true) => *cur = candidate,
            _ => break,
        }
    }
}

/// Minimizes `case.schedule` while preserving its failure signature.
///
/// Returns `Err` if the original schedule does not reproduce the stored
/// signature (a corrupt or stale case file). `progress` receives a line
/// per completed pass.
pub fn shrink(
    case: &StoredCase,
    cfg: &ShrinkConfig,
    mut progress: impl FnMut(&str),
) -> Result<ShrinkReport, String> {
    let mut oracle = Oracle {
        case,
        replays: 0,
        budget: cfg.max_replays.max(2),
    };
    match oracle.accepts(&case.schedule) {
        Some(true) => {}
        _ => {
            return Err(format!(
                "schedule does not reproduce its stored signature {:?}",
                case.signature
            ))
        }
    }
    let mut cur = case.schedule.clone();

    // Fast paths: the failure may not need the schedule at all (an
    // environmental cap), or may need only the stalls / only the
    // decisions.
    for (label, candidate) in [
        ("empty schedule", FaultSchedule::default()),
        (
            "stalls only",
            FaultSchedule {
                decisions: Vec::new(),
                stalls: cur.stalls.clone(),
            },
        ),
        (
            "decisions only",
            FaultSchedule {
                decisions: cur.decisions.clone(),
                stalls: Vec::new(),
            },
        ),
    ] {
        let smaller = candidate.decisions.len() < cur.decisions.len()
            || candidate.stalls.len() < cur.stalls.len();
        if smaller && oracle.accepts(&candidate) == Some(true) {
            progress(&format!("{label} still reproduces"));
            cur = candidate;
            break;
        }
    }

    // Drop individual stalls.
    let mut i = 0;
    while i < cur.stalls.len() {
        let mut candidate = cur.clone();
        candidate.stalls.remove(i);
        match oracle.accepts(&candidate) {
            None => break,
            Some(true) => cur = candidate,
            Some(false) => i += 1,
        }
    }

    let before = cur.decisions.len();
    ddmin_decisions(&mut cur, &mut oracle);
    if cur.decisions.len() < before {
        progress(&format!(
            "ddmin: {before} -> {} decisions",
            cur.decisions.len()
        ));
    }

    // Halve surviving fault parameters (delays) and stall durations.
    for idx in 0..cur.decisions.len() {
        halve_param(
            &mut cur,
            &mut oracle,
            |s| s.decisions[idx].param_us,
            |s, v| s.decisions[idx].param_us = v,
        );
    }
    for idx in 0..cur.stalls.len() {
        halve_param(
            &mut cur,
            &mut oracle,
            |s| s.stalls[idx].duration.as_micros(),
            |s, v| s.stalls[idx].duration = pcr::SimDuration::from_micros(v),
        );
    }

    let exhausted = oracle.out_of_budget();
    progress(&format!(
        "minimized to {} decision(s), {} stall(s) in {} replays{}",
        cur.decisions.len(),
        cur.stalls.len(),
        oracle.replays,
        if exhausted { " (budget exhausted)" } else { "" }
    ));
    let mut minimized = case.clone();
    minimized.schedule = cur;
    Ok(ShrinkReport {
        case: minimized,
        original_decisions: case.schedule.decisions.len(),
        original_stalls: case.schedule.stalls.len(),
        replays: oracle.replays,
        exhausted,
    })
}
