//! The deadlock-recovery supervisor.
//!
//! Runs a world in slices under a wait-for-graph watch and, when the
//! world wedges, climbs a recovery ladder drawn from the paper:
//!
//! 1. **Fail pending forks** (§5.4): if any wedged thread is parked in
//!    fork-wait, drain the fork queue with an error — the Cedar worlds
//!    handle `ResourcesExhausted` and carry on degraded.
//! 2. **§6.2 inversion remedies**: when the wait-for graph reports a
//!    high-priority thread stuck behind a *runnable* lower-priority
//!    holder, first enable metalock donation (the paper's fix for the
//!    metalock variant), then boost the holder to the victim's priority
//!    (what the paper's SystemDaemon achieves probabilistically, done
//!    deterministically here). Neither restarts anything.
//! 3. **Rejuvenate** (§5.2 "task rejuvenation"): if the wedge chain
//!    roots at a stalled (unresponsive) thread, un-stall it.
//! 4. **Restart**: tear the attempt down and rebuild the world, with
//!    exponential backoff deducted from the remaining time budget.
//!
//! [`supervise_benchmark`] wraps this around a benchmark cell and scores
//! the outcome as a *degradation* fraction: primitive-event volume
//! achieved across every attempt divided by a clean run's volume over
//! the same window.

use pcr::{millis, BlockKind, ChaosConfig, RunLimit, Sim, SimDuration, SimStats, SimTime};
use threadstudy_core::System;
use trace::Collector;
use workloads::{
    build_chaos_with, chaos_preset, eternal_thread_count, harvest, BenchResult, Benchmark,
};

/// Supervisor parameters.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Total virtual-time budget across all attempts (backoff included).
    pub window: SimDuration,
    /// Slice length between wait-for-graph checks.
    pub slice: SimDuration,
    /// How long a thread must sit blocked before it counts as wedged.
    pub wedge_threshold: SimDuration,
    /// Maximum restarts before the supervisor gives up.
    pub max_restarts: u32,
    /// First restart backoff; doubles per restart.
    pub backoff: SimDuration,
    /// Slices to wait after a recovery action before judging again
    /// (waiters only unwedge once the recovered thread releases what it
    /// holds).
    pub grace_slices: u32,
}

impl SupervisorConfig {
    /// Defaults for a given total window.
    pub fn for_window(window: SimDuration) -> SupervisorConfig {
        SupervisorConfig {
            window,
            slice: millis(250),
            wedge_threshold: millis(1500),
            max_restarts: 3,
            backoff: millis(500),
            grace_slices: 2,
        }
    }
}

/// Which lever the supervisor pulled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Drained the fork-wait queue with errors (§5.4).
    FailPendingForks,
    /// Turned on metalock cycle donation to clear a metalock inversion
    /// (§6.2).
    EnableMetalockDonation,
    /// Boosted a runnable lower-priority holder to its victim's
    /// priority (§6.2's SystemDaemon effect, applied deterministically).
    PriorityBoost,
    /// Un-stalled an unresponsive thread (§5.2).
    Rejuvenate,
    /// Tore the attempt down and rebuilt the world.
    Restart,
}

impl RecoveryKind {
    /// Short lowercase tag for tables and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            RecoveryKind::FailPendingForks => "fail-pending-forks",
            RecoveryKind::EnableMetalockDonation => "metalock-donation",
            RecoveryKind::PriorityBoost => "priority-boost",
            RecoveryKind::Rejuvenate => "rejuvenate",
            RecoveryKind::Restart => "restart",
        }
    }
}

/// One recovery action in the supervisor's log.
#[derive(Clone, Debug)]
pub struct RecoveryAction {
    /// Attempt number the action happened in (0-based).
    pub attempt: u32,
    /// Virtual time within that attempt.
    pub at: SimTime,
    /// Which lever.
    pub kind: RecoveryKind,
    /// Human-readable detail ("failed 1 pending fork(s)", thread names).
    pub detail: String,
}

/// The supervisor's summary of one supervised run.
#[derive(Debug)]
pub struct Supervision {
    /// Attempts made (1 = no restart was needed).
    pub attempts: u32,
    /// Every recovery action, in order.
    pub actions: Vec<RecoveryAction>,
    /// Restarts among the actions.
    pub restarts: u32,
    /// True when the restart budget ran out with the world still broken.
    pub gave_up: bool,
    /// Primitive-event volume summed over every attempt.
    pub total_volume: u64,
    /// Virtual time the final attempt ran.
    pub final_elapsed: SimDuration,
    /// True when the final state is live: no wedge past the threshold
    /// and no panicked thread.
    pub healthy_at_end: bool,
}

/// Supervises `build(attempt)` under `cfg`, returning the summary and
/// the final attempt's simulator (for harvesting).
pub fn supervise(mut build: impl FnMut(u32) -> Sim, cfg: &SupervisorConfig) -> (Supervision, Sim) {
    let mut remaining = cfg.window;
    let mut attempt = 0u32;
    let mut actions: Vec<RecoveryAction> = Vec::new();
    let mut restarts = 0u32;
    let mut total_volume = 0u64;
    let mut gave_up = false;
    loop {
        let mut sim = build(attempt);
        let base_volume = sim.stats().event_volume();
        let mut grace = 0u32;
        let mut donation_enabled = false;
        let mut restart = false;
        let mut attempt_elapsed = SimDuration::ZERO;
        while !remaining.is_zero() {
            let step = cfg.slice.min(remaining);
            let report = sim.run(RunLimit::For(step));
            attempt_elapsed += report.elapsed;
            remaining = remaining.saturating_sub(step);
            if sim.stats().panics > 0 {
                let names: Vec<String> = sim
                    .threads_iter()
                    .filter(|t| t.panicked)
                    .map(|t| t.name.to_string())
                    .collect();
                actions.push(RecoveryAction {
                    attempt,
                    at: sim.now(),
                    kind: RecoveryKind::Restart,
                    detail: format!("panic in {}", names.join(", ")),
                });
                restart = true;
                break;
            }
            let graph = sim.wait_for_graph();
            // Under global deadlock the clock stops, so age-based wedge
            // detection is moot: every blocked thread is stuck.
            let stuck: Vec<pcr::WaitingThread> = if report.deadlocked() {
                graph.threads.clone()
            } else {
                graph
                    .wedged(cfg.wedge_threshold)
                    .into_iter()
                    .cloned()
                    .collect()
            };
            if stuck.is_empty() {
                grace = grace.saturating_sub(1);
                continue;
            }
            if grace > 0 {
                grace -= 1;
                continue;
            }
            // Ladder rung 1: fork outage (§5.4).
            if stuck.iter().any(|w| matches!(w.kind, BlockKind::Fork)) {
                let n = sim.fail_pending_forks();
                if n > 0 {
                    actions.push(RecoveryAction {
                        attempt,
                        at: sim.now(),
                        kind: RecoveryKind::FailPendingForks,
                        detail: format!("failed {n} pending fork(s)"),
                    });
                    grace = cfg.grace_slices;
                    continue;
                }
            }
            // Ladder rung 2: §6.2 priority inversion — a high-priority
            // thread aged out behind a *runnable* lower-priority holder.
            // Metalock inversions get donation first (the paper's §6.2
            // metalock fix); what remains gets a direct priority boost.
            // Stalled holders are skipped: un-sticking an unresponsive
            // thread is rejuvenation's job, not a priority problem.
            let mut remedied = false;
            for inv in graph.inversions(cfg.wedge_threshold) {
                if inv.holder_stalled {
                    continue;
                }
                if inv.kind == BlockKind::Metalock && !donation_enabled {
                    let cleared = sim.set_metalock_donation(true);
                    donation_enabled = true;
                    actions.push(RecoveryAction {
                        attempt,
                        at: sim.now(),
                        kind: RecoveryKind::EnableMetalockDonation,
                        detail: format!(
                            "donated {cleared} stuck metalock window(s); {} was starving {}",
                            inv.holder_name, inv.victim_name
                        ),
                    });
                    grace = cfg.grace_slices;
                    remedied = true;
                    break;
                }
                if sim.set_thread_priority(inv.holder, inv.victim_priority) {
                    actions.push(RecoveryAction {
                        attempt,
                        at: sim.now(),
                        kind: RecoveryKind::PriorityBoost,
                        detail: format!(
                            "boosted {} to p{} ({} starving behind it)",
                            inv.holder_name,
                            inv.victim_priority.get(),
                            inv.victim_name
                        ),
                    });
                    grace = cfg.grace_slices;
                    remedied = true;
                    break;
                }
            }
            if remedied {
                continue;
            }
            // Ladder rung 3: the wedge chain roots at a stalled thread
            // (§5.2 task rejuvenation).
            let mut rejuvenated = false;
            for w in &stuck {
                let root = graph.root_of(w.tid);
                if let Some(root) = root {
                    if let Some((tid, name)) = graph.stalled.iter().find(|(tid, _)| *tid == root) {
                        if sim.rejuvenate(*tid) {
                            actions.push(RecoveryAction {
                                attempt,
                                at: sim.now(),
                                kind: RecoveryKind::Rejuvenate,
                                detail: format!("rejuvenated {name}"),
                            });
                            grace = cfg.grace_slices;
                            rejuvenated = true;
                            break;
                        }
                    }
                }
            }
            if rejuvenated {
                continue;
            }
            // Ladder rung 4: restart the attempt.
            let parties: Vec<String> = stuck.iter().map(|w| w.name.clone()).collect();
            actions.push(RecoveryAction {
                attempt,
                at: sim.now(),
                kind: RecoveryKind::Restart,
                detail: format!("unrecoverable wedge: {}", parties.join(", ")),
            });
            restart = true;
            break;
        }
        total_volume += sim.stats().event_volume() - base_volume;
        if restart && !remaining.is_zero() {
            restarts += 1;
            if restarts > cfg.max_restarts {
                gave_up = true;
            } else {
                // Exponential backoff eats into the remaining budget.
                let backoff =
                    SimDuration::from_micros(cfg.backoff.as_micros() << (restarts - 1).min(20));
                remaining = remaining.saturating_sub(backoff);
                if !remaining.is_zero() {
                    attempt += 1;
                    continue;
                }
                gave_up = true;
            }
        } else if restart {
            // Restart wanted but no time left to try.
            gave_up = true;
        }
        let healthy_at_end = sim.stats().panics == 0
            && sim.wait_for_graph().wedged(cfg.wedge_threshold).is_empty()
            && !gave_up;
        return (
            Supervision {
                attempts: attempt + 1,
                actions,
                restarts,
                gave_up,
                total_volume,
                final_elapsed: attempt_elapsed,
                healthy_at_end,
            },
            sim,
        );
    }
}

/// The fault load `repro chaos --recover` applies: the benchmark chaos
/// preset plus the one fault each system is known not to tolerate on
/// its own — a thread-table cap sized to the eternal population for
/// Cedar (the first runtime fork wedges), a gated stall inside the
/// screen monitor for GVX (the display watchdog wedges behind it).
pub fn recover_preset(system: System) -> (ChaosConfig, Option<usize>) {
    match system {
        System::Cedar => (chaos_preset(), Some(eternal_thread_count(System::Cedar))),
        System::Gvx => (
            chaos_preset().stall_while_holding(
                "GVX.InputPoller",
                "gvx-screen",
                SimTime::from_micros(2_000_000),
                pcr::secs(120),
            ),
            None,
        ),
    }
}

/// A supervised benchmark run with its degradation score.
#[derive(Debug)]
pub struct SupervisedBench {
    /// The harvested measurements of the final attempt, with
    /// [`BenchResult::degradation`] filled in.
    pub result: BenchResult,
    /// The supervisor's log.
    pub supervision: Supervision,
    /// Event volume of the clean comparison run.
    pub clean_volume: u64,
}

/// Runs `(system, benchmark)` under `chaos` (plus an optional
/// thread-table cap) with the supervisor watching, and scores the
/// degradation against a clean run of the same cell over the same
/// window.
pub fn supervise_benchmark(
    system: System,
    benchmark: Benchmark,
    seed: u64,
    chaos: ChaosConfig,
    max_threads: Option<usize>,
    cfg: &SupervisorConfig,
) -> SupervisedBench {
    // The clean yardstick: same cell, same seed, no faults.
    let mut clean = build_chaos_with(system, benchmark, seed, ChaosConfig::none(), |c| c);
    let clean_base = clean.stats().event_volume();
    clean.run(RunLimit::For(cfg.window));
    let clean_volume = clean.stats().event_volume() - clean_base;
    drop(clean);

    let mut start_stats = SimStats::default();
    let mut start_alloc = pcr::AllocCounters::default();
    let (supervision, mut sim) = supervise(
        |attempt| {
            // Each attempt reseeds deterministically so a restart does
            // not replay the exact same misfortune.
            let attempt_seed = seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37));
            let mut sim = build_chaos_with(system, benchmark, attempt_seed, chaos.clone(), |c| {
                match max_threads {
                    Some(n) => c.with_max_threads(n),
                    None => c,
                }
            });
            start_stats = sim.stats().clone();
            start_alloc = sim.alloc_counters();
            sim.set_sink(Box::new(Collector::for_sim(&sim)));
            sim
        },
        cfg,
    );
    let hazards = sim.hazards().map(|h| h.counts()).unwrap_or_default();
    let mut result = harvest(
        &mut sim,
        system,
        benchmark,
        &start_stats,
        start_alloc,
        supervision.final_elapsed,
        hazards,
    );
    result.degradation = Some(if clean_volume == 0 {
        1.0
    } else {
        (supervision.total_volume as f64 / clean_volume as f64).min(1.0)
    });
    SupervisedBench {
        result,
        supervision,
        clean_volume,
    }
}

/// Runs the same cell under the same fault load *without* the
/// supervisor and reports whether it ends wedged, deadlocked, or
/// panicked — the comparison line for `repro chaos --recover`.
pub fn unsupervised_wedges(
    system: System,
    benchmark: Benchmark,
    seed: u64,
    chaos: ChaosConfig,
    max_threads: Option<usize>,
    cfg: &SupervisorConfig,
) -> bool {
    let mut sim = build_chaos_with(system, benchmark, seed, chaos, |c| match max_threads {
        Some(n) => c.with_max_threads(n),
        None => c,
    });
    let report = sim.run(RunLimit::For(cfg.window));
    report.deadlocked()
        || sim.stats().panics > 0
        || !sim.wait_for_graph().wedged(cfg.wedge_threshold).is_empty()
}
