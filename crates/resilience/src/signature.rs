//! Seed-independent failure signatures.
//!
//! Two failing runs are "the same bug" when the same *kind* of failure
//! strands the same *population* of threads, regardless of which seed or
//! intensity level provoked it. Thread names carry instance numbers
//! (`window-3`, `t0`), so digit runs are normalized to `#` before the
//! parties are sorted into a canonical signature string.

/// What class of failure a trial ended in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The runtime declared a global deadlock: nothing runnable, no
    /// timer pending.
    Deadlock,
    /// Partial wedge: threads stuck past the wedge threshold on an
    /// otherwise live simulation (the benchmark worlds' failure mode —
    /// daemons and timers keep the clock moving while real work stops).
    Wedge,
    /// A world thread panicked.
    Panic,
}

impl FailureClass {
    /// Short lowercase tag used in signatures and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            FailureClass::Deadlock => "deadlock",
            FailureClass::Wedge => "wedge",
            FailureClass::Panic => "panic",
        }
    }
}

/// One observed failure: its class, the stranded parties as
/// `name(blockkind)` strings, and a human-readable rendering of the
/// wait-for graph at the moment of detection.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Failure class.
    pub class: FailureClass,
    /// The stranded threads, `name(kind)` per entry, unnormalized.
    pub parties: Vec<String>,
    /// The resources the stranded threads were blocked on (monitor and
    /// CV names, unnormalized). Empty for panics. This is the dynamic
    /// half of `repro lint --confirm`'s join against static findings.
    pub resources: Vec<String>,
    /// Multi-line human-readable detail (wait-for graph render).
    pub detail: String,
}

impl Failure {
    /// The canonical dedup signature of this failure.
    pub fn signature(&self) -> String {
        signature(self.class, &self.parties)
    }
}

/// Replaces every run of ASCII digits with a single `#`, so
/// `window-3(monitor)` and `window-12(monitor)` dedup together.
pub fn normalize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut in_digits = false;
    for c in name.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
            }
            in_digits = true;
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

/// Builds the canonical signature for a failure class and its parties:
/// normalized, sorted, deduplicated, comma-joined inside brackets.
/// Parties that collapse to the same normalized name keep their
/// multiplicity as an `xN` suffix — a two-teller AB-BA deadlock and a
/// five-thread pileup on the same lock are different bugs even though
/// instance numbering makes their party lists normalize identically.
pub fn signature(class: FailureClass, parties: &[String]) -> String {
    let mut norm: Vec<String> = parties.iter().map(|p| normalize_name(p)).collect();
    norm.sort();
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < norm.len() {
        let mut n = 1;
        while i + n < norm.len() && norm[i + n] == norm[i] {
            n += 1;
        }
        if n == 1 {
            parts.push(norm[i].clone());
        } else {
            parts.push(format!("{}x{n}", norm[i]));
        }
        i += n;
    }
    format!("{}:[{}]", class.tag(), parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_runs_collapse_to_one_hash() {
        assert_eq!(normalize_name("window-3.damage"), "window-#.damage");
        assert_eq!(normalize_name("t12x34"), "t#x#");
        assert_eq!(normalize_name("no-digits"), "no-digits");
    }

    #[test]
    fn signature_is_order_and_instance_independent() {
        let a = signature(
            FailureClass::Wedge,
            &["window-2(monitor)".into(), "t0(fork)".into()],
        );
        let b = signature(
            FailureClass::Wedge,
            &["t9(fork)".into(), "window-7(monitor)".into()],
        );
        assert_eq!(a, b);
        assert_eq!(a, "wedge:[t#(fork),window-#(monitor)]");
    }

    #[test]
    fn classes_produce_distinct_signatures() {
        let p = vec!["x(monitor)".into()];
        assert_ne!(
            signature(FailureClass::Wedge, &p),
            signature(FailureClass::Deadlock, &p)
        );
    }

    #[test]
    fn multiplicity_survives_normalization() {
        // Two tellers and five tellers dedup to the same normalized
        // name; the xN suffix keeps them distinct bugs.
        let two = signature(
            FailureClass::Deadlock,
            &["teller0(monitor)".into(), "teller1(monitor)".into()],
        );
        let five = signature(
            FailureClass::Deadlock,
            &(0..5)
                .map(|i| format!("teller{i}(monitor)"))
                .collect::<Vec<_>>(),
        );
        assert_eq!(two, "deadlock:[teller#(monitor)x2]");
        assert_eq!(five, "deadlock:[teller#(monitor)x5]");
        assert_ne!(two, five);
    }

    #[test]
    fn abba_deadlock_and_fork_outage_wedge_never_collide() {
        // Satellite collision test: the two canonical failure modes of
        // the harness — an AB-BA mutual-monitor deadlock and a
        // fork-outage wedge — must never normalize to the same
        // signature, even when instance numbering makes the party
        // *names* identical after digit folding.
        let abba = signature(
            FailureClass::Deadlock,
            &["worker1(monitor)".into(), "worker2(monitor)".into()],
        );
        let outage = signature(
            FailureClass::Wedge,
            &["worker1(fork)".into(), "worker2(fork)".into()],
        );
        assert_ne!(abba, outage);
        assert_eq!(abba, "deadlock:[worker#(monitor)x2]");
        assert_eq!(outage, "wedge:[worker#(fork)x2]");
        // Same parties, same normalized names: the class alone still
        // separates them.
        let wedge_on_monitor = signature(
            FailureClass::Wedge,
            &["worker1(monitor)".into(), "worker2(monitor)".into()],
        );
        assert_ne!(abba, wedge_on_monitor);
    }
}
