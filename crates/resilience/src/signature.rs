//! Seed-independent failure signatures.
//!
//! Two failing runs are "the same bug" when the same *kind* of failure
//! strands the same *population* of threads, regardless of which seed or
//! intensity level provoked it. Thread names carry instance numbers
//! (`window-3`, `t0`), so digit runs are normalized to `#` before the
//! parties are sorted into a canonical signature string.

/// What class of failure a trial ended in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The runtime declared a global deadlock: nothing runnable, no
    /// timer pending.
    Deadlock,
    /// Partial wedge: threads stuck past the wedge threshold on an
    /// otherwise live simulation (the benchmark worlds' failure mode —
    /// daemons and timers keep the clock moving while real work stops).
    Wedge,
    /// A world thread panicked.
    Panic,
}

impl FailureClass {
    /// Short lowercase tag used in signatures and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            FailureClass::Deadlock => "deadlock",
            FailureClass::Wedge => "wedge",
            FailureClass::Panic => "panic",
        }
    }
}

/// One observed failure: its class, the stranded parties as
/// `name(blockkind)` strings, and a human-readable rendering of the
/// wait-for graph at the moment of detection.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Failure class.
    pub class: FailureClass,
    /// The stranded threads, `name(kind)` per entry, unnormalized.
    pub parties: Vec<String>,
    /// Multi-line human-readable detail (wait-for graph render).
    pub detail: String,
}

impl Failure {
    /// The canonical dedup signature of this failure.
    pub fn signature(&self) -> String {
        signature(self.class, &self.parties)
    }
}

/// Replaces every run of ASCII digits with a single `#`, so
/// `window-3(monitor)` and `window-12(monitor)` dedup together.
pub fn normalize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut in_digits = false;
    for c in name.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
            }
            in_digits = true;
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

/// Builds the canonical signature for a failure class and its parties:
/// normalized, sorted, deduplicated, comma-joined inside brackets.
pub fn signature(class: FailureClass, parties: &[String]) -> String {
    let mut norm: Vec<String> = parties.iter().map(|p| normalize_name(p)).collect();
    norm.sort();
    norm.dedup();
    format!("{}:[{}]", class.tag(), norm.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_runs_collapse_to_one_hash() {
        assert_eq!(normalize_name("window-3.damage"), "window-#.damage");
        assert_eq!(normalize_name("t12x34"), "t#x#");
        assert_eq!(normalize_name("no-digits"), "no-digits");
    }

    #[test]
    fn signature_is_order_and_instance_independent() {
        let a = signature(
            FailureClass::Wedge,
            &["window-2(monitor)".into(), "t0(fork)".into()],
        );
        let b = signature(
            FailureClass::Wedge,
            &["t9(fork)".into(), "window-7(monitor)".into()],
        );
        assert_eq!(a, b);
        assert_eq!(a, "wedge:[t#(fork),window-#(monitor)]");
    }

    #[test]
    fn classes_produce_distinct_signatures() {
        let p = vec!["x(monitor)".into()];
        assert_ne!(
            signature(FailureClass::Wedge, &p),
            signature(FailureClass::Deadlock, &p)
        );
    }
}
