//! Stored failing cases: the on-disk format of a fuzz finding.
//!
//! A [`StoredCase`] is everything needed to rebuild and replay one
//! failing trial — cell, seed, watch parameters, and the exact
//! [`FaultSchedule`] the run executed — serialized as a single JSON
//! object via the repo's hand-rolled [`trace::Json`]. Files are named
//! after the signature so re-running the fuzzer overwrites rather than
//! accumulates duplicates of the same bug.

use std::fs;
use std::path::{Path, PathBuf};

use pcr::{
    FaultDecision, FaultSchedule, FaultSiteKind, PolicyKind, SimDuration, SimTime, StallSpec,
};
use threadstudy_core::System;
use trace::Json;
use workloads::Benchmark;

use crate::observe::{TrialSpec, TrialWorld};

/// A replayable failing trial.
#[derive(Clone, Debug)]
pub struct StoredCase {
    /// Which world family the trial ran (`system`/`benchmark` only
    /// select the cell when this is [`TrialWorld::Cell`]).
    pub world: TrialWorld,
    /// Which system's world failed.
    pub system: System,
    /// Which benchmark drove it.
    pub benchmark: Benchmark,
    /// Simulator seed.
    pub seed: u64,
    /// Trial window.
    pub window: SimDuration,
    /// Failure-check slice.
    pub slice: SimDuration,
    /// Wedge age threshold.
    pub wedge_threshold: SimDuration,
    /// Thread-table cap, when the intensity level set one.
    pub max_threads: Option<usize>,
    /// Scheduling policy the trial ran under. Files written before the
    /// policy tournament carry no `"policy"` key and load as round-robin.
    pub policy: PolicyKind,
    /// Name of the intensity level that found the failure.
    pub intensity: String,
    /// The canonical failure signature the schedule reproduces.
    pub signature: String,
    /// The fault schedule to replay.
    pub schedule: FaultSchedule,
}

fn benchmark_name(b: Benchmark) -> String {
    format!("{b:?}")
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::CEDAR
        .iter()
        .copied()
        .find(|b| format!("{b:?}").eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn system_from_name(name: &str) -> Result<System, String> {
    match name.to_ascii_lowercase().as_str() {
        "cedar" => Ok(System::Cedar),
        "gvx" => Ok(System::Gvx),
        _ => Err(format!("unknown system {name:?}")),
    }
}

impl StoredCase {
    /// The trial parameters this case replays under.
    pub fn spec(&self) -> TrialSpec {
        TrialSpec {
            world: self.world,
            system: self.system,
            benchmark: self.benchmark,
            seed: self.seed,
            window: self.window,
            slice: self.slice,
            wedge_threshold: self.wedge_threshold,
            max_threads: self.max_threads,
            policy: self.policy,
        }
    }

    /// Serializes the case to JSON.
    pub fn to_json(&self) -> Json {
        let decisions = Json::arr(self.schedule.decisions.iter().map(|d| {
            Json::obj([
                ("kind", Json::Str(d.kind.tag().to_string())),
                ("site", Json::UInt(d.site)),
                ("param_us", Json::UInt(d.param_us)),
            ])
        }));
        let stalls = Json::arr(self.schedule.stalls.iter().map(|s| {
            Json::obj([
                ("thread", Json::Str(s.thread.clone())),
                ("at_us", Json::UInt(s.at.as_micros())),
                ("duration_us", Json::UInt(s.duration.as_micros())),
                (
                    "while_holding",
                    s.while_holding
                        .as_ref()
                        .map_or(Json::Null, |m| Json::Str(m.clone())),
                ),
            ])
        }));
        Json::obj([
            ("v", Json::UInt(2)),
            ("world", Json::Str(self.world.tag())),
            ("system", Json::Str(self.system.name().to_string())),
            ("benchmark", Json::Str(benchmark_name(self.benchmark))),
            ("seed", Json::Str(format!("{:x}", self.seed))),
            ("window_us", Json::UInt(self.window.as_micros())),
            ("slice_us", Json::UInt(self.slice.as_micros())),
            (
                "wedge_threshold_us",
                Json::UInt(self.wedge_threshold.as_micros()),
            ),
            (
                "max_threads",
                self.max_threads
                    .map_or(Json::Null, |n| Json::UInt(n as u64)),
            ),
            ("policy", Json::Str(self.policy.as_str().to_string())),
            ("intensity", Json::Str(self.intensity.clone())),
            ("signature", Json::Str(self.signature.clone())),
            ("decisions", decisions),
            ("stalls", stalls),
        ])
    }

    /// Parses a case back from JSON.
    pub fn from_json(j: &Json) -> Result<StoredCase, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let str_field = |k: &str| {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field {k:?} is not a string"))
        };
        let u64_field = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("field {k:?} is not an unsigned integer"))
        };
        // v1 predates trial worlds: every old case is a matrix cell.
        let world = match u64_field("v")? {
            1 => TrialWorld::Cell,
            2 => TrialWorld::from_tag(&str_field("world")?)?,
            v => return Err(format!("unsupported case version {v}")),
        };
        let seed_hex = str_field("seed")?;
        let seed = u64::from_str_radix(&seed_hex, 16)
            .map_err(|e| format!("bad seed {seed_hex:?}: {e}"))?;
        // Cases written before the policy tournament have no "policy" key;
        // they all ran under the paper's round-robin.
        let policy = match j.get("policy") {
            None | Some(Json::Null) => PolicyKind::RoundRobin,
            Some(other) => other
                .as_str()
                .ok_or_else(|| "field \"policy\" is not a string".to_string())?
                .parse()?,
        };
        let max_threads = match field("max_threads")? {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or_else(|| "field \"max_threads\" is not an unsigned integer".to_string())?
                    as usize,
            ),
        };
        let mut decisions = Vec::new();
        for d in field("decisions")?
            .as_array()
            .ok_or_else(|| "field \"decisions\" is not an array".to_string())?
        {
            let tag = d
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| "decision missing \"kind\"".to_string())?;
            let kind = FaultSiteKind::from_tag(tag)
                .ok_or_else(|| format!("unknown fault kind {tag:?}"))?;
            let site = d
                .get("site")
                .and_then(Json::as_u64)
                .ok_or_else(|| "decision missing \"site\"".to_string())?;
            let param_us = d
                .get("param_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| "decision missing \"param_us\"".to_string())?;
            decisions.push(FaultDecision {
                kind,
                site,
                param_us,
            });
        }
        let mut stalls = Vec::new();
        for s in field("stalls")?
            .as_array()
            .ok_or_else(|| "field \"stalls\" is not an array".to_string())?
        {
            let get_u64 = |k: &str| {
                s.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("stall missing {k:?}"))
            };
            stalls.push(StallSpec {
                thread: s
                    .get("thread")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "stall missing \"thread\"".to_string())?
                    .to_string(),
                at: SimTime::from_micros(get_u64("at_us")?),
                duration: SimDuration::from_micros(get_u64("duration_us")?),
                while_holding: match s.get("while_holding") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(
                        other
                            .as_str()
                            .ok_or_else(|| "stall \"while_holding\" is not a string".to_string())?
                            .to_string(),
                    ),
                },
            });
        }
        Ok(StoredCase {
            world,
            system: system_from_name(&str_field("system")?)?,
            benchmark: benchmark_from_name(&str_field("benchmark")?)?,
            seed,
            window: SimDuration::from_micros(u64_field("window_us")?),
            slice: SimDuration::from_micros(u64_field("slice_us")?),
            wedge_threshold: SimDuration::from_micros(u64_field("wedge_threshold_us")?),
            max_threads,
            policy,
            intensity: str_field("intensity")?,
            signature: str_field("signature")?,
            schedule: FaultSchedule { decisions, stalls },
        })
    }

    /// A stable, filesystem-safe file name derived from the signature.
    ///
    /// The readable slug keeps only the first eight words of the
    /// signature, so an FNV-1a hash of the full signature is appended:
    /// two distinct signatures that share a slug prefix (a long
    /// multi-party wedge vs. its superset) must not overwrite each
    /// other's case files.
    pub fn file_name(&self) -> String {
        let slug: String = self
            .signature
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let slug: String = slug.split('-').filter(|s| !s.is_empty()).take(8).fold(
            String::new(),
            |mut acc, part| {
                if !acc.is_empty() {
                    acc.push('-');
                }
                acc.push_str(part);
                acc
            },
        );
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.signature.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let prefix = self
            .world
            .file_prefix()
            .map(|p| format!("{p}-"))
            .unwrap_or_default();
        format!(
            "{prefix}{}-{}-{slug}-{:08x}.json",
            self.system.name().to_ascii_lowercase(),
            benchmark_name(self.benchmark).to_ascii_lowercase(),
            hash >> 32
        )
    }

    /// Writes the case into `dir` (created if needed) and returns the
    /// full path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_json().pretty() + "\n")?;
        Ok(path)
    }

    /// Loads a case from a file written by [`StoredCase::save`].
    pub fn load(path: &Path) -> Result<StoredCase, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        StoredCase::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The ready-to-paste command that replays this case.
    pub fn repro_command(&self, path: &Path) -> String {
        format!(
            "cargo run --release -p bench --bin repro -- replay {}",
            path.display()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs};

    fn sample() -> StoredCase {
        StoredCase {
            world: TrialWorld::Cell,
            system: System::Gvx,
            benchmark: Benchmark::Scroll,
            seed: 0xDEAD_BEEF,
            window: secs(6),
            slice: millis(250),
            wedge_threshold: millis(1500),
            max_threads: Some(23),
            policy: PolicyKind::RoundRobin,
            intensity: "stall-gated".to_string(),
            signature: "wedge:[GVX.DisplayWatchdog(monitor)]".to_string(),
            schedule: FaultSchedule {
                decisions: vec![
                    FaultDecision {
                        kind: FaultSiteKind::SpuriousWakeup,
                        site: 4,
                        param_us: 120,
                    },
                    FaultDecision {
                        kind: FaultSiteKind::ForkFail,
                        site: 0,
                        param_us: 0,
                    },
                ],
                stalls: vec![StallSpec {
                    thread: "GVX.InputPoller".to_string(),
                    at: SimTime::from_micros(2_000_000),
                    duration: secs(120),
                    while_holding: Some("gvx-screen".to_string()),
                }],
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let case = sample();
        let text = case.to_json().pretty();
        let back = StoredCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.system, case.system);
        assert_eq!(back.benchmark, case.benchmark);
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.window, case.window);
        assert_eq!(back.slice, case.slice);
        assert_eq!(back.wedge_threshold, case.wedge_threshold);
        assert_eq!(back.max_threads, case.max_threads);
        assert_eq!(back.policy, case.policy);
        assert_eq!(back.intensity, case.intensity);
        assert_eq!(back.signature, case.signature);
        assert_eq!(back.schedule, case.schedule);
    }

    #[test]
    fn non_default_policy_round_trips() {
        let mut case = sample();
        case.policy = PolicyKind::Mlfq;
        let text = case.to_json().pretty();
        assert!(text.contains("\"policy\": \"mlfq\""), "{text}");
        let back = StoredCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.policy, PolicyKind::Mlfq);
    }

    #[test]
    fn missing_policy_defaults_to_round_robin() {
        // Files from before the tournament have no "policy" key at all.
        let text = sample()
            .to_json()
            .pretty()
            .replace("\"policy\": \"rr\",", "");
        let back = StoredCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.policy, PolicyKind::RoundRobin);
    }

    #[test]
    fn null_max_threads_and_while_holding_round_trip() {
        let mut case = sample();
        case.max_threads = None;
        case.schedule.stalls[0].while_holding = None;
        let text = case.to_json().pretty();
        let back = StoredCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.max_threads, None);
        assert_eq!(back.schedule.stalls[0].while_holding, None);
    }

    #[test]
    fn bad_inputs_error_clearly() {
        let missing = Json::parse("{\"v\": 1}").unwrap();
        let err = StoredCase::from_json(&missing).unwrap_err();
        assert!(err.contains("missing field"), "{err}");

        let bad_version = Json::parse("{\"v\": 9}").unwrap();
        let err = StoredCase::from_json(&bad_version).unwrap_err();
        assert!(err.contains("unsupported case version 9"), "{err}");
    }

    #[test]
    fn file_name_is_stable_and_safe() {
        let name = sample().file_name();
        assert_eq!(
            name,
            "gvx-scroll-wedge-GVX-DisplayWatchdog-monitor-7629c416.json"
        );
        assert!(name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'));
    }

    #[test]
    fn shared_slug_prefixes_get_distinct_file_names() {
        let a = sample();
        let mut b = sample();
        // Same first eight slug words, different full signature.
        b.signature = "wedge:[GVX.DisplayWatchdog(monitor),GVX.InputPoller(cv)]".to_string();
        assert_ne!(a.file_name(), b.file_name());
    }

    #[test]
    fn world_prefixes_and_tags_round_trip() {
        for world in [
            TrialWorld::Cell,
            TrialWorld::MultiCore { cpus: 2 },
            TrialWorld::WeakMemory { max_delay_us: 200 },
            TrialWorld::Serve {
                scenario: workloads::serve::ServeScenario::Burst,
            },
            TrialWorld::Serve {
                scenario: workloads::serve::ServeScenario::Outage,
            },
        ] {
            assert_eq!(TrialWorld::from_tag(&world.tag()).unwrap(), world);
            let mut case = sample();
            case.world = world;
            let back =
                StoredCase::from_json(&Json::parse(&case.to_json().pretty()).unwrap()).unwrap();
            assert_eq!(back.world, world);
        }
        assert!(TrialWorld::from_tag("marsrover").is_err());
        assert!(TrialWorld::from_tag("serve:quiet").is_err());
        let mp = StoredCase {
            world: TrialWorld::MultiCore { cpus: 2 },
            ..sample()
        };
        assert!(mp.file_name().starts_with("mp2-"), "{}", mp.file_name());
        let sv = StoredCase {
            world: TrialWorld::Serve {
                scenario: workloads::serve::ServeScenario::Outage,
            },
            ..sample()
        };
        assert!(
            sv.file_name().starts_with("serve-outage-"),
            "{}",
            sv.file_name()
        );
    }

    #[test]
    fn v1_files_still_load_as_cell_cases() {
        // Corpus files written before trial worlds existed carry v:1 and
        // no "world" key; they must keep loading as matrix-cell cases.
        let mut text = sample().to_json().pretty();
        text = text.replace("\"v\": 2", "\"v\": 1");
        text = text.replace("\"world\": \"cell\",", "");
        text = text.replace("\"policy\": \"rr\",", "");
        let back = StoredCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.world, TrialWorld::Cell);
        assert_eq!(back.seed, sample().seed);
    }
}
